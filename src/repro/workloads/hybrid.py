"""Closed-loop HPC+AI workflows.

The paper (§III.B): accelerators will enable "closed-loop combinations of
classical simulation and deep-learning inference (to accelerate some
simulation steps)".

:class:`ClosedLoopWorkflow` models a simulation whose expensive inner step
(e.g. a chemistry kernel or a subgrid model) can be replaced by a trained
:class:`SurrogateModel` with some probability of falling back to the exact
computation (trust-region / uncertainty gating). The experiment sweeps the
surrogate substitution rate and measures end-to-end speedup against the
paper's qualitative claim that the combination "significantly improves
HPC".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, KernelProfile
from repro.workloads.ai import AIModel
from repro.hardware.precision import Precision


@dataclass
class SurrogateModel:
    """A trained DL surrogate for an expensive simulation step.

    Attributes
    ----------
    model:
        The network evaluated per inference.
    acceptance_rate:
        Fraction of steps where the surrogate's uncertainty check passes
        and its output is used; the remainder falls back to exact compute.
    training_steps / training_batch:
        One-off training cost charged to the workflow when
        ``pretrained=False``.
    """

    model: AIModel
    acceptance_rate: float = 0.9
    training_steps: int = 1000
    training_batch: int = 256
    pretrained: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.acceptance_rate <= 1.0:
            raise ConfigurationError("acceptance_rate must be in [0, 1]")
        if self.training_steps < 0 or self.training_batch <= 0:
            raise ConfigurationError("invalid training parameters")

    def inference_kernel(self, precision: Precision = Precision.INT8) -> KernelProfile:
        """The per-step inference kernel."""
        largest = max(self.model.layers, key=lambda l: l.k * l.n)
        return KernelProfile(
            flops=self.model.forward_flops(batch=1),
            bytes_moved=self.model.parameter_bytes(precision),
            precision=precision,
            mvm_dimension=max(largest.k, largest.n),
        )

    def training_flops(self) -> float:
        """Total one-off training cost in FLOPs (0 when pretrained)."""
        if self.pretrained:
            return 0.0
        return self.training_steps * self.model.training_step_flops(self.training_batch)


@dataclass
class ClosedLoopWorkflow:
    """A simulation loop with an optional surrogate for the expensive step.

    Attributes
    ----------
    exact_kernel:
        The exact physics kernel executed when no surrogate (or a rejected
        surrogate prediction) applies.
    cheap_kernel:
        Per-step bookkeeping work that always runs (time integration,
        boundary handling).
    steps:
        Number of simulation steps.
    """

    exact_kernel: KernelProfile
    cheap_kernel: KernelProfile
    steps: int

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ConfigurationError("steps must be positive")

    def baseline_time(self, device: Device) -> float:
        """Run every step exactly on ``device`` (no surrogate)."""
        per_step = device.time_for(self.exact_kernel) + device.time_for(self.cheap_kernel)
        return self.steps * per_step

    def surrogate_time(
        self,
        simulation_device: Device,
        inference_device: Device,
        surrogate: SurrogateModel,
        training_device: Optional[Device] = None,
        precision: Precision = Precision.INT8,
    ) -> float:
        """End-to-end time with the surrogate in the loop.

        Every step runs the cheap kernel plus one surrogate inference; a
        fraction ``1 - acceptance_rate`` additionally falls back to the
        exact kernel. Training cost (if not pretrained) is charged up front
        on ``training_device`` (defaults to the simulation device).
        """
        inference = surrogate.inference_kernel(precision)
        per_step = (
            simulation_device.time_for(self.cheap_kernel)
            + inference_device.time_for(inference)
            + (1.0 - surrogate.acceptance_rate)
            * simulation_device.time_for(self.exact_kernel)
        )
        loop_time = self.steps * per_step
        training_flops = surrogate.training_flops()
        if training_flops > 0:
            trainer = training_device or simulation_device
            training_kernel = KernelProfile(
                flops=training_flops,
                bytes_moved=surrogate.model.parameter_bytes(Precision.BF16) * 3,
                precision=(
                    Precision.BF16
                    if trainer.supports(Precision.BF16)
                    else Precision.FP32
                ),
            )
            loop_time += trainer.time_for(training_kernel)
        return loop_time

    def speedup(
        self,
        simulation_device: Device,
        inference_device: Device,
        surrogate: SurrogateModel,
        training_device: Optional[Device] = None,
        precision: Precision = Precision.INT8,
    ) -> float:
        """Baseline time divided by surrogate-accelerated time."""
        accelerated = self.surrogate_time(
            simulation_device, inference_device, surrogate, training_device, precision
        )
        return self.baseline_time(simulation_device) / accelerated

    def breakeven_acceptance_rate(
        self,
        simulation_device: Device,
        inference_device: Device,
        surrogate: SurrogateModel,
        precision: Precision = Precision.INT8,
    ) -> float:
        """Minimum acceptance rate at which the surrogate pays off.

        Solves ``surrogate_time == baseline_time`` for the acceptance rate,
        ignoring training cost (amortised to zero over long runs). Returns a
        value possibly outside [0, 1]: > 1 means the surrogate can never
        win (its inference costs more than the exact step), < 0 means it
        always wins.
        """
        exact = simulation_device.time_for(self.exact_kernel)
        inference = inference_device.time_for(surrogate.inference_kernel(precision))
        if exact == 0:
            return float("inf")
        return inference / exact
