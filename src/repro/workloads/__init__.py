"""Workload models: HPC kernels, AI models, hybrid loops and edge streams.

The paper's convergence argument (Figure 1, §I) is that future systems run
a *mix* of classical simulation, data analytics and machine learning. This
subpackage provides generators for all three, plus:

* hybrid closed-loop workflows where DL inference accelerates simulation
  steps (§III.B),
* instrumentation edge streams from "particle accelerators or light
  sources" (§III.A),
* statistical job-trace generators for scheduling experiments.

Workloads are device independent: they describe *what* must be computed
(FLOPs, bytes, communication and synchronisation structure); the hardware
and scheduling layers decide where and how fast it runs.
"""

from repro.workloads.ai import (
    AIModel,
    LayerShape,
    build_cnn,
    build_mlp,
    build_transformer,
)
from repro.workloads.base import (
    Job,
    JobClass,
    Phase,
    PhaseKind,
    Task,
)
from repro.workloads.control import (
    DecisionMaker,
    TieredControlPolicy,
    edge_ai,
    human_operator,
    remote_ai,
    science_yield,
)
from repro.workloads.edge import DetectorPreset, InstrumentStream
from repro.workloads.hpc import (
    dense_linear_algebra,
    nbody,
    sparse_solver,
    spectral_transform,
    stencil,
)
from repro.workloads.hybrid import ClosedLoopWorkflow, SurrogateModel
from repro.workloads.interchange import (
    CompiledModel,
    PortableModel,
    best_target,
    compile_for_device,
    export_model,
    from_wire,
    import_model,
    to_wire,
)
from repro.workloads.synthetic import GanPair, build_gan, synthesise_dataset
from repro.workloads.traces import JobTraceGenerator, TraceConfig

__all__ = [
    "AIModel",
    "ClosedLoopWorkflow",
    "CompiledModel",
    "DecisionMaker",
    "GanPair",
    "PortableModel",
    "build_gan",
    "synthesise_dataset",
    "TieredControlPolicy",
    "edge_ai",
    "human_operator",
    "remote_ai",
    "science_yield",
    "best_target",
    "compile_for_device",
    "export_model",
    "from_wire",
    "import_model",
    "to_wire",
    "DetectorPreset",
    "InstrumentStream",
    "Job",
    "JobClass",
    "JobTraceGenerator",
    "LayerShape",
    "Phase",
    "PhaseKind",
    "SurrogateModel",
    "Task",
    "TraceConfig",
    "build_cnn",
    "build_mlp",
    "build_transformer",
    "dense_linear_algebra",
    "nbody",
    "sparse_solver",
    "spectral_transform",
    "stencil",
]
