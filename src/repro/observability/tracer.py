"""Span/event tracer over simulated time.

The tracer records *where simulated time goes*: spans (a named interval
with a category), instant events (a point marker) and counter samples (a
numeric time series), all timestamped on the **simulation clock** — not
wall time. Export to Chrome ``trace_event`` JSON or JSONL lives in
:mod:`repro.observability.export`.

Design constraints, per the overhead contract (DESIGN.md §6):

* a disabled tracer is a handful of no-op method calls — it records
  nothing, allocates nothing per call, and schedules nothing on the
  simulation it observes;
* instrumented subsystems never need an open-span handle across
  callbacks when they already know both endpoints — :meth:`Tracer.complete`
  takes explicit start/end times, which also serves simulators that keep
  their own clock (e.g. the flow-level fabric).

Example
-------
>>> from repro.core.events import Simulation
>>> sim = Simulation()
>>> tracer = Tracer(clock=lambda: sim.now)
>>> with tracer.span("warmup", category="job"):
...     sim.run(until=5.0)
5.0
>>> tracer.spans[0].name, tracer.spans[0].duration
('warmup', 5.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.core.errors import ConfigurationError


@dataclass
class SpanRecord:
    """A closed span: ``[start, end]`` simulated seconds with a category."""

    name: str
    category: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


@dataclass
class InstantRecord:
    """A point event at one simulated timestamp."""

    name: str
    category: str
    time: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterRecord:
    """One sample of a numeric series (renders as a counter track)."""

    name: str
    time: float
    values: Dict[str, float] = field(default_factory=dict)


class _OpenSpan:
    """Handle returned by :meth:`Tracer.begin`; close with :meth:`Tracer.end`."""

    __slots__ = ("name", "category", "start", "args", "closed")

    def __init__(self, name: str, category: str, start: float, args: Dict[str, Any]):
        self.name = name
        self.category = category
        self.start = start
        self.args = args
        self.closed = False


class Tracer:
    """Records spans, instants and counter samples on simulated time.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time; used
        by :meth:`span`, and as the default timestamp for :meth:`begin`,
        :meth:`end` and :meth:`instant`. Optional — methods taking explicit
        times work without one.
    enabled:
        When False every record method is a no-op; flip at any time.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counters: List[CounterRecord] = []

    # --- clock helpers ----------------------------------------------------------

    def _time(self, explicit: Optional[float]) -> float:
        if explicit is not None:
            return explicit
        if self.clock is None:
            raise ConfigurationError(
                "tracer has no clock; pass an explicit timestamp"
            )
        return self.clock()

    # --- recording --------------------------------------------------------------

    def complete(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        **args: Any,
    ) -> None:
        """Record a finished span with explicit endpoints."""
        if not self.enabled:
            return
        if end < start:
            raise ConfigurationError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        self.spans.append(SpanRecord(name, category, start, end, args))

    def begin(
        self,
        name: str,
        category: str,
        time: Optional[float] = None,
        **args: Any,
    ) -> Optional[_OpenSpan]:
        """Open a span; returns a handle for :meth:`end` (None when disabled)."""
        if not self.enabled:
            return None
        return _OpenSpan(name, category, self._time(time), args)

    def end(self, handle: Optional[_OpenSpan], time: Optional[float] = None) -> None:
        """Close a span opened by :meth:`begin` (no-op for a None handle)."""
        if handle is None or not self.enabled:
            return
        if handle.closed:
            raise ConfigurationError(f"span {handle.name!r} already closed")
        handle.closed = True
        self.spans.append(
            SpanRecord(
                handle.name, handle.category, handle.start,
                self._time(time), handle.args,
            )
        )

    def span(self, name: str, category: str = "default", **args: Any):
        """Context manager recording a span around the ``with`` body.

        Requires a ``clock``; nests naturally — inner spans close first
        and are contained in the enclosing span's interval.
        """
        return _SpanContext(self, name, category, args)

    def instant(
        self,
        name: str,
        category: str,
        time: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.instants.append(InstantRecord(name, category, self._time(time), args))

    def sample(self, name: str, time: float, **values: float) -> None:
        """Record one sample of a counter series (e.g. queue depth)."""
        if not self.enabled:
            return
        self.counters.append(CounterRecord(name, time, dict(values)))

    # --- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    @property
    def categories(self) -> List[str]:
        """Distinct categories, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.spans:
            seen.setdefault(record.category, None)
        for record in self.instants:
            seen.setdefault(record.category, None)
        return list(seen)

    def spans_in(self, category: str) -> Iterator[SpanRecord]:
        """Spans of one category."""
        return (s for s in self.spans if s.category == category)

    def clear(self) -> None:
        """Drop every recorded span, instant and counter sample."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    def __init__(self, tracer: Tracer, name: str, category: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start: Optional[float] = None

    def __enter__(self) -> "_SpanContext":
        if self._tracer.enabled:
            self._start = self._tracer._time(None)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer.enabled and self._start is not None:
            self._tracer.complete(
                self._name, self._category, self._start,
                self._tracer._time(None), **self._args,
            )


#: A permanently-disabled tracer instrumented code can hold unconditionally.
NULL_TRACER = Tracer(enabled=False)
