"""Trace and metrics export: Chrome ``trace_event`` JSON, JSONL, summaries.

Chrome's trace-event format (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev) wants microsecond timestamps; simulated seconds
are scaled by 1e6. Spans become complete events (``"ph": "X"`` with
``ts``/``dur``), instants ``"ph": "I"``, counter samples ``"ph": "C"``.
Each category gets its own ``tid`` track, named via thread-name metadata
events, so kernel/queue/job/flow/wan activity renders as separate lanes.

The JSONL export is one record per line (``kind`` discriminated) and
round-trips through :func:`load_jsonl` — the archival format for diffing
runs; Chrome JSON is the viewing format.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple, Union

from repro.observability.tracer import (
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
)

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable per-category track ids, in first-seen order (tid 1, 2, ...)."""
    return {category: index + 1 for index, category in enumerate(tracer.categories)}


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's records as a Chrome ``trace_event`` JSON object."""
    tracks = _track_ids(tracer)
    events: List[dict] = []
    for category, tid in tracks.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": category},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": tracks.get(span.category, 0),
                "args": span.args,
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "I",
                "s": "t",
                "ts": instant.time * _US,
                "pid": 0,
                "tid": tracks.get(instant.category, 0),
                "args": instant.args,
            }
        )
    for counter in tracer.counters:
        events.append(
            {
                "name": counter.name,
                "ph": "C",
                "ts": counter.time * _US,
                "pid": 0,
                "args": counter.values,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the Chrome trace JSON; returns the path written."""
    output = pathlib.Path(path)
    output.write_text(json.dumps(chrome_trace(tracer), indent=1))
    return output


def jsonl_lines(tracer: Tracer) -> List[str]:
    """One JSON object per record: spans, instants, then counter samples."""
    lines = []
    for span in tracer.spans:
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": span.name,
                    "category": span.category,
                    "start": span.start,
                    "end": span.end,
                    "args": span.args,
                }
            )
        )
    for instant in tracer.instants:
        lines.append(
            json.dumps(
                {
                    "kind": "instant",
                    "name": instant.name,
                    "category": instant.category,
                    "time": instant.time,
                    "args": instant.args,
                }
            )
        )
    for counter in tracer.counters:
        lines.append(
            json.dumps(
                {
                    "kind": "counter",
                    "name": counter.name,
                    "time": counter.time,
                    "values": counter.values,
                }
            )
        )
    return lines


def write_jsonl(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the JSONL archival export; returns the path written."""
    output = pathlib.Path(path)
    output.write_text("\n".join(jsonl_lines(tracer)) + "\n")
    return output


def load_jsonl(path: Union[str, pathlib.Path]) -> Tracer:
    """Rebuild a (clockless) tracer from a JSONL export."""
    tracer = Tracer()
    for line in pathlib.Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "span":
            tracer.spans.append(
                SpanRecord(
                    record["name"], record["category"],
                    record["start"], record["end"], record.get("args", {}),
                )
            )
        elif kind == "instant":
            tracer.instants.append(
                InstantRecord(
                    record["name"], record["category"],
                    record["time"], record.get("args", {}),
                )
            )
        elif kind == "counter":
            tracer.counters.append(
                CounterRecord(record["name"], record["time"], record.get("values", {}))
            )
        else:
            raise ValueError(f"unknown record kind in {path}: {kind!r}")
    return tracer


def top_time_sinks(
    tracer: Tracer, n: int = 10
) -> List[Tuple[str, str, float, int, float]]:
    """The top-``n`` ``(category, name, total, count, mean)`` span groups.

    Spans are grouped by ``(category, name)`` and ranked by total
    simulated seconds — the run profile's "where did the time go" view.
    Note that overlapping spans (e.g. concurrent jobs) each contribute
    their full duration, so totals can exceed the wall span of the run.
    """
    totals: Dict[Tuple[str, str], List[float]] = {}
    for span in tracer.spans:
        bucket = totals.setdefault((span.category, span.name), [0.0, 0])
        bucket[0] += span.duration
        bucket[1] += 1
    ranked = sorted(totals.items(), key=lambda item: item[1][0], reverse=True)
    return [
        (category, name, total, int(count), total / count if count else 0.0)
        for (category, name), (total, count) in ranked[:n]
    ]


def counter_rows(registry) -> List[Tuple[str, str, float]]:
    """Flat ``(name, labels, value)`` rows for every counter/gauge series."""
    rows: List[Tuple[str, str, float]] = []
    for metric in registry:
        if metric.kind not in ("counter", "gauge"):
            continue
        for labels in metric.label_sets():
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            rows.append((metric.name, rendered, metric.value(**labels)))
    return rows


def histogram_rows(registry) -> List[Tuple[str, str, str, int, float]]:
    """``(name, labels, bucket, count, mean)`` rows for every histogram."""
    rows: List[Tuple[str, str, str, int, float]] = []
    for metric in registry:
        if metric.kind != "histogram":
            continue
        for labels in metric.label_sets():
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            counts = metric.counts(**labels)
            bounds = [f"<= {b:g}" for b in metric.buckets] + ["+inf"]
            mean = metric.mean(**labels)
            for bound, count in zip(bounds, counts):
                rows.append((metric.name, rendered, bound, count, mean))
    return rows
