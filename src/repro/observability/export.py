"""Trace and metrics export: Chrome ``trace_event`` JSON, JSONL, summaries.

Chrome's trace-event format (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev) wants microsecond timestamps; simulated seconds
are scaled by 1e6. Spans become complete events (``"ph": "X"`` with
``ts``/``dur``), instants ``"ph": "I"``, counter samples ``"ph": "C"``.
Each category gets its own ``tid`` track, named via thread-name metadata
events, so kernel/queue/job/flow/wan activity renders as separate lanes.

The JSONL export is one record per line (``kind`` discriminated) and
round-trips through :func:`load_jsonl` — the archival format for diffing
runs; Chrome JSON is the viewing format.  :func:`prometheus_lines`
renders a :class:`~repro.observability.metrics.MetricsRegistry` in the
Prometheus text exposition format (version 0.0.4) for scrape endpoints
and file-based collectors; :func:`parse_prometheus` reads it back for
round-trip tests.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.observability.tracer import (
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
)

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable per-category track ids, in first-seen order (tid 1, 2, ...)."""
    return {category: index + 1 for index, category in enumerate(tracer.categories)}


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's records as a Chrome ``trace_event`` JSON object."""
    tracks = _track_ids(tracer)
    events: List[dict] = []
    for category, tid in tracks.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": category},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": tracks.get(span.category, 0),
                "args": span.args,
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "I",
                "s": "t",
                "ts": instant.time * _US,
                "pid": 0,
                "tid": tracks.get(instant.category, 0),
                "args": instant.args,
            }
        )
    for counter in tracer.counters:
        events.append(
            {
                "name": counter.name,
                "ph": "C",
                "ts": counter.time * _US,
                "pid": 0,
                "args": counter.values,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the Chrome trace JSON; returns the path written."""
    output = pathlib.Path(path)
    output.write_text(json.dumps(chrome_trace(tracer), indent=1))
    return output


def jsonl_lines(tracer: Tracer) -> List[str]:
    """One JSON object per record: spans, instants, then counter samples."""
    lines = []
    for span in tracer.spans:
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": span.name,
                    "category": span.category,
                    "start": span.start,
                    "end": span.end,
                    "args": span.args,
                }
            )
        )
    for instant in tracer.instants:
        lines.append(
            json.dumps(
                {
                    "kind": "instant",
                    "name": instant.name,
                    "category": instant.category,
                    "time": instant.time,
                    "args": instant.args,
                }
            )
        )
    for counter in tracer.counters:
        lines.append(
            json.dumps(
                {
                    "kind": "counter",
                    "name": counter.name,
                    "time": counter.time,
                    "values": counter.values,
                }
            )
        )
    return lines


def write_jsonl(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the JSONL archival export; returns the path written."""
    output = pathlib.Path(path)
    output.write_text("\n".join(jsonl_lines(tracer)) + "\n")
    return output


#: Required fields per JSONL record kind (the corruption contract).
_JSONL_REQUIRED = {
    "span": ("name", "category", "start", "end"),
    "instant": ("name", "category", "time"),
    "counter": ("name", "time"),
}


def load_jsonl(path: Union[str, pathlib.Path]) -> Tracer:
    """Rebuild a (clockless) tracer from a JSONL export.

    Fails loudly on corruption, matching the ``load_sweep``/
    ``load_journal`` contract: malformed JSON, a non-object record, an
    unknown ``kind`` or a missing required field all raise ``ValueError``
    naming the path, the line number and the offending field.
    """
    source = pathlib.Path(path)
    tracer = Tracer()
    for number, line in enumerate(source.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{source}: corrupt trace line {number}: {error}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(
                f"{source}: trace line {number} is not an object "
                f"({type(record).__name__})"
            )
        kind = record.get("kind")
        if kind not in _JSONL_REQUIRED:
            raise ValueError(
                f"{source}: unknown record kind {kind!r} at line {number}"
            )
        for field in _JSONL_REQUIRED[kind]:
            if field not in record:
                raise ValueError(
                    f"{source}: {kind} record at line {number} missing "
                    f"required field {field!r}"
                )
        if kind == "span":
            tracer.spans.append(
                SpanRecord(
                    record["name"], record["category"],
                    record["start"], record["end"], record.get("args", {}),
                )
            )
        elif kind == "instant":
            tracer.instants.append(
                InstantRecord(
                    record["name"], record["category"],
                    record["time"], record.get("args", {}),
                )
            )
        else:
            tracer.counters.append(
                CounterRecord(record["name"], record["time"], record.get("values", {}))
            )
    return tracer


def top_time_sinks(
    tracer: Tracer, n: int = 10
) -> List[Tuple[str, str, float, int, float]]:
    """The top-``n`` ``(category, name, total, count, mean)`` span groups.

    Spans are grouped by ``(category, name)`` and ranked by total
    simulated seconds — the run profile's "where did the time go" view.
    Note that overlapping spans (e.g. concurrent jobs) each contribute
    their full duration, so totals can exceed the wall span of the run.
    An empty (or never-used) tracer yields ``[]``.
    """
    if not tracer.spans:
        return []
    totals: Dict[Tuple[str, str], List[float]] = {}
    for span in tracer.spans:
        bucket = totals.setdefault((span.category, span.name), [0.0, 0])
        bucket[0] += span.duration
        bucket[1] += 1
    ranked = sorted(totals.items(), key=lambda item: item[1][0], reverse=True)
    return [
        (category, name, total, int(count), total / count if count else 0.0)
        for (category, name), (total, count) in ranked[:n]
    ]


def counter_rows(registry) -> List[Tuple[str, str, float]]:
    """Flat ``(name, labels, value)`` rows for every counter/gauge series."""
    rows: List[Tuple[str, str, float]] = []
    for metric in registry:
        if metric.kind not in ("counter", "gauge"):
            continue
        for labels in metric.label_sets():
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            rows.append((metric.name, rendered, metric.value(**labels)))
    return rows


def histogram_rows(registry) -> List[Tuple[str, str, str, int, float]]:
    """``(name, labels, bucket, count, mean)`` rows for every histogram."""
    rows: List[Tuple[str, str, str, int, float]] = []
    for metric in registry:
        if metric.kind != "histogram":
            continue
        for labels in metric.label_sets():
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            counts = metric.counts(**labels)
            bounds = [f"<= {b:g}" for b in metric.buckets] + ["+inf"]
            mean = metric.mean(**labels)
            for bound, count in zip(bounds, counts):
                rows.append((metric.name, rendered, bound, count, mean))
    return rows


# --- Prometheus text exposition -------------------------------------------------


def _prometheus_name(name: str) -> str:
    """Sanitise a metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*`` required."""
    sanitised = "".join(
        c if c.isascii() and (c.isalnum() or c in "_:") else "_"
        for c in name
    )
    if not sanitised or not (sanitised[0].isalpha() or sanitised[0] in "_:"):
        sanitised = "_" + sanitised
    return sanitised


def _prometheus_escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prometheus_labels(labels: Dict[str, str], extra: str = "") -> str:
    """``{k="v",...}`` rendering (sorted), or ``""`` for no labels."""
    parts = [
        f'{_prometheus_name(k)}="{_prometheus_escape(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prometheus_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def prometheus_lines(registry) -> List[str]:
    """Render a metrics registry in the Prometheus text exposition format.

    Counters and gauges become one sample per label set; histograms
    become cumulative ``_bucket{le="..."}`` samples (Prometheus ``le``
    semantics match :class:`~repro.observability.metrics.Histogram`
    exactly) plus ``_sum`` and ``_count``.  Metric names are sanitised
    (``.`` becomes ``_``); output order is deterministic: metrics in
    registration order, label sets sorted.
    """
    lines: List[str] = []
    for metric in registry:
        name = _prometheus_name(metric.name)
        if metric.description:
            lines.append(f"# HELP {name} {metric.description}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"# TYPE {name} {metric.kind}")
            label_sets = sorted(
                metric.label_sets(), key=lambda d: sorted(d.items())
            )
            if not label_sets:
                label_sets = [{}]
            for labels in label_sets:
                lines.append(
                    f"{name}{_prometheus_labels(labels)} "
                    f"{_prometheus_value(metric.value(**labels))}"
                )
        elif metric.kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            label_sets = sorted(
                metric.label_sets(), key=lambda d: sorted(d.items())
            )
            for labels in label_sets:
                counts = metric.counts(**labels)
                cumulative = 0
                for bound, count in zip(metric.buckets, counts):
                    cumulative += count
                    le = f'le="{_prometheus_value(float(bound))}"'
                    lines.append(
                        f"{name}_bucket{_prometheus_labels(labels, le)} "
                        f"{cumulative}"
                    )
                cumulative += counts[-1]
                inf_le = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_prometheus_labels(labels, inf_le)} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{name}_sum{_prometheus_labels(labels)} "
                    f"{_prometheus_value(metric.sum(**labels))}"
                )
                lines.append(
                    f"{name}_count{_prometheus_labels(labels)} {cumulative}"
                )
    return lines


def write_prometheus(
    registry, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the Prometheus text exposition; returns the path written."""
    output = pathlib.Path(path)
    lines = prometheus_lines(registry)
    output.write_text("\n".join(lines) + ("\n" if lines else ""))
    return output


def parse_prometheus(text: str) -> Dict[Tuple[str, str], float]:
    """Parse a text exposition back into ``{(name, labels): value}``.

    ``labels`` is the sorted ``k="v",...`` body (empty string when
    unlabelled).  Comments and blank lines are skipped; a malformed
    sample line raises ``ValueError`` naming the line.  Covers the
    subset :func:`prometheus_lines` emits — enough for round-trip tests
    and smoke validation, not a general scrape parser.
    """
    samples: Dict[Tuple[str, str], float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            body, separator, value_text = rest.rpartition("} ")
            if not separator:
                raise ValueError(
                    f"prometheus line {number} has an unterminated label "
                    f"set: {line!r}"
                )
            labels = ",".join(sorted(body.split(",")))
        else:
            name, _, value_text = line.rpartition(" ")
            labels = ""
        name = name.strip()
        value_text = value_text.strip()
        if not name or not value_text:
            raise ValueError(
                f"prometheus line {number} is not `name value`: {line!r}"
            )
        try:
            value = float(value_text.replace("+Inf", "inf"))
        except ValueError:
            raise ValueError(
                f"prometheus line {number} has a non-numeric value: "
                f"{value_text!r}"
            ) from None
        samples[(name, labels)] = value
    return samples
