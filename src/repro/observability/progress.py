"""Live sweep progress: a TTY-aware single-line reporter.

:class:`SweepProgressReporter` plugs into ``run_sweep``'s ``progress``
callback slot and renders one continuously-rewritten status line on a
TTY (``\\r`` + erase-to-end), or throttled plain lines on anything else
(CI logs, pipes).  The line shows completed/total points, throughput,
an ETA extrapolated from throughput so far, and — when the sweep runs
supervised with a telemetry registry attached — the harness's retry /
crash / timeout / failure counters straight from the
``sweep.supervisor.*`` series.

The reporter observes; it never feeds anything back into the sweep, so
a run with ``--progress`` is bit-identical to one without.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

from repro.core.units import format_time

#: Supervisor counters worth surfacing, with their short display labels.
_HARNESS_COUNTERS = (
    ("retries", "retry"),
    ("crashes", "crash"),
    ("timeouts", "timeout"),
    ("failed", "fail"),
)

#: Fleet counters (tcp backend) worth surfacing on the same line.
_FLEET_COUNTERS = (
    ("hosts_seen", "hosts"),
    ("hosts_lost", "lost"),
    ("stolen", "stolen"),
)


class SweepProgressReporter:
    """Renders sweep progress as results arrive.

    Parameters
    ----------
    total:
        Total number of points the run will complete (grid size minus
        points already satisfied by a resumed journal).
    telemetry:
        The parent-side :class:`~repro.observability.probes.Telemetry`
        passed to ``run_sweep`` — the source of the
        ``sweep.supervisor.*`` harness counters.  Optional: without it
        the line simply omits the harness column.
    stream:
        Output stream (default ``sys.stderr`` so progress never pollutes
        piped result output).  TTY detection keys off this stream.
    min_interval:
        Minimum wall seconds between non-TTY lines (TTY rewrites are
        cheap and happen on every event).
    clock:
        Injectable time source for tests (default ``time.monotonic``).
    """

    def __init__(
        self,
        total: int,
        telemetry=None,
        stream=None,
        min_interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = max(0, int(total))
        self.telemetry = telemetry
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.clock = clock
        self.done = 0
        self._started = clock()
        self._last_emit: Optional[float] = None
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._open_line = False

    # -- the callback ------------------------------------------------------

    def __call__(self, point_result) -> None:
        """``run_sweep`` progress hook: one completed point per call."""
        self.done += 1
        now = self.clock()
        if self._is_tty:
            self._emit(now)
        elif (
            self._last_emit is None
            or now - self._last_emit >= self.min_interval
            or self.done >= self.total
        ):
            self._emit(now)

    def _harness_suffix(self) -> str:
        if self.telemetry is None:
            return ""
        registry = self.telemetry.metrics
        parts = []
        for counter, label in _HARNESS_COUNTERS:
            name = f"sweep.supervisor.{counter}"
            if name in registry:
                value = registry.get(name).total()
                if value:
                    parts.append(f"{label}={value:g}")
        # Fleet counters only exist under the tcp backend; ``hosts``
        # shows live connected hosts (seen minus lost), so an operator
        # watching the line sees the fleet shrink and recover.
        for counter, label in _FLEET_COUNTERS:
            name = f"sweep.supervisor.{counter}"
            if name not in registry:
                continue
            value = registry.get(name).total()
            if counter == "hosts_seen":
                lost_name = "sweep.supervisor.hosts_lost"
                lost = (
                    registry.get(lost_name).total()
                    if lost_name in registry else 0.0
                )
                if value:
                    parts.append(f"{label}={value - lost:g}/{value:g}")
            elif value:
                parts.append(f"{label}={value:g}")
        return f" [{' '.join(parts)}]" if parts else ""

    def line(self, now: Optional[float] = None) -> str:
        """The current status line (exposed for tests)."""
        now = self.clock() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        if self.done and self.done < self.total and rate > 0:
            eta = format_time((self.total - self.done) / rate)
        elif self.done >= self.total:
            eta = "done"
        else:
            eta = "?"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        return (
            f"sweep: {self.done}/{self.total} points ({percent:.0f}%) "
            f"{rate:.1f} pts/s eta {eta}{self._harness_suffix()}"
        )

    def snapshot(self, now: Optional[float] = None) -> dict:
        """The current progress state as a JSON-ready dict.

        This is the machine-readable twin of :meth:`line`, streamed as
        NDJSON ``progress`` events by ``python -m repro serve``.  The
        ``harness`` map carries the non-zero ``sweep.supervisor.*``
        counter totals (retries, crashes, timeouts, fleet churn) so a
        streaming client sees the same recovery story a TTY watcher
        would.
        """
        now = self.clock() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        harness = {}
        if self.telemetry is not None:
            registry = self.telemetry.metrics
            for counter, _ in _HARNESS_COUNTERS + _FLEET_COUNTERS:
                name = f"sweep.supervisor.{counter}"
                if name in registry:
                    value = registry.get(name).total()
                    if value:
                        harness[counter] = value
        return {
            "done": self.done,
            "total": self.total,
            "rate_pts_per_s": self.done / elapsed,
            "harness": harness,
        }

    def _emit(self, now: float) -> None:
        self._last_emit = now
        text = self.line(now)
        if self._is_tty:
            # Rewrite in place: carriage return + line + erase-to-end.
            self.stream.write(f"\r{text}\x1b[K")
            self._open_line = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Finish the display: terminate the rewritten TTY line."""
        if self._is_tty and self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False

    def __enter__(self) -> "SweepProgressReporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
