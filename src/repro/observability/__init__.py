"""Simulation telemetry: tracing, metrics and export for instrumented runs.

The observability layer answers "where do simulated time, bytes and
dollars go?" for any run of the framework:

* :mod:`~repro.observability.tracer` — spans/instants/counter samples on
  the simulation clock,
* :mod:`~repro.observability.metrics` — named counters, gauges and
  fixed-bucket histograms with label support, plus sim-clock samplers,
* :mod:`~repro.observability.probes` — the :class:`Telemetry` facade the
  instrumented subsystems accept, kernel hooks and sampler attachments,
* :mod:`~repro.observability.export` — Chrome ``trace_event`` JSON, JSONL
  round-trip and top-N time-sink summaries.

Overhead contract: everything is **off by default**. A subsystem built
without a :class:`Telemetry` object performs one ``is not None`` test per
instrumented operation and records nothing; the kernel without hooks is
bit-identical to the unhooked kernel (same event order, same final clock).
This package depends only on :mod:`repro.core` — subsystems import it,
never the reverse.
"""

from repro.observability.export import (
    chrome_trace,
    counter_rows,
    histogram_rows,
    jsonl_lines,
    load_jsonl,
    top_time_sinks,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSampler,
    exponential_buckets,
)
from repro.observability.probes import (
    KernelProbe,
    Telemetry,
    attach_cluster_sampler,
    attach_kernel_sampler,
)
from repro.observability.tracer import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "CounterRecord",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "KernelProbe",
    "MetricsRegistry",
    "NULL_TRACER",
    "PeriodicSampler",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "attach_cluster_sampler",
    "attach_kernel_sampler",
    "chrome_trace",
    "counter_rows",
    "exponential_buckets",
    "histogram_rows",
    "jsonl_lines",
    "load_jsonl",
    "top_time_sinks",
    "write_chrome_trace",
    "write_jsonl",
]
