"""Simulation telemetry: tracing, metrics, profiling and export.

The observability layer answers "where do simulated time, bytes and
dollars go?" — and, since the second layer, "where does *wall-clock*
time go?" — for any run of the framework:

* :mod:`~repro.observability.tracer` — spans/instants/counter samples on
  the simulation clock,
* :mod:`~repro.observability.metrics` — named counters, gauges and
  fixed-bucket histograms with label support, plus sim-clock samplers,
* :mod:`~repro.observability.probes` — the :class:`Telemetry` facade the
  instrumented subsystems accept, kernel hooks and sampler attachments,
* :mod:`~repro.observability.profiler` — wall-clock phase attribution
  (:class:`PhaseProfiler`), a sampling stack profiler
  (:class:`StackSampler`), collapsed-stack/flamegraph and wall-clock
  Chrome-trace exports, and the ``repro.profile/v1`` report,
* :mod:`~repro.observability.summary` — picklable telemetry summaries
  that merge deterministically across sweep worker processes,
* :mod:`~repro.observability.progress` — the TTY-aware live sweep
  progress line,
* :mod:`~repro.observability.export` — Chrome ``trace_event`` JSON,
  JSONL round-trip, top-N time-sink summaries and Prometheus
  text-format exposition.

Overhead contract: everything is **off by default**. A subsystem built
without a :class:`Telemetry` object performs one ``is not None`` test per
instrumented operation and records nothing; the kernel without hooks is
bit-identical to the unhooked kernel (same event order, same final clock).
This package depends only on :mod:`repro.core` — subsystems import it,
never the reverse.
"""

from repro.observability.export import (
    chrome_trace,
    counter_rows,
    histogram_rows,
    jsonl_lines,
    load_jsonl,
    parse_prometheus,
    prometheus_lines,
    top_time_sinks,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSampler,
    exponential_buckets,
)
from repro.observability.probes import (
    KernelProbe,
    ProfilingKernelProbe,
    Telemetry,
    attach_cluster_sampler,
    attach_kernel_sampler,
)
from repro.observability.profiler import (
    NULL_PROFILER,
    PHASE_CONGESTION,
    PHASE_DISPATCH,
    PHASE_ROUTING,
    PHASE_RUN,
    PHASE_TELEMETRY,
    PhaseProfiler,
    StackSampler,
    callback_label,
    collapsed_stack_lines,
    parse_collapsed,
    profile_report,
    profiler_chrome_trace,
    write_collapsed,
    write_profiler_chrome_trace,
)
from repro.observability.progress import SweepProgressReporter
from repro.observability.summary import (
    host_breakdown,
    merge_summaries,
    parse_label_string,
    registry_from_summary,
    summarize_telemetry,
    summary_totals,
)
from repro.observability.tracer import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "CounterRecord",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "KernelProbe",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "PHASE_CONGESTION",
    "PHASE_DISPATCH",
    "PHASE_ROUTING",
    "PHASE_RUN",
    "PHASE_TELEMETRY",
    "PeriodicSampler",
    "PhaseProfiler",
    "ProfilingKernelProbe",
    "SpanRecord",
    "StackSampler",
    "SweepProgressReporter",
    "Telemetry",
    "Tracer",
    "attach_cluster_sampler",
    "attach_kernel_sampler",
    "callback_label",
    "chrome_trace",
    "collapsed_stack_lines",
    "counter_rows",
    "exponential_buckets",
    "histogram_rows",
    "host_breakdown",
    "jsonl_lines",
    "load_jsonl",
    "merge_summaries",
    "parse_collapsed",
    "parse_label_string",
    "parse_prometheus",
    "profile_report",
    "profiler_chrome_trace",
    "prometheus_lines",
    "registry_from_summary",
    "summarize_telemetry",
    "summary_totals",
    "top_time_sinks",
    "write_chrome_trace",
    "write_collapsed",
    "write_jsonl",
    "write_profiler_chrome_trace",
    "write_prometheus",
]
