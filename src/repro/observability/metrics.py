"""Named metrics: counters, gauges, fixed-bucket histograms, samplers.

A :class:`MetricsRegistry` is the single place an instrumented run
accumulates numbers: monotonically-increasing :class:`Counter`\\ s,
last-value :class:`Gauge`\\ s and fixed-bucket :class:`Histogram`\\ s, each
optionally split by labels (``counter.inc(1, site="east")``). The
:class:`PeriodicSampler` drives gauge snapshots off the **simulation
clock**, so sampled series line up with traced spans.

Everything here depends only on :mod:`repro.core` — the instrumented
subsystems (scheduling, interconnect, federation) import this package,
never the reverse.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.events import Simulation

#: Canonical key for an unlabelled observation.
_NO_LABELS: Tuple[Tuple[str, str], ...] = ()


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named metric with per-label-set storage."""

    kind = "metric"

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ConfigurationError("metric needs a non-empty name")
        self.name = name
        self.description = description

    def label_sets(self) -> List[Dict[str, str]]:
        """Every label combination observed so far, as dicts."""
        return [dict(key) for key in self._keys()]

    def _keys(self) -> Iterator[Tuple[Tuple[str, str], ...]]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically-increasing count (events, bytes, decisions)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be non-negative) to the labelled series."""
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current count for one label set (0 if never incremented)."""
        key = _label_key(labels) if labels else _NO_LABELS
        return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def _keys(self):
        return iter(self._values)


class Gauge(Metric):
    """A last-value-wins measurement (queue depth, free devices)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Record the current value for the labelled series."""
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        """Adjust the current value (gauges may go down)."""
        key = _label_key(labels) if labels else _NO_LABELS
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        """Current value for one label set (0 if never set)."""
        key = _label_key(labels) if labels else _NO_LABELS
        return self._values.get(key, 0.0)

    def _keys(self):
        return iter(self._values)


class Histogram(Metric):
    """Fixed-bucket histogram of observations.

    ``buckets`` are strictly-increasing upper bounds; an implicit
    overflow bucket (+inf) always exists, so ``counts`` has
    ``len(buckets) + 1`` entries. Bucket test is ``value <= bound``
    (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float],
        description: str = "",
    ) -> None:
        super().__init__(name, description)
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ConfigurationError(f"{name}: histogram needs >= 1 bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError(f"{name}: bucket bounds must strictly increase")
        self.buckets = bounds
        self._counts: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Add one observation to the labelled series."""
        key = _label_key(labels) if labels else _NO_LABELS
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value

    def counts(self, **labels: object) -> List[int]:
        """Per-bucket counts (last entry is the +inf overflow bucket)."""
        key = _label_key(labels) if labels else _NO_LABELS
        return list(self._counts.get(key, [0] * (len(self.buckets) + 1)))

    def count(self, **labels: object) -> int:
        """Total number of observations for one label set."""
        return sum(self.counts(**labels))

    def sum(self, **labels: object) -> float:
        """Sum of observed values for one label set."""
        key = _label_key(labels) if labels else _NO_LABELS
        return self._sums.get(key, 0.0)

    def mean(self, **labels: object) -> float:
        """Mean observation (0 for an empty series)."""
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def _keys(self):
        return iter(self._counts)


def exponential_buckets(start: float, factor: float, count: int) -> List[float]:
    """Geometric bucket bounds: ``start * factor**i`` for ``i < count``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ConfigurationError("need start > 0, factor > 1, count >= 1")
    return [start * factor ** i for i in range(count)]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing instance; requesting it as a
    different kind (or a histogram with different buckets) raises — the
    name is the contract.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        description: str = "",
    ) -> Histogram:
        """Get or create a :class:`Histogram` (bucket bounds must match)."""
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, buckets, description)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, Histogram):
            raise ConfigurationError(
                f"{name} is a {existing.kind}, not a histogram"
            )
        if existing.buckets != [float(b) for b in buckets]:
            raise ConfigurationError(f"{name}: bucket bounds differ from existing")
        return existing

    def _get_or_create(self, cls, name: str, description: str):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, description)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, cls):
            raise ConfigurationError(
                f"{name} is a {existing.kind}, not a {cls.kind}"
            )
        return existing

    def get(self, name: str) -> Metric:
        """Look up a metric by name (KeyError with the known names if absent)."""
        try:
            return self._metrics[name]
        except KeyError:
            known = ", ".join(sorted(self._metrics))
            raise KeyError(f"unknown metric {name!r}; registry has: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every metric (for reuse across experiment repetitions)."""
        self._metrics.clear()


class PeriodicSampler:
    """Calls ``fn(now)`` every ``period`` simulated seconds.

    Driven by the simulation's own event queue, so samples interleave
    deterministically with the workload. Two stopping modes:

    * default (``keepalive=False``): ticks are scheduled as **daemon**
      events, so they never count towards ``Simulation.pending`` and a
      plain ``Simulation.run()`` still drains once real work finishes —
      any number of samplers can coexist without keeping each other (or
      the simulation) alive;
    * ``keepalive=True``: ticks are ordinary live events; the run must be
      bounded with ``Simulation.run(until=...)`` (or the sampler
      explicitly :meth:`stop`\\ ped), matching the kernel's
      clock-advance-to-horizon semantics.
    """

    def __init__(
        self,
        simulation: Simulation,
        period: float,
        fn: Callable[[float], None],
        keepalive: bool = False,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"sampler period must be positive: {period}")
        self.simulation = simulation
        self.period = period
        self.fn = fn
        self.keepalive = keepalive
        self.samples_taken = 0
        self._stopped = False
        self._armed = False

    def start(self, delay: Optional[float] = None) -> "PeriodicSampler":
        """Arm the first tick ``delay`` seconds from now (default: one period)."""
        if self._armed:
            raise ConfigurationError("sampler already started")
        self._armed = True
        self._stopped = False
        self.simulation.schedule(
            self.period if delay is None else delay, self._tick,
            daemon=not self.keepalive,
        )
        return self

    def stop(self) -> None:
        """Stop sampling; the already-armed tick (if any) becomes a no-op."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fn(self.simulation.now)
        self.samples_taken += 1
        self.simulation.schedule(
            self.period, self._tick, daemon=not self.keepalive
        )
