"""Probes: the `Telemetry` facade and ready-made instrumentation hooks.

:class:`Telemetry` bundles one :class:`~repro.observability.tracer.Tracer`
and one :class:`~repro.observability.metrics.MetricsRegistry` — the single
object instrumented subsystems accept (``telemetry: Optional[Telemetry]``)
and test before every recording call. The overhead contract: a subsystem
holding ``telemetry=None`` pays exactly one ``is not None`` test per
instrumented operation; the simulation kernel with no hooks attached
behaves bit-identically to the unhooked seed kernel.

:class:`KernelProbe` implements the kernel's
:class:`~repro.core.events.SimulationHooks` protocol and counts
schedule/fire/cancel; attach helpers wire periodic samplers for the three
instrumented layers (cluster queues, fabric links, federation WAN).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Optional

from repro.core.events import Event, Simulation, SimulationHooks
from repro.observability.metrics import MetricsRegistry, PeriodicSampler
from repro.observability.profiler import (
    PHASE_DISPATCH,
    PHASE_TELEMETRY,
    PhaseProfiler,
    callback_label,
)
from repro.observability.tracer import Tracer

#: Span categories used by the built-in instrumentation.
CATEGORY_KERNEL = "kernel"
CATEGORY_QUEUE = "queue"
CATEGORY_JOB = "job"
CATEGORY_FLOW = "flow"
CATEGORY_WAN = "wan"
CATEGORY_CONGESTION = "congestion"
CATEGORY_FAULT = "fault"


class Telemetry:
    """One tracer plus one metrics registry, shared by an instrumented run.

    Parameters
    ----------
    simulation:
        When given, the tracer's clock reads ``simulation.now`` and a
        :class:`KernelProbe` is attached to the kernel's hooks.
    tracer / metrics:
        Pre-built components to share; fresh ones are created by default.
    profiler:
        An optional :class:`~repro.observability.profiler.PhaseProfiler`.
        When given, the kernel probe also brackets every event callback
        with ``time.perf_counter`` and charges the wall latency to the
        profiler's dispatch phase, keyed by the callback's qualified
        name; periodic samplers started through :meth:`sample_every`
        charge their own cost to the ``telemetry`` phase.
    """

    def __init__(
        self,
        simulation: Optional[Simulation] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        clock = (lambda: simulation.now) if simulation is not None else None
        # `or` would discard an empty tracer/registry (both define __len__).
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        if tracer is not None and tracer.clock is None and clock is not None:
            tracer.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler
        self.simulation = simulation
        self._samplers: list[PeriodicSampler] = []
        if simulation is not None:
            simulation.set_hooks(self._make_probe())

    def _make_probe(self) -> "KernelProbe":
        if self.profiler is not None and self.profiler.enabled:
            return ProfilingKernelProbe(self)
        return KernelProbe(self)

    def bind_simulation(self, simulation: Simulation) -> None:
        """Late-bind a simulation: sets the tracer clock and kernel hooks.

        No-op if a simulation is already bound — the first binding wins,
        so a telemetry object shared across components observes one clock.
        """
        if self.simulation is not None:
            return
        self.simulation = simulation
        if self.tracer.clock is None:
            self.tracer.clock = lambda: simulation.now
        simulation.set_hooks(self._make_probe())

    # --- convenience pass-throughs ---------------------------------------------

    def counter(self, name: str, description: str = ""):
        """Shorthand for ``telemetry.metrics.counter``."""
        return self.metrics.counter(name, description)

    def gauge(self, name: str, description: str = ""):
        """Shorthand for ``telemetry.metrics.gauge``."""
        return self.metrics.gauge(name, description)

    def histogram(self, name: str, buckets, description: str = ""):
        """Shorthand for ``telemetry.metrics.histogram``."""
        return self.metrics.histogram(name, buckets, description)

    def sample_every(
        self,
        simulation: Simulation,
        period: float,
        fn: Callable[[float], None],
        keepalive: bool = False,
        delay: Optional[float] = None,
    ) -> PeriodicSampler:
        """Start (and track) a :class:`PeriodicSampler` on ``simulation``.

        When a profiler is attached, the sampler's own wall cost is
        charged to the ``telemetry`` phase so self-observation shows up
        in the profile instead of polluting the dispatch numbers.
        """
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            inner = fn

            def fn(now: float, _inner=inner, _profiler=profiler) -> None:
                start = time.perf_counter()
                try:
                    _inner(now)
                finally:
                    _profiler.add(
                        PHASE_TELEMETRY, time.perf_counter() - start
                    )

        sampler = PeriodicSampler(simulation, period, fn, keepalive=keepalive)
        sampler.start(delay=delay)
        self._samplers.append(sampler)
        return sampler

    def stop_samplers(self) -> None:
        """Stop every sampler started through :meth:`sample_every`."""
        for sampler in self._samplers:
            sampler.stop()


class KernelProbe(SimulationHooks):
    """Counts kernel lifecycle events into ``sim.events.*`` counters."""

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._scheduled = metrics.counter(
            "sim.events.scheduled", "events pushed onto the kernel queue"
        )
        self._fired = metrics.counter(
            "sim.events.fired", "events whose callback ran"
        )
        self._cancelled = metrics.counter(
            "sim.events.cancelled", "live events cancelled before firing"
        )

    def on_schedule(self, simulation: Simulation, event: Event) -> None:
        self._scheduled.inc()

    def on_fire(self, simulation: Simulation, event: Event) -> None:
        self._fired.inc()

    def on_cancel(self, simulation: Simulation, event: Event) -> None:
        self._cancelled.inc()


class ProfilingKernelProbe(KernelProbe):
    """A :class:`KernelProbe` that also times every event callback.

    :meth:`on_fire_start` captures ``time.perf_counter`` just before the
    kernel runs the callback; :meth:`on_fire` measures the elapsed wall
    time *first* (so label computation never inflates the interval), then
    charges it to the profiler's dispatch phase under the callback's
    qualified name and falls through to the counting probe.

    Accumulator slots are cached by the callback's code object — the
    thousand distinct lambdas a run schedules share one code object per
    source lambda, so :func:`~repro.observability.profiler.callback_label`
    and the profiler's dict lookups (the expensive parts of the probe) run
    once per call *site*; the per-event path is two ``perf_counter`` calls,
    two list updates and a bisect.  ``bench_kernel.py`` gates the result.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        super().__init__(telemetry)
        if telemetry.profiler is None:
            raise ValueError("ProfilingKernelProbe requires telemetry.profiler")
        self._profiler = telemetry.profiler
        self._start = 0.0
        self._clock = time.perf_counter
        self._bounds = self._profiler.latency_buckets
        self._slots: dict = {}
        self._generation = self._profiler.generation

    def on_fire_start(self, simulation: Simulation, event: Event) -> None:
        self._start = self._clock()

    def on_fire(self, simulation: Simulation, event: Event) -> None:
        elapsed = self._clock() - self._start
        profiler = self._profiler
        if profiler.generation != self._generation:
            # The profiler was cleared; drop the stale slot references.
            self._slots.clear()
            self._generation = profiler.generation
        callback = event.callback
        try:
            key = callback.__code__
        except AttributeError:
            inner = getattr(callback, "func", None)  # functools.partial
            key = (
                getattr(inner, "__code__", None) if inner is not None else None
            ) or type(callback)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = profiler.event_slot(
                callback_label(callback)
            )
        slot[0] += elapsed
        slot[1] += 1
        slot[2 + bisect_left(self._bounds, elapsed)] += 1
        if profiler.detail:
            profiler._record(PHASE_DISPATCH, elapsed)
        self._fired.inc()


def attach_cluster_sampler(
    telemetry: Telemetry,
    cluster,
    period: float,
    keepalive: bool = False,
) -> PeriodicSampler:
    """Sample a cluster's queue depth and free devices every ``period`` s.

    Writes gauges ``cluster.queue_depth`` / ``cluster.free_devices``
    (labelled by site and device) and mirrors the queue depth into the
    tracer as a counter track, so the trace viewer shows backlog over the
    same timeline as the job spans.
    """
    depth = telemetry.gauge("cluster.queue_depth", "jobs waiting in the queue")
    free = telemetry.gauge("cluster.free_devices", "idle devices in the pool")
    site = cluster.site.name
    device = cluster.device.name

    def take(now: float) -> None:
        depth.set(cluster.queue_depth, site=site, device=device)
        free.set(cluster.free_devices, site=site, device=device)
        telemetry.tracer.sample(
            f"queue_depth:{site}/{device}", now, depth=cluster.queue_depth
        )

    return telemetry.sample_every(
        cluster.simulation, period, take, keepalive=keepalive
    )


def attach_kernel_sampler(
    telemetry: Telemetry,
    simulation: Simulation,
    period: float,
    keepalive: bool = False,
) -> PeriodicSampler:
    """Sample the kernel's live-event count (O(1) ``Simulation.pending``)."""
    pending = telemetry.gauge("sim.pending", "live events in the kernel queue")

    def take(now: float) -> None:
        pending.set(simulation.pending)
        telemetry.tracer.sample("sim.pending", now, pending=simulation.pending)

    return telemetry.sample_every(simulation, period, take, keepalive=keepalive)
