"""Telemetry summaries: picklable snapshots that merge deterministically.

The sweep engine runs every scenario point in a worker process with its
own fresh :class:`~repro.observability.probes.Telemetry`; when the worker
exits, everything it measured dies with it.  This module defines the
cross-process form: :func:`summarize_telemetry` flattens one run's
metrics registry and tracer into a plain-JSON dict small enough to ride
the supervisor's result pipes and the run journal, and
:func:`merge_summaries` folds any number of such summaries into one
aggregate.

Determinism contract: merging is plain float addition, which is **order
dependent**, so callers must always merge in point-index order (the sweep
engine does).  Under that rule the aggregate is bit-identical at any
worker count: each per-point summary is a pure function of the point, and
the fold order is a pure function of the grid.

Gauges are deliberately *not* summarised: a gauge is last-value-wins, and
"last" across processes depends on scheduling — there is no
order-independent merge.  Counter totals, histogram bucket counts and
span durations all add.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.observability.metrics import MetricsRegistry

#: Summary document schema identifier.
SCHEMA = "repro.telemetry.summary/v1"


def _label_string(labels: Mapping[str, object]) -> str:
    """Canonical ``k=v,k2=v2`` form (sorted; empty string when unlabelled)."""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def parse_label_string(text: str) -> Dict[str, str]:
    """Invert :func:`_label_string` (label values must not contain ``,``/``=``)."""
    if not text:
        return {}
    labels: Dict[str, str] = {}
    for part in text.split(","):
        key, separator, value = part.partition("=")
        if not separator:
            raise ValueError(f"malformed label clause {part!r} in {text!r}")
        labels[key] = value
    return labels


def summarize_telemetry(telemetry) -> dict:
    """Flatten one run's telemetry into a JSON-ready summary dict.

    Covers counters (per label set), histograms (bucket counts + sum per
    label set) and the tracer's spans/instants aggregated by
    ``(category, name)``.  Gauges are skipped — see the module docstring.
    """
    counters: Dict[str, dict] = {}
    histograms: Dict[str, dict] = {}
    for metric in telemetry.metrics:
        if metric.kind == "counter":
            counters[metric.name] = {
                "help": metric.description,
                "series": {
                    _label_string(labels): metric.value(**labels)
                    for labels in metric.label_sets()
                },
            }
        elif metric.kind == "histogram":
            histograms[metric.name] = {
                "help": metric.description,
                "buckets": list(metric.buckets),
                "series": {
                    _label_string(labels): {
                        "counts": metric.counts(**labels),
                        "sum": metric.sum(**labels),
                    }
                    for labels in metric.label_sets()
                },
            }
    spans: Dict[str, Dict[str, dict]] = {}
    for record in telemetry.tracer.spans:
        entry = spans.setdefault(record.category, {}).setdefault(
            record.name, {"total": 0.0, "count": 0}
        )
        entry["total"] += record.duration
        entry["count"] += 1
    instants: Dict[str, Dict[str, int]] = {}
    for record in telemetry.tracer.instants:
        by_name = instants.setdefault(record.category, {})
        by_name[record.name] = by_name.get(record.name, 0) + 1
    return {
        "schema": SCHEMA,
        "counters": counters,
        "histograms": histograms,
        "spans": spans,
        "instants": instants,
    }


def host_breakdown(
    summary: dict, prefix: str = "sweep.fleet."
) -> Dict[str, Dict[str, float]]:
    """Per-host fleet event counts from a summary's labelled counters.

    The distributed sweep coordinator labels every ``sweep.fleet.*``
    counter increment with ``host=<name>``; this folds those series into
    ``{host: {event: value}}`` — e.g. ``{"h0": {"dispatched": 6.0,
    "completed": 6.0}}`` — for fleet dashboards and the CLI's post-sweep
    per-host table.  Hosts and events come back sorted so the rendering
    is stable.
    """
    hosts: Dict[str, Dict[str, float]] = {}
    for name, entry in summary.get("counters", {}).items():
        if not name.startswith(prefix):
            continue
        event = name[len(prefix):]
        for label_string, value in entry.get("series", {}).items():
            labels = parse_label_string(label_string)
            host = labels.get("host")
            if host is None:
                continue
            events = hosts.setdefault(host, {})
            events[event] = events.get(event, 0.0) + float(value)
    return {
        host: dict(sorted(events.items()))
        for host, events in sorted(hosts.items())
    }


def merge_summaries(summaries: Iterable[Optional[dict]]) -> dict:
    """Fold summaries (in the given order) into one aggregate summary.

    ``None`` entries are skipped, so callers can feed per-point summary
    slots directly even when some points did not collect telemetry.
    Histogram bucket bounds must agree across summaries (they are part of
    the metric's contract); a mismatch raises ``ValueError``.
    """
    merged: dict = {
        "schema": SCHEMA,
        "counters": {},
        "histograms": {},
        "spans": {},
        "instants": {},
    }
    for summary in summaries:
        if summary is None:
            continue
        for name, data in summary.get("counters", {}).items():
            target = merged["counters"].setdefault(
                name, {"help": data.get("help", ""), "series": {}}
            )
            series = target["series"]
            for labels, value in data.get("series", {}).items():
                series[labels] = series.get(labels, 0.0) + float(value)
        for name, data in summary.get("histograms", {}).items():
            buckets = [float(b) for b in data.get("buckets", [])]
            target = merged["histograms"].setdefault(
                name,
                {"help": data.get("help", ""), "buckets": buckets, "series": {}},
            )
            if target["buckets"] != buckets:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ across "
                    f"summaries: {target['buckets']} vs {buckets}"
                )
            series = target["series"]
            for labels, cell in data.get("series", {}).items():
                counts = [int(c) for c in cell.get("counts", [])]
                slot = series.setdefault(
                    labels, {"counts": [0] * len(counts), "sum": 0.0}
                )
                if len(slot["counts"]) != len(counts):
                    raise ValueError(
                        f"histogram {name!r} series {labels!r} has "
                        f"{len(counts)} buckets, expected "
                        f"{len(slot['counts'])}"
                    )
                slot["counts"] = [
                    a + b for a, b in zip(slot["counts"], counts)
                ]
                slot["sum"] += float(cell.get("sum", 0.0))
        for category, by_name in summary.get("spans", {}).items():
            target = merged["spans"].setdefault(category, {})
            for name, entry in by_name.items():
                slot = target.setdefault(name, {"total": 0.0, "count": 0})
                slot["total"] += float(entry.get("total", 0.0))
                slot["count"] += int(entry.get("count", 0))
        for category, by_name in summary.get("instants", {}).items():
            target = merged["instants"].setdefault(category, {})
            for name, count in by_name.items():
                target[name] = target.get(name, 0) + int(count)
    return merged


def registry_from_summary(summary: dict) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from a (merged) summary.

    The registry carries the summary's counters and histograms with their
    label sets intact — exactly what the Prometheus exposition in
    :mod:`repro.observability.export` renders.  Span/instant aggregates
    have no registry analogue and are left to the summary dict.
    """
    registry = MetricsRegistry()
    for name, data in summary.get("counters", {}).items():
        counter = registry.counter(name, data.get("help", ""))
        for labels_text, value in sorted(data.get("series", {}).items()):
            counter.inc(float(value), **parse_label_string(labels_text))
    for name, data in summary.get("histograms", {}).items():
        histogram = registry.histogram(
            name, [float(b) for b in data.get("buckets", [])],
            data.get("help", ""),
        )
        for labels_text, cell in sorted(data.get("series", {}).items()):
            key_labels = parse_label_string(labels_text)
            # Bucket counts cannot be replayed through observe() (the
            # original values are gone) — install the series directly.
            from repro.observability.metrics import _label_key

            key = _label_key(key_labels) if key_labels else ()
            histogram._counts[key] = [int(c) for c in cell.get("counts", [])]
            histogram._sums[key] = float(cell.get("sum", 0.0))
    return registry


def summary_totals(summary: dict) -> Dict[str, float]:
    """``{counter name: total across label sets}`` for quick assertions."""
    return {
        name: sum(float(v) for v in data.get("series", {}).values())
        for name, data in summary.get("counters", {}).items()
    }
