"""Wall-clock profiler: deterministic phase attribution + stack sampling.

The tracer (:mod:`repro.observability.tracer`) answers "where does
*simulated* time go"; this module answers the complementary question that
ROADMAP item 1 blocks on — "where does *host wall-clock* time go" when a
profile or sweep runs.  Two instruments, both off by default:

* :class:`PhaseProfiler` — timed scopes with **deterministic phase
  attribution**: the instrumented subsystems charge wall seconds to a
  small set of named phases (kernel event dispatch, fabric congestion
  re-solves, routing/RouteCache lookups, telemetry recording itself).
  Attribution is deterministic because the *set of scopes entered* is a
  pure function of the workload — only the measured seconds vary run to
  run.  Per-event-type latency histograms ride along: every kernel
  callback's wall latency lands in a fixed-bucket histogram keyed by the
  callback's qualified name.
* :class:`StackSampler` — an optional sampling stack profiler: a daemon
  thread snapshots the profiled thread's Python stack every ``interval``
  seconds via :func:`sys._current_frames`, accumulating collapsed
  (flamegraph-ready) stack counts.  Sampling is wall-clock driven and
  therefore not deterministic; it never perturbs simulation state.

Overhead contract (DESIGN.md §6): a run without a profiler attached pays
one ``is not None`` test per instrumented operation; the kernel without
hooks is bit-identical to the unhooked kernel.  With the profiler
**enabled** the tax is two ``time.perf_counter`` calls and a dict update
per scope — gated under 5% by ``benchmarks/bench_kernel.py``.

Exports: :func:`profile_report` (the ``repro.profile/v1`` JSON document
behind ``python -m repro profile``), :func:`collapsed_stack_lines` /
:func:`parse_collapsed` (folded-stack round trip) and
:func:`profiler_chrome_trace` (wall-clock Chrome ``trace_event`` JSON).
"""

from __future__ import annotations

import pathlib
import sys
import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.observability.metrics import exponential_buckets

#: Phase names charged by the built-in instrumentation.
PHASE_DISPATCH = "kernel.dispatch"
PHASE_CONGESTION = "fabric.congestion_solve"
PHASE_ROUTING = "fabric.routing"
PHASE_TELEMETRY = "telemetry"
PHASE_RUN = "profile.run"

#: Profile-report document schema identifier.
REPORT_SCHEMA = "repro.profile/v1"

#: Default event-latency bucket bounds (seconds): 1 us .. 1 s in decades.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-6, 10.0, 7)


def callback_label(callback: object) -> str:
    """A stable, human-readable label for a kernel event callback.

    Bound methods and functions label as their ``__qualname__``
    (``ClusterSimulator._finish_job``); ``functools.partial`` unwraps to
    its target; anything else labels as its type name.  Labels are pure
    functions of the code object, so two runs of the same workload
    produce the same label set.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    func = getattr(callback, "func", None)
    if func is not None and func is not callback:
        return callback_label(func)
    return type(callback).__name__


class _Scope:
    """Context manager charging its ``with`` body to one phase."""

    __slots__ = ("_profiler", "_phase", "_start")

    def __init__(self, profiler: "PhaseProfiler", phase: str) -> None:
        self._profiler = profiler
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_Scope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add(
            self._phase, time.perf_counter() - self._start
        )


class _NullScope:
    """The scope handed out by a disabled profiler: enters and exits free."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase and per event type.

    Parameters
    ----------
    enabled:
        When False every record method is a no-op and :meth:`scope`
        returns a shared null context manager.
    detail:
        When True each scope and each dispatched event also appends one
        ``(name, start, end)`` record (seconds relative to the profiler's
        creation), capped at ``max_detail_records`` — the raw material
        for :func:`profiler_chrome_trace`.  Off by default: aggregate
        attribution needs no per-record allocation.
    latency_buckets:
        Strictly-increasing upper bounds (seconds) for the per-event-type
        latency histograms (default :data:`DEFAULT_LATENCY_BUCKETS`).
    """

    def __init__(
        self,
        enabled: bool = True,
        detail: bool = False,
        latency_buckets: Optional[List[float]] = None,
        max_detail_records: int = 200_000,
    ) -> None:
        bounds = list(latency_buckets or DEFAULT_LATENCY_BUCKETS)
        if any(b >= c for b, c in zip(bounds, bounds[1:])) or not bounds:
            raise ConfigurationError(
                "latency_buckets must be non-empty and strictly increasing"
            )
        self.enabled = enabled
        self.detail = detail
        self.max_detail_records = max_detail_records
        self.latency_buckets = bounds
        self.origin = time.perf_counter()
        #: Bumped by :meth:`clear` so holders of :meth:`event_slot`
        #: accumulators know to re-fetch.
        self.generation = 0
        #: name -> [seconds, calls].  The dispatch phase is *derived* from
        #: ``_events`` at read time (see :meth:`_dispatch_bucket`), so the
        #: per-event hot path touches one list, not two.
        self._phases: Dict[str, List[float]] = {}
        #: event-type label -> [seconds, calls, bucket counts..., overflow]
        #: — totals and the latency histogram share one list so one event
        #: dispatch touches a single cache line.
        self._events: Dict[str, List[float]] = {}
        #: (name, start, end) wall seconds relative to ``origin``
        self.records: List[Tuple[str, float, float]] = []
        self.records_dropped = 0

    # --- recording --------------------------------------------------------------

    def scope(self, phase: str):
        """Context manager charging the ``with`` body to ``phase``."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, phase)

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of wall time (and ``calls`` entries) to a phase."""
        if not self.enabled:
            return
        bucket = self._phases.get(phase)
        if bucket is None:
            bucket = self._phases[phase] = [0.0, 0]
        bucket[0] += seconds
        bucket[1] += calls
        if self.detail:
            self._record(phase, seconds)

    def observe_event(self, label: str, seconds: float) -> None:
        """Charge one kernel event dispatch: phase total + per-type latency.

        This runs once per kernel event when profiling is on, so the body
        updates a single merged accumulator list and bisects the latency
        buckets — bench_kernel.py gates the resulting per-event tax.  The
        dispatch-phase total is derived from the event accumulators at
        read time rather than updated here.
        """
        if not self.enabled:
            return
        slot = self._events.get(label)
        if slot is None:
            slot = self._events[label] = (
                [0.0, 0] + [0] * (len(self.latency_buckets) + 1)
            )
        slot[0] += seconds
        slot[1] += 1
        slot[2 + bisect_left(self.latency_buckets, seconds)] += 1
        if self.detail:
            self._record(PHASE_DISPATCH, seconds)

    def event_slot(self, label: str) -> List[float]:
        """The live accumulator list for one event type:
        ``[seconds, calls, bucket counts..., overflow]``.

        :class:`~repro.observability.probes.ProfilingKernelProbe` caches
        these per callback code object so the per-event hot path is three
        list updates and a bisect instead of label + dict lookups.  The
        references die on :meth:`clear` — re-fetch when
        :attr:`generation` changes.
        """
        slot = self._events.get(label)
        if slot is None:
            slot = self._events[label] = (
                [0.0, 0] + [0] * (len(self.latency_buckets) + 1)
            )
        return slot

    def _dispatch_bucket(self) -> List[float]:
        """The dispatch phase ``[seconds, calls]``: any directly-charged
        time (via :meth:`add`/:meth:`scope`) plus every observed event."""
        direct = self._phases.get(PHASE_DISPATCH)
        seconds = direct[0] if direct is not None else 0.0
        calls = direct[1] if direct is not None else 0
        for slot in self._events.values():
            seconds += slot[0]
            calls += slot[1]
        return [seconds, calls]

    def _record(self, name: str, seconds: float) -> None:
        if len(self.records) >= self.max_detail_records:
            self.records_dropped += 1
            return
        end = time.perf_counter() - self.origin
        self.records.append((name, end - seconds, end))

    # --- queries ----------------------------------------------------------------

    def _merged_phases(self) -> Dict[str, List[float]]:
        """``_phases`` with the derived dispatch bucket folded in."""
        merged = {
            name: v for name, v in self._phases.items()
            if name != PHASE_DISPATCH
        }
        dispatch = self._dispatch_bucket()
        if dispatch[1] or PHASE_DISPATCH in self._phases:
            merged[PHASE_DISPATCH] = dispatch
        return merged

    @property
    def phases(self) -> Dict[str, Tuple[float, int]]:
        """``{phase: (seconds, calls)}`` snapshot of the accumulators."""
        return {
            name: (v[0], int(v[1])) for name, v in self._merged_phases().items()
        }

    def seconds(self, phase: str) -> float:
        """Total wall seconds charged to one phase (0.0 if never entered)."""
        if phase == PHASE_DISPATCH:
            return self._dispatch_bucket()[0]
        bucket = self._phases.get(phase)
        return bucket[0] if bucket is not None else 0.0

    def calls(self, phase: str) -> int:
        """How many times one phase was entered (0 if never)."""
        if phase == PHASE_DISPATCH:
            return int(self._dispatch_bucket()[1])
        bucket = self._phases.get(phase)
        return int(bucket[1]) if bucket is not None else 0

    def phase_table(self) -> List[Tuple[str, float, int, float]]:
        """``(phase, seconds, calls, mean)`` rows, hottest first.

        Ties (including the all-zero phases of a run too fast to measure)
        break by phase name, so the table order is deterministic.
        """
        rows = [
            (name, v[0], int(v[1]), v[0] / v[1] if v[1] else 0.0)
            for name, v in self._merged_phases().items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def event_table(self) -> List[Tuple[str, float, int, float]]:
        """``(event type, seconds, calls, mean)`` rows, hottest first."""
        rows = [
            (name, v[0], int(v[1]), v[0] / v[1] if v[1] else 0.0)
            for name, v in self._events.items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def event_latency(self, label: str) -> List[int]:
        """Per-bucket latency counts for one event type (overflow last)."""
        slot = self._events.get(label)
        if slot is None:
            return [0] * (len(self.latency_buckets) + 1)
        return [int(count) for count in slot[2:]]

    def clear(self) -> None:
        """Drop every accumulated phase, event type and detail record."""
        self._phases.clear()
        self._events.clear()
        self.records.clear()
        self.records_dropped = 0
        self.origin = time.perf_counter()
        self.generation += 1


#: A permanently-disabled profiler instrumented code can hold unconditionally.
NULL_PROFILER = PhaseProfiler(enabled=False)


class StackSampler:
    """Samples one thread's Python stack on a fixed wall-clock interval.

    Start/stop around the workload (or use as a context manager); the
    sampler thread is a daemon and never touches simulation state, so the
    profiled run's outputs stay bit-identical.  ``counts`` maps
    root-first frame tuples to the number of samples that observed them.
    """

    def __init__(self, interval: float = 0.005, max_depth: int = 128) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sampler interval must be positive: {interval}"
            )
        self.interval = interval
        self.max_depth = max_depth
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target: Optional[int] = None

    def start(self) -> "StackSampler":
        """Begin sampling the *calling* thread from a daemon thread."""
        if self._thread is not None:
            raise ConfigurationError("stack sampler already started")
        self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{pathlib.Path(code.co_filename).name}:{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            key = tuple(reversed(stack))  # root-first, flamegraph order
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    def top_frames(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` frames observed in the most samples (inclusive counts).

        A frame counts once per sample it appears in, however deep — the
        flamegraph "total" column, not the leaf-only "self" column.
        """
        inclusive: Dict[str, int] = {}
        for stack, count in self.counts.items():
            for frame in set(stack):
                inclusive[frame] = inclusive.get(frame, 0) + count
        ranked = sorted(inclusive.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:n]


# --- exports --------------------------------------------------------------------


def collapsed_stack_lines(
    source: Union[StackSampler, Dict[Tuple[str, ...], int]]
) -> List[str]:
    """Folded-stack lines (``frame;frame;frame count``) for a flamegraph.

    Accepts a :class:`StackSampler` or its ``counts`` dict.  Lines sort
    by stack so the export is deterministic for a given sample set; feed
    them to any ``flamegraph.pl``-compatible renderer.
    """
    counts = source.counts if isinstance(source, StackSampler) else source
    return [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(counts.items())
    ]


def parse_collapsed(
    lines: Iterable[str],
) -> Dict[Tuple[str, ...], int]:
    """Rebuild folded-stack counts from :func:`collapsed_stack_lines` output.

    Raises ``ValueError`` naming the offending line on a malformed entry
    (no count, or a non-integer count).
    """
    counts: Dict[Tuple[str, ...], int] = {}
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise ValueError(
                f"collapsed-stack line {number} has no sample count: {line!r}"
            )
        try:
            count = int(count_text)
        except ValueError:
            raise ValueError(
                f"collapsed-stack line {number} has a non-integer count: "
                f"{count_text!r}"
            ) from None
        key = tuple(stack_text.split(";"))
        counts[key] = counts.get(key, 0) + count
    return counts


def write_collapsed(
    source: Union[StackSampler, Dict[Tuple[str, ...], int]],
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Write the folded-stack export; returns the path written."""
    output = pathlib.Path(path)
    lines = collapsed_stack_lines(source)
    output.write_text("\n".join(lines) + ("\n" if lines else ""))
    return output


def profiler_chrome_trace(profiler: PhaseProfiler) -> dict:
    """The profiler's detail records as Chrome ``trace_event`` JSON.

    Needs a profiler built with ``detail=True`` — each recorded scope
    and dispatched event becomes a complete (``"ph": "X"``) event on a
    per-phase track, timestamped in wall-clock microseconds since the
    profiler's creation.
    """
    tracks: Dict[str, int] = {}
    events: List[dict] = []
    for name, start, end in profiler.records:
        phase = name.split("/", 1)[0]
        tid = tracks.setdefault(phase, len(tracks) + 1)
        events.append(
            {
                "name": name,
                "cat": phase,
                "ph": "X",
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "pid": 0,
                "tid": tid,
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": phase},
        }
        for phase, tid in tracks.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_profiler_chrome_trace(
    profiler: PhaseProfiler, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the wall-clock Chrome trace; returns the path written."""
    import json

    output = pathlib.Path(path)
    output.write_text(json.dumps(profiler_chrome_trace(profiler), indent=1))
    return output


def profile_report(
    profiler: PhaseProfiler,
    sampler: Optional[StackSampler] = None,
    name: str = "",
    top: int = 20,
) -> dict:
    """The ``repro.profile/v1`` JSON document for one profiled run.

    Phases and event types are ranked hottest-first with per-phase
    seconds, call counts and means; when a :class:`StackSampler` ran, its
    inclusive top frames and total sample count ride along.
    """
    wall = sum(seconds for _, (seconds, _) in profiler.phases.items())
    document = {
        "schema": REPORT_SCHEMA,
        "name": name,
        "wall_seconds_attributed": wall,
        "phases": [
            {
                "phase": phase,
                "seconds": seconds,
                "calls": calls,
                "mean_seconds": mean,
            }
            for phase, seconds, calls, mean in profiler.phase_table()
        ],
        "event_types": [
            {
                "name": label,
                "seconds": seconds,
                "calls": calls,
                "mean_seconds": mean,
            }
            for label, seconds, calls, mean in profiler.event_table()[:top]
        ],
        "event_latency_buckets": list(profiler.latency_buckets),
        "event_latency": {
            label: profiler.event_latency(label)
            for label, _, _, _ in profiler.event_table()[:top]
        },
    }
    if sampler is not None:
        document["stack_samples"] = sampler.samples
        document["sample_interval_seconds"] = sampler.interval
        document["top_frames"] = [
            {"frame": frame, "samples": count}
            for frame, count in sampler.top_frames(top)
        ]
    return document
