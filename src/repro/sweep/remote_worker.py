"""A sweep worker host: dial the coordinator, run points, stay honest.

``repro sweep-worker --connect HOST:PORT`` runs :func:`run_worker`: it
dials the :class:`~repro.sweep.coordinator.TcpCoordinator`, learns the
sweep from the welcome frame (target, seed, grid axes — the grid is
rebuilt locally so the host computes its own params from bare point
indices), and drives ``slots`` supervised child processes exactly like
the local executor does.  The host's main loop never runs a point
itself, so it stays responsive for heartbeats, cancels and work-stealing
revokes even while every child is stuck in a pathological point.

Crash-consistency mirrors the coordinator: with ``--journal`` the host
appends every completed point to its own ``repro.sweep.journal/v1`` file
*before* the result frame goes on the wire.  If the coordinator (or the
network) dies, the work the host finished is not lost —
``repro sweep --resume coordinator.jsonl --resume host.jsonl`` merges
the journals and completes the sweep without recomputing those points.

Chaos faults drawn host-side (all deterministic per
``(seed, sweep, index, attempt)``, identical at any fleet shape):

* ``host_crash`` — the whole host ``os._exit``\\ s before dispatching the
  point (the coordinator sees EOF and requeues);
* ``drop`` — the result is journalled locally but its frame never sent
  (the coordinator's per-point timeout recovers it);
* ``delay`` — the result frame is sent late by ``delay_seconds``.

Plain ``crash``/``hang`` draws still happen inside the child processes,
exactly as under the local backend.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Dict, List, Optional, Tuple

from repro.sweep.backends import FleetError
from repro.sweep.frames import (
    PROTOCOL_VERSION,
    FrameError,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.sweep.supervisor import (
    CHAOS_HOST_EXIT_CODE,
    ChaosSpec,
    _supervised_worker,
)

__all__ = ["run_worker"]


@dataclass
class _Child:
    """One supervised child process on this host."""

    process: object
    conn: object
    ready: bool = False
    #: (index, attempt) of the running point, or None when idle.
    busy: Optional[Tuple[int, int]] = None


class _WorkerHost:
    def __init__(
        self,
        sock: socket.socket,
        welcome: Dict[str, object],
        slots: int,
        name: str,
        journal_path: Optional[str],
        trace_dir: Optional[str],
    ) -> None:
        from repro.sweep.engine import SweepSpec, _pool_context

        self.sock = sock
        self.name = name
        self.slots = slots
        self.trace_dir = trace_dir
        self.spec = SweepSpec(
            name=str(welcome["sweep"]),
            target=str(welcome["target"]),
            # Ordered [name, values] pairs: axis order defines the grid's
            # point enumeration, so it must survive the wire verbatim.
            grid={str(name): values for name, values in welcome["axes"]},
            seed=int(welcome["seed"]),
        )
        raw_chaos = welcome.get("chaos")
        self.chaos = (
            ChaosSpec(**raw_chaos) if isinstance(raw_chaos, dict) else None
        )
        self.heartbeat_interval = float(
            welcome.get("heartbeat_interval", 0.5)
        )
        self.collect_telemetry = bool(welcome.get("collect_telemetry", False))
        self._context = _pool_context()
        self._common = (
            self.spec.target, self.spec.name, self.spec.seed, trace_dir,
            self.chaos, self.collect_telemetry,
        )
        self.journal = None
        if journal_path is not None:
            from repro.sweep.journal import RunJournal

            self.journal = RunJournal(journal_path, self.spec, mode="fresh")
        self.children: List[_Child] = []
        #: FIFO of (index, attempt) assigned but not yet started.
        self.queue: List[Tuple[int, int]] = []
        self._next_heartbeat = time.monotonic() + self.heartbeat_interval

    # -- children ---------------------------------------------------------

    def _spawn_child(self) -> _Child:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_supervised_worker,
            args=(child_conn, self._common),
            daemon=True,
        )
        process.start()
        child_conn.close()
        child = _Child(process=process, conn=parent_conn)
        self.children.append(child)
        return child

    def _discard_child(self, child: _Child) -> None:
        try:
            child.conn.close()
        except OSError:
            pass
        if child.process.is_alive():
            child.process.kill()
        child.process.join(timeout=5.0)
        if child in self.children:
            self.children.remove(child)

    # -- scheduling -------------------------------------------------------

    def _dispatch(self) -> None:
        for child in self.children:
            if not self.queue:
                return
            if not child.ready or child.busy is not None:
                continue
            index, attempt = self.queue.pop(0)
            # The started frame goes first: a host_crash below must count
            # as a *started* point on the coordinator so the requeue
            # consumes a retry and the next attempt rolls fresh chaos
            # dice — otherwise the same deterministic draw would crash
            # every host the point is ever assigned to.
            send_frame(self.sock, {
                "type": "started", "index": index, "attempt": attempt,
            })
            if self.chaos is not None:
                action = self.chaos.draw_host(
                    self.spec.seed, self.spec.name, index, attempt
                )
                if action == "crash":
                    os._exit(CHAOS_HOST_EXIT_CODE)
            params = self.spec.grid.point(index).params
            try:
                child.conn.send((index, params, attempt))
            except (BrokenPipeError, OSError):
                self.queue.insert(0, (index, attempt))
                self._replace(child)
                continue
            child.busy = (index, attempt)

    def _replace(self, child: _Child) -> None:
        self._discard_child(child)
        if len(self.children) < self.slots:
            self._spawn_child()

    def _send_result(self, index: int, attempt: int, result) -> None:
        from repro.sweep.journal import point_record

        record = point_record(result, attempt)
        if self.journal is not None:
            # Journal before the net-chaos draw: the host durably did the
            # work even if the frame is about to be "lost in transit".
            self.journal.record_point(result, attempt)
        if self.chaos is not None:
            action = self.chaos.draw_net(
                self.spec.seed, self.spec.name, index, attempt
            )
            if action == "drop":
                return
            if action == "delay":
                time.sleep(self.chaos.delay_seconds)
        send_frame(self.sock, {
            "type": "result", "index": index, "attempt": attempt,
            "point": record,
        })

    # -- event handling ---------------------------------------------------

    def _handle_child(self, child: _Child) -> None:
        try:
            message = child.conn.recv()
        except (EOFError, OSError):
            child.process.join(timeout=5.0)
            code = child.process.exitcode
            busy = child.busy
            self._replace(child)
            if busy is not None:
                index, attempt = busy
                send_frame(self.sock, {
                    "type": "crashed", "index": index, "attempt": attempt,
                    "error": "WorkerCrash: worker process died "
                             f"(exit code {code})",
                })
            return
        kind, index, attempt, payload = message
        if kind == "ready":
            child.ready = True
            return
        if child.busy != (index, attempt):
            return  # a cancelled point's leftover message
        child.busy = None
        if kind == "ok":
            self._send_result(index, attempt, payload)
        else:
            send_frame(self.sock, {
                "type": "error", "index": index, "attempt": attempt,
                "error": str(payload),
            })

    def _handle_frame(self, frame: Dict[str, object]) -> bool:
        """Apply one coordinator frame; False means shutdown."""
        kind = frame.get("type")
        if kind == "assign":
            self.queue.append((int(frame["index"]), int(frame["attempt"])))
            return True
        if kind == "cancel":
            index = int(frame["index"])
            self.queue = [(i, a) for i, a in self.queue if i != index]
            for child in list(self.children):
                if child.busy is not None and child.busy[0] == index:
                    # The point is past recall: kill its child.
                    self._replace(child)
            return True
        if kind == "revoke":
            count = int(frame.get("count", 0))
            donated: List[int] = []
            # Donate from the queue's tail: the head is next to start.
            while self.queue and len(donated) < count:
                index, _attempt = self.queue.pop()
                donated.append(index)
            send_frame(self.sock, {"type": "revoked", "indices": donated})
            return True
        if kind == "shutdown":
            return False
        return True  # unknown frame: forward compatibility

    # -- the loop ---------------------------------------------------------

    def serve(self) -> int:
        for _ in range(self.slots):
            self._spawn_child()
        exit_code = 0
        try:
            while True:
                now = time.monotonic()
                if now >= self._next_heartbeat:
                    send_frame(self.sock, {"type": "heartbeat"})
                    self._next_heartbeat = now + self.heartbeat_interval
                self._dispatch()
                by_conn = {
                    child.conn: child
                    for child in self.children
                    if child.busy is not None or not child.ready
                }
                watched: List[object] = [self.sock]
                watched.extend(by_conn)
                timeout = max(0.0, self._next_heartbeat - now)
                ready = connection.wait(watched, timeout=timeout)
                for source in ready:
                    if source is self.sock:
                        try:
                            frame = recv_frame(self.sock)
                        except FrameError:
                            return 1
                        if frame is None:
                            return 1  # coordinator vanished
                        if not self._handle_frame(frame):
                            return 0
                        continue
                    child = by_conn.get(source)
                    if child is not None and child in self.children:
                        self._handle_child(child)
        except (BrokenPipeError, ConnectionError, OSError):
            exit_code = 1
        finally:
            self._teardown()
        return exit_code

    def _teardown(self) -> None:
        for child in list(self.children):
            try:
                child.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for child in list(self.children):
            child.process.join(timeout=1.0)
            self._discard_child(child)
        if self.journal is not None:
            self.journal.close()
        try:
            self.sock.close()
        except OSError:
            pass


def _connect(address: str, timeout: float) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` (it may boot late)."""
    host, port = parse_address(address)
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect((host, port))
        except OSError as error:
            sock.close()
            last_error = error
            time.sleep(0.05)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock
    raise FleetError(
        f"could not reach coordinator at {host}:{port} within {timeout:g}s"
        + (f": {last_error}" if last_error is not None else "")
    )


def run_worker(
    connect: str,
    *,
    slots: int = 1,
    name: Optional[str] = None,
    journal: Optional[str] = None,
    trace_dir: Optional[str] = None,
    connect_timeout: float = 30.0,
    auth_token: Optional[str] = None,
) -> int:
    """Serve one worker host until the coordinator shuts it down.

    ``auth_token`` is included in the hello frame when set; a fleet that
    demands one rejects a missing or mismatched token with an explicit
    ``rejected`` frame, which surfaces here as a clean
    :class:`~repro.sweep.backends.FleetError` (never a hang).

    Returns a process exit code: ``0`` after an orderly shutdown frame,
    ``1`` when the coordinator connection was lost mid-sweep.  Raises
    :class:`~repro.sweep.backends.FleetError` when the coordinator can't
    be reached at all, and ``ValueError`` on a handshake the worker
    cannot honour (protocol mismatch).
    """
    if slots < 1:
        raise ValueError(f"worker needs slots >= 1: {slots}")
    host_name = name or f"{socket.gethostname()}:{os.getpid()}"
    sock = _connect(connect, connect_timeout)
    try:
        hello: Dict[str, object] = {
            "type": "hello", "protocol": PROTOCOL_VERSION,
            "name": host_name, "slots": slots,
        }
        if auth_token is not None:
            hello["token"] = auth_token
        send_frame(sock, hello)
        welcome = recv_frame(sock)
    except (FrameError, OSError) as error:
        sock.close()
        raise FleetError(f"coordinator handshake failed: {error}") from None
    if welcome is not None and welcome.get("type") == "rejected":
        sock.close()
        raise FleetError(
            "coordinator rejected this worker: "
            f"{welcome.get('reason') or 'no reason given'}"
        )
    if welcome is None or welcome.get("type") != "welcome":
        sock.close()
        raise FleetError(
            "coordinator handshake failed: expected a welcome frame, got "
            f"{None if welcome is None else welcome.get('type')!r}"
        )
    if welcome.get("protocol") != PROTOCOL_VERSION:
        sock.close()
        raise FleetError(
            f"protocol mismatch: coordinator speaks "
            f"{welcome.get('protocol')!r}, this worker {PROTOCOL_VERSION}"
        )
    worker = _WorkerHost(
        sock, welcome, slots=slots, name=host_name,
        journal_path=journal, trace_dir=trace_dir,
    )
    return worker.serve()
