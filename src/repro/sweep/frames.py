"""Length-prefixed JSON socket frames for the distributed sweep fleet.

The coordinator (:mod:`repro.sweep.coordinator`) and its worker hosts
(:mod:`repro.sweep.remote_worker`) speak a deliberately boring wire
protocol: every message is one UTF-8 JSON object preceded by a 4-byte
big-endian length.  JSON keeps frames inspectable with ``tcpdump`` and
identical to what the run journal stores; the length prefix makes torn
reads detectable — a peer that dies mid-frame leaves a short read, which
:func:`recv_frame` surfaces as :class:`FrameError` so the other side can
treat the connection as dead instead of parsing garbage.

Blocking semantics: both sides run single-threaded event loops that
``wait()`` on sockets for readability and then pull exactly one frame.
Raw ``recv`` loops (no userspace buffering) keep the readiness semantics
honest: a buffered file object could hold a complete frame while the
socket itself shows no new data, deadlocking the select loop.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from repro.core.errors import ReproError

#: Wire-protocol version, exchanged in the hello/welcome handshake.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload — a fat-fingered length prefix (or
#: a non-fleet peer connecting by accident) must not trigger a gigabyte
#: allocation.  Point results with full telemetry summaries are ~10 KiB.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ReproError):
    """A torn, oversized or non-JSON frame: the connection is unusable."""


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at offset 0.

    EOF *inside* the span (a peer dying mid-frame) raises
    :class:`FrameError` — the distinction between "peer closed between
    frames" and "peer died mid-frame" matters for diagnostics, though
    both end the connection.
    """
    chunks = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise FrameError(
                f"connection closed mid-frame ({received}/{count} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: Dict[str, object]) -> int:
    """Serialise and send one frame; returns the bytes put on the wire."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    data = _HEADER.pack(len(payload)) + payload
    sock.sendall(data)
    return len(data)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Receive one frame; ``None`` on clean EOF between frames.

    Raises :class:`FrameError` for torn frames, oversized lengths and
    payloads that are not a JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"undecodable frame payload: {error}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload is {type(message).__name__}, expected an object"
        )
    return message


def parse_address(text: str, default_host: str = "127.0.0.1") -> tuple:
    """Parse ``host:port`` (or bare ``:port`` / ``port``) into a 2-tuple."""
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"bad fleet address {text!r}; expected host:port"
        ) from None
    if not 0 <= port <= 65535:
        raise ReproError(f"bad fleet port {port}; expected 0..65535")
    return host, port
