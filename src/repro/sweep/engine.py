"""The parallel scenario-sweep engine.

:func:`run_sweep` fans the points of a :class:`SweepSpec` over a
``multiprocessing`` pool and collects one :class:`PointResult` per point.

Determinism contract
--------------------
The aggregated result is **bit-identical at any worker count**.  Two rules
make that hold:

* Each point's randomness comes from
  ``RandomSource(seed, name=f"sweep/{spec.name}").spawn(point.index)`` —
  a function of the sweep seed and the point's stable grid index only,
  never of which worker ran it or in what order.
* Results are reassembled in grid order (``pool.map`` preserves input
  order), and wall-clock fields are excluded from
  :meth:`SweepResult.fingerprint`.

Workers resolve the target by *name* inside the child process, so a spec
is a small picklable value even under the ``spawn`` start method.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.observability import Telemetry, write_jsonl
from repro.sweep.grid import ParameterGrid, ScenarioPoint
from repro.sweep.targets import resolve_target


@dataclass
class SweepSpec:
    """A declarative sweep: a named target over a parameter grid.

    ``grid`` accepts either a built :class:`ParameterGrid` or the plain
    axis mapping it would be built from.  ``seed`` is the root of every
    point's RNG; two runs of the same spec are bit-identical.
    """

    name: str
    target: str
    grid: Union[ParameterGrid, Mapping[str, Sequence[object]]]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep needs a non-empty name")
        if not isinstance(self.grid, ParameterGrid):
            self.grid = ParameterGrid(self.grid)

    def points(self) -> List[ScenarioPoint]:
        return self.grid.points()

    def rng_for(self, point_index: int) -> RandomSource:
        """The point's RNG: a pure function of (seed, sweep name, index)."""
        return RandomSource(self.seed, name=f"sweep/{self.name}").spawn(point_index)


@dataclass
class PointResult:
    """Outcome of one scenario point."""

    index: int
    params: Dict[str, object]
    metrics: Dict[str, float]
    counters: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def record(self) -> Dict[str, object]:
        """Flat ``params + metrics`` dict — one table row per point."""
        row: Dict[str, object] = dict(self.params)
        row.update(self.metrics)
        return row


@dataclass
class SweepResult:
    """All point results of one sweep run, in grid order."""

    name: str
    target: str
    seed: int
    workers: int
    points: List[PointResult]
    wall_seconds: float = 0.0

    def records(self) -> List[Dict[str, object]]:
        """One flat row per point (params + metrics), in grid order."""
        return [point.record() for point in self.points]

    def fingerprint(self) -> str:
        """A stable digest of every deterministic field.

        Covers params, metrics and counters of every point — but no
        wall-clock — so equal fingerprints mean bit-identical scenario
        outcomes regardless of worker count.
        """
        import hashlib
        import json

        payload = json.dumps(
            [
                {
                    "index": p.index,
                    "params": {k: repr(v) for k, v in p.params.items()},
                    "metrics": p.metrics,
                    "counters": p.counters,
                }
                for p in self.points
            ],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def _run_point(args) -> PointResult:
    """Worker body: run one scenario point (module-level for pickling)."""
    target_name, sweep_name, seed, index, params, trace_dir = args
    target = resolve_target(target_name)
    rng = RandomSource(seed, name=f"sweep/{sweep_name}").spawn(index)
    telemetry = Telemetry()
    started = time.perf_counter()
    metrics = target(dict(params), telemetry, rng)
    wall = time.perf_counter() - started
    if not isinstance(metrics, dict):
        raise TypeError(
            f"sweep target {target_name!r} returned {type(metrics).__name__}, "
            "expected a metrics dict"
        )
    counters = {
        metric.name: float(metric.total())
        for metric in telemetry.metrics
        if metric.kind == "counter"
    }
    if trace_dir is not None:
        import pathlib

        directory = pathlib.Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_jsonl(telemetry.tracer, directory / f"point-{index:04d}.jsonl")
    return PointResult(
        index=index,
        params=dict(params),
        metrics={k: float(v) for k, v in metrics.items()},
        counters=counters,
        wall_seconds=wall,
    )


def _pool_context():
    """Prefer ``fork`` (fast, shares the imported tree); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    trace_dir: Optional[str] = None,
    progress=None,
) -> SweepResult:
    """Run every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` runs inline (no pool, easiest to debug); the
        aggregated result is bit-identical at any value.
    trace_dir:
        When given, each point writes its telemetry trace as
        ``point-NNNN.jsonl`` under this directory.
    progress:
        Optional callable ``progress(point_result)`` invoked as results
        arrive (in grid order).

    The target is resolved once up front so an unknown name fails fast,
    then again by name inside each worker.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    resolve_target(spec.target)
    jobs = [
        (spec.target, spec.name, spec.seed, point.index, point.params, trace_dir)
        for point in spec.points()
    ]
    started = time.perf_counter()
    if workers == 1:
        results = []
        for job in jobs:
            result = _run_point(job)
            if progress is not None:
                progress(result)
            results.append(result)
    else:
        context = _pool_context()
        chunksize = max(1, len(jobs) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            results = []
            for result in pool.imap(_run_point, jobs, chunksize=chunksize):
                if progress is not None:
                    progress(result)
                results.append(result)
    wall = time.perf_counter() - started
    return SweepResult(
        name=spec.name,
        target=spec.target,
        seed=spec.seed,
        workers=workers,
        points=results,
        wall_seconds=wall,
    )
