"""The parallel scenario-sweep engine.

:func:`run_sweep` fans the points of a :class:`SweepSpec` over a
``multiprocessing`` pool and collects one :class:`PointResult` per point.

Determinism contract
--------------------
The aggregated result is **bit-identical at any worker count**.  Two rules
make that hold:

* Each point's randomness comes from
  ``RandomSource(seed, name=f"sweep/{spec.name}").spawn(point.index)`` —
  a function of the sweep seed and the point's stable grid index only,
  never of which worker ran it or in what order.
* Results are reassembled in grid order (``pool.map`` preserves input
  order), and wall-clock fields are excluded from
  :meth:`SweepResult.fingerprint`.

Workers resolve the target by *name* inside the child process, so a spec
is a small picklable value even under the ``spawn`` start method.

Fault tolerance
---------------
Passing any of ``timeout``/``retries``/``chaos``/``journal``/``resume``
(or ``supervised=True``) routes execution through
:mod:`repro.sweep.supervisor`: worker crashes and hangs are detected and
the lost points requeued, every completed point is journalled to an
append-only crash-consistent JSONL file, and an interrupted sweep resumes
with ``run_sweep(spec, resume=path)`` — producing a fingerprint
bit-identical to an uninterrupted run.  By default a sweep with failing
points **returns** a partial :class:`SweepResult` carrying an error
ledger (``result.failures``); ``strict=True`` opts back into fail-fast
raising.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.observability import Telemetry, write_jsonl
from repro.observability.summary import merge_summaries, summarize_telemetry
from repro.sweep.backends import FleetConfig, create_executor
from repro.sweep.grid import ParameterGrid, ScenarioPoint
from repro.sweep.supervisor import (
    ChaosSpec,
    PointFailure,
    Supervisor,
    SupervisorConfig,
    SweepInterrupted,
    parse_chaos,
)
from repro.sweep.targets import resolve_target


@dataclass
class SweepSpec:
    """A declarative sweep: a named target over a parameter grid.

    ``grid`` accepts either a built :class:`ParameterGrid` or the plain
    axis mapping it would be built from.  ``seed`` is the root of every
    point's RNG; two runs of the same spec are bit-identical.
    """

    name: str
    target: str
    grid: Union[ParameterGrid, Mapping[str, Sequence[object]]]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep needs a non-empty name")
        if not isinstance(self.grid, ParameterGrid):
            self.grid = ParameterGrid(self.grid)

    def points(self) -> List[ScenarioPoint]:
        return self.grid.points()

    def rng_for(self, point_index: int) -> RandomSource:
        """The point's RNG: a pure function of (seed, sweep name, index)."""
        return RandomSource(self.seed, name=f"sweep/{self.name}").spawn(point_index)


@dataclass
class PointResult:
    """Outcome of one scenario point.

    ``telemetry`` is the point's full telemetry summary
    (:func:`repro.observability.summary.summarize_telemetry`) when the
    sweep ran with ``collect_telemetry=True``; ``None`` otherwise.  It
    never enters :meth:`SweepResult.fingerprint` — the summary's counter
    totals duplicate ``counters``, which already does.
    """

    index: int
    params: Dict[str, object]
    metrics: Dict[str, float]
    counters: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    telemetry: Optional[Dict[str, object]] = None

    def record(self) -> Dict[str, object]:
        """Flat ``params + metrics`` dict — one table row per point."""
        row: Dict[str, object] = dict(self.params)
        row.update(self.metrics)
        return row


@dataclass
class SweepResult:
    """All point results of one sweep run, in grid order.

    ``failures`` is the error ledger: points that exhausted their retry
    budget (empty for a clean run — ``result.ok``).  ``harness`` holds
    the supervisor's retry/timeout/requeue counters.  Neither enters
    :meth:`fingerprint`, which hashes scenario outcomes only.
    """

    name: str
    target: str
    seed: int
    workers: int
    points: List[PointResult]
    wall_seconds: float = 0.0
    failures: List[PointFailure] = field(default_factory=list)
    harness: Dict[str, float] = field(default_factory=dict)
    #: Merged telemetry summary (point-index fold order — bit-identical
    #: at any worker count) when the sweep collected telemetry.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """True when every point completed (empty error ledger)."""
        return not self.failures

    def records(self) -> List[Dict[str, object]]:
        """One flat row per point (params + metrics), in grid order."""
        return [point.record() for point in self.points]

    def fingerprint(self) -> str:
        """A stable digest of every deterministic field.

        Covers params, metrics and counters of every point — but no
        wall-clock — so equal fingerprints mean bit-identical scenario
        outcomes regardless of worker count.
        """
        import hashlib
        import json

        payload = json.dumps(
            [
                {
                    "index": p.index,
                    "params": {k: repr(v) for k, v in p.params.items()},
                    "metrics": p.metrics,
                    "counters": p.counters,
                }
                for p in self.points
            ],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def spec_from_request(request: Mapping[str, object]) -> SweepSpec:
    """The executable :class:`SweepSpec` for a canonical serve request.

    This is the in-process submission path used by ``python -m repro
    serve``: the request is first normalised through
    :func:`repro.validate.fingerprint.canonical_request` (idempotent for
    already-canonical documents) and the spec is built **from the
    canonical form** — sorted axis names included — so the cache key and
    the executed grid can never disagree.
    """
    from repro.validate.fingerprint import canonical_request

    canonical = canonical_request(request)
    if canonical["kind"] != "sweep":
        raise ConfigurationError(
            f"expected a sweep request, got kind={canonical['kind']!r}"
        )
    return SweepSpec(
        name=str(canonical["name"]),
        target=str(canonical["target"]),
        grid=canonical["axes"],
        seed=int(canonical["seed"]),
    )


def _run_point(args) -> PointResult:
    """Worker body: run one scenario point (module-level for pickling).

    ``args`` is ``(target, sweep, seed, index, params, trace_dir)`` with
    an optional trailing ``collect_telemetry`` flag — optional so callers
    built against the six-element form keep working.
    """
    target_name, sweep_name, seed, index, params, trace_dir, *rest = args
    collect_telemetry = bool(rest[0]) if rest else False
    target = resolve_target(target_name)
    rng = RandomSource(seed, name=f"sweep/{sweep_name}").spawn(index)
    telemetry = Telemetry()
    started = time.perf_counter()
    metrics = target(dict(params), telemetry, rng)
    wall = time.perf_counter() - started
    if not isinstance(metrics, dict):
        raise TypeError(
            f"sweep target {target_name!r} returned {type(metrics).__name__}, "
            "expected a metrics dict"
        )
    counters = {
        metric.name: float(metric.total())
        for metric in telemetry.metrics
        if metric.kind == "counter"
    }
    if trace_dir is not None:
        import pathlib

        directory = pathlib.Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_jsonl(telemetry.tracer, directory / f"point-{index:04d}.jsonl")
    return PointResult(
        index=index,
        params=dict(params),
        metrics={k: float(v) for k, v in metrics.items()},
        counters=counters,
        wall_seconds=wall,
        telemetry=summarize_telemetry(telemetry) if collect_telemetry else None,
    )


def _run_point_guarded(args):
    """Pool worker body for non-strict runs: never raises, tags outcomes."""
    try:
        return ("ok", _run_point(args))
    except Exception as error:
        return (
            "error",
            (args[3], dict(args[4]), f"{type(error).__name__}: {error}"),
        )


def _pool_context():
    """Prefer ``fork`` (fast, shares the imported tree); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _assemble(
    spec: SweepSpec,
    workers: int,
    completed: Dict[int, PointResult],
    failures: List[PointFailure],
    wall: float,
    harness: Optional[Dict[str, float]] = None,
    collect_telemetry: bool = False,
) -> SweepResult:
    points = [completed[index] for index in sorted(completed)]
    # Merge strictly in point-index order: float addition is order
    # dependent, and index order is the only order every worker count
    # (and every resume) reproduces.
    merged = (
        merge_summaries(point.telemetry for point in points)
        if collect_telemetry
        else None
    )
    return SweepResult(
        name=spec.name,
        target=spec.target,
        seed=spec.seed,
        workers=workers,
        points=points,
        wall_seconds=wall,
        failures=sorted(failures, key=lambda failure: failure.index),
        harness=dict(harness or {}),
        telemetry=merged,
    )


def _run_supervised(
    spec: SweepSpec,
    workers: int,
    trace_dir: Optional[str],
    progress,
    timeout: Optional[float],
    retries: Optional[int],
    backoff: float,
    chaos: Optional[ChaosSpec],
    journal: Optional[str],
    resume: Optional[List[str]],
    strict: bool,
    telemetry: Optional[Telemetry],
    start_method: Optional[str],
    started: float,
    collect_telemetry: bool,
    backend: Optional[str] = None,
    fleet: Optional[FleetConfig] = None,
    jitter: float = 0.0,
) -> SweepResult:
    from repro.sweep.journal import RunJournal, merge_journals

    completed: Dict[int, PointResult] = {}
    foreign: Dict[int, int] = {}
    journal_path = resume[0] if resume else journal
    if resume:
        state = merge_journals(resume)
        mismatch = state.matches(spec)
        if mismatch is not None:
            raise ConfigurationError(
                f"cannot resume sweep {spec.name!r} from {resume[0]}: "
                f"{mismatch}"
            )
        completed.update(state.completed)
        # Records merged in from secondary journals (worker hosts of an
        # interrupted fleet run) get copied into the primary below, so
        # the primary is self-contained for any later resume.
        foreign = {
            index: state.attempts.get(index, 1)
            for index in state.completed
            if state.origin.get(index) != str(pathlib.Path(resume[0]))
        }
    run_journal = (
        RunJournal(
            journal_path, spec,
            mode="resume" if resume else "fresh",
        )
        if journal_path is not None else None
    )
    if run_journal is not None:
        for index in sorted(foreign):
            run_journal.record_point(completed[index], foreign[index])
    config = SupervisorConfig(
        workers=workers,
        timeout=timeout,
        retries=2 if retries is None else retries,
        backoff=backoff,
        jitter=jitter,
        chaos=chaos,
        start_method=start_method,
    )
    supervisor = create_executor(
        backend, spec, config, trace_dir=trace_dir,
        metrics=telemetry.metrics if telemetry is not None else None,
        collect_telemetry=collect_telemetry, fleet=fleet,
    )
    if completed:
        supervisor.bump("resumed", float(len(completed)))
    failures: List[PointFailure] = []

    def on_result(result: PointResult, attempts: int) -> None:
        completed[result.index] = result
        if run_journal is not None:
            run_journal.record_point(result, attempts)
        if progress is not None:
            progress(result)

    def on_failure(failure: PointFailure) -> None:
        failures.append(failure)
        if run_journal is not None:
            run_journal.record_failure(
                failure.index, failure.error, failure.attempts
            )

    tasks = [
        (point.index, point.params)
        for point in spec.points()
        if point.index not in completed
    ]
    try:
        harness = supervisor.run(tasks, on_result, on_failure, strict=strict)
    except SweepInterrupted as interrupt:
        interrupt.partial = _assemble(
            spec, workers, completed, failures,
            time.perf_counter() - started, supervisor.counters,
            collect_telemetry=collect_telemetry,
        )
        raise
    finally:
        if run_journal is not None:
            run_journal.close()
    return _assemble(
        spec, workers, completed, failures,
        time.perf_counter() - started, harness,
        collect_telemetry=collect_telemetry,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    trace_dir: Optional[str] = None,
    progress=None,
    *,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: float = 0.05,
    jitter: float = 0.0,
    chaos: Union[ChaosSpec, str, None] = None,
    journal: Union[str, pathlib.Path, None] = None,
    resume: Union[str, pathlib.Path, Sequence[Union[str, pathlib.Path]],
                  None] = None,
    strict: bool = False,
    telemetry: Optional[Telemetry] = None,
    supervised: Optional[bool] = None,
    start_method: Optional[str] = None,
    collect_telemetry: bool = False,
    backend: Optional[str] = None,
    fleet: Optional[FleetConfig] = None,
) -> SweepResult:
    """Run every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` runs inline (no pool, easiest to debug); the
        aggregated result is bit-identical at any value.
    trace_dir:
        When given, each point writes its telemetry trace as
        ``point-NNNN.jsonl`` under this directory.
    progress:
        Optional callable ``progress(point_result)`` invoked as results
        arrive (grid order on the bare paths; completion order under
        supervision).
    timeout / retries / backoff:
        Supervised fault-tolerance policy: per-point wall-clock budget,
        bounded re-dispatch budget (default 2 when supervised) and the
        geometric backoff before each retry.
    chaos:
        A :class:`~repro.sweep.supervisor.ChaosSpec` (or its string form
        ``"crash:0.1,hang:0.05"``) injecting worker crashes/hangs into
        the harness to exercise recovery.
    journal / resume:
        ``journal=path`` starts a fresh crash-consistent run journal at
        ``path``; ``resume=path`` loads one, skips its completed points
        and appends to it.  ``resume`` also accepts a *sequence* of
        paths — an interrupted fleet run's coordinator journal plus its
        worker-host journals — which are merged
        (:func:`repro.sweep.journal.merge_journals`) with the
        first-listed path becoming the journal the resumed run appends
        to (foreign records are copied in, so it ends self-contained).
        The resumed result is bit-identical to an uninterrupted run.
    strict:
        ``False`` (default) collects failing points into
        ``result.failures`` and returns the partial result; ``True``
        restores the raise-on-first-failure behaviour.
    telemetry:
        When given, supervisor events are counted on
        ``telemetry.metrics`` as ``sweep.supervisor.*`` counters.
    supervised:
        Force (``True``) or forbid (``False``) the supervised executor;
        default auto-enables it when any fault-tolerance option is set.
    collect_telemetry:
        When True each point also returns its full telemetry summary
        (``PointResult.telemetry``), the summaries cross the worker
        pipes, and the parent merges them in point-index order into
        ``SweepResult.telemetry`` — bit-identical at any worker count,
        and journalled so a resumed run reconstructs the same aggregate.
    backend / fleet:
        ``backend`` picks the executor substrate (``local`` —
        the default — ``local-fork``, ``local-spawn`` or ``tcp``; see
        :mod:`repro.sweep.backends`); ``fleet`` carries the ``tcp``
        backend's :class:`~repro.sweep.backends.FleetConfig` (listen
        address, heartbeats, work stealing).
    jitter:
        Deterministic retry-backoff jitter fraction (see
        :func:`repro.sweep.backends.backoff_delay`).

    The target is resolved once up front so an unknown name fails fast,
    then again by name inside each worker.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    resolve_target(spec.target)
    if isinstance(chaos, str):
        chaos = parse_chaos(chaos)
    if isinstance(resume, (str, pathlib.Path)):
        resume = [str(resume)]
    elif resume is not None:
        resume = [str(path) for path in resume]
        if not resume:
            resume = None
    if resume and journal is not None and (
        pathlib.Path(resume[0]) != pathlib.Path(journal)
    ):
        raise ConfigurationError(
            "pass either journal= (fresh) or resume= (continue), not two "
            "different paths"
        )
    journal = None if journal is None else str(journal)
    if backend != "tcp" and fleet is not None:
        raise ConfigurationError(
            "fleet= is only meaningful with backend='tcp'"
        )
    wants_supervision = any(
        option is not None
        for option in (timeout, retries, chaos, journal, resume,
                       start_method, backend)
    )
    if supervised is None:
        supervised = wants_supervision
    elif not supervised and wants_supervision:
        raise ConfigurationError(
            "timeout/retries/chaos/journal/resume/start_method/backend "
            "require the supervised executor; drop supervised=False"
        )
    started = time.perf_counter()
    if supervised:
        return _run_supervised(
            spec, workers, trace_dir, progress, timeout, retries, backoff,
            chaos, journal, resume, strict, telemetry, start_method, started,
            collect_telemetry, backend=backend, fleet=fleet, jitter=jitter,
        )

    jobs = [
        (spec.target, spec.name, spec.seed, point.index, point.params,
         trace_dir, collect_telemetry)
        for point in spec.points()
    ]
    completed: Dict[int, PointResult] = {}
    failures: List[PointFailure] = []

    def interrupted() -> SweepInterrupted:
        return SweepInterrupted(
            f"sweep {spec.name!r} interrupted; "
            f"{len(jobs) - len(completed)} point(s) unfinished",
            partial=_assemble(
                spec, workers, completed, failures,
                time.perf_counter() - started,
                collect_telemetry=collect_telemetry,
            ),
        )

    if workers == 1:
        for job in jobs:
            try:
                result = _run_point(job)
            except KeyboardInterrupt:
                raise interrupted() from None
            except Exception as error:
                if strict:
                    raise
                failures.append(
                    PointFailure(
                        index=job[3], params=dict(job[4]),
                        error=f"{type(error).__name__}: {error}", attempts=1,
                    )
                )
                continue
            if progress is not None:
                progress(result)
            completed[result.index] = result
    else:
        context = _pool_context()
        chunksize = max(1, len(jobs) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            try:
                if strict:
                    for result in pool.imap(
                        _run_point, jobs, chunksize=chunksize
                    ):
                        if progress is not None:
                            progress(result)
                        completed[result.index] = result
                else:
                    for kind, payload in pool.imap(
                        _run_point_guarded, jobs, chunksize=chunksize
                    ):
                        if kind == "ok":
                            if progress is not None:
                                progress(payload)
                            completed[payload.index] = payload
                        else:
                            index, params, message = payload
                            failures.append(
                                PointFailure(
                                    index=index, params=params,
                                    error=message, attempts=1,
                                )
                            )
            except KeyboardInterrupt:
                pool.terminate()
                raise interrupted() from None
    return _assemble(
        spec, workers, completed, failures, time.perf_counter() - started,
        collect_telemetry=collect_telemetry,
    )
