"""Declarative parameter grids for scenario sweeps.

A sweep explores the cross product of named axes — "every topology at
every congestion policy at every load".  :class:`ParameterGrid` holds the
axes; iterating yields :class:`ScenarioPoint` objects in a deterministic
lexicographic order (axes in insertion order, values in the order given),
so point ``index`` is a stable identity: the same grid always enumerates
the same points with the same indices regardless of worker count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioPoint:
    """One cell of a parameter grid: a stable index plus its parameters."""

    index: int
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """A compact ``axis=value`` rendering, for progress lines and tables."""
        inner = ",".join(f"{k}={v}" for k, v in self.params.items())
        return f"[{self.index}] {inner}"


class ParameterGrid:
    """The cross product of named parameter axes.

    Parameters
    ----------
    axes:
        Mapping of axis name to the sequence of values it takes.  Axis
        order is significant — it fixes the enumeration order (last axis
        varies fastest, like an odometer).  Every axis needs at least one
        value; single-value axes are how fixed parameters ride along.

    Examples
    --------
    ``ParameterGrid({"topology": ["dragonfly", "hyperx"], "load": [0.3, 0.9]})``
    enumerates 4 points: (dragonfly, 0.3), (dragonfly, 0.9), (hyperx, 0.3),
    (hyperx, 0.9).
    """

    def __init__(self, axes: Mapping[str, Sequence[object]]) -> None:
        if not axes:
            raise ConfigurationError("parameter grid needs at least one axis")
        self._axes: Dict[str, List[object]] = {}
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ConfigurationError(f"axis {name!r} has no values")
            self._axes[str(name)] = values

    @property
    def axes(self) -> Dict[str, List[object]]:
        """The axis mapping (a copy; mutating it does not affect the grid)."""
        return {name: list(values) for name, values in self._axes.items()}

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(self._axes)

    def __len__(self) -> int:
        size = 1
        for values in self._axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[ScenarioPoint]:
        names = list(self._axes)
        for index, combo in enumerate(itertools.product(*self._axes.values())):
            yield ScenarioPoint(index=index, params=dict(zip(names, combo)))

    def points(self) -> List[ScenarioPoint]:
        """The full enumeration as a list."""
        return list(self)

    def point(self, index: int) -> ScenarioPoint:
        """The point at a given stable index (IndexError when out of range)."""
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"grid has {size} points; no index {index}")
        params: Dict[str, object] = {}
        remaining = index
        for name in reversed(list(self._axes)):
            values = self._axes[name]
            remaining, offset = divmod(remaining, len(values))
            params[name] = values[offset]
        ordered = {name: params[name] for name in self._axes}
        return ScenarioPoint(index=index, params=ordered)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}×{len(v)}" for k, v in self._axes.items())
        return f"ParameterGrid({inner}; {len(self)} points)"
