"""Sweep targets: the functions a scenario sweep fans out over.

A *target* maps one grid point to a flat metrics dict::

    def target(params, telemetry, rng) -> Dict[str, float]

where ``params`` is the point's parameter dict, ``telemetry`` is a fresh
:class:`~repro.observability.probes.Telemetry` for the point, and ``rng``
is a :class:`~repro.core.rng.RandomSource` derived only from the sweep
seed and the point index — never from the worker that happens to run it.

Targets are registered by name so a :class:`~repro.sweep.engine.SweepSpec`
stays declarative (and picklable).  Two families exist out of the box:

* ``"fabric-congestion"`` — uniform random traffic on a canned topology
  with a chosen congestion policy and offered load (the congestion-study
  scenario from the paper's §II.B discussion, sweepable).
* ``"profile:<id>"`` — any run profile from :mod:`repro.profiles`; grid
  parameters become keyword overrides (``run("C1", **params)``).
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional

from repro.core.rng import RandomSource
from repro.interconnect.congestion import congestion_policy
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.topology import build_topology, normalize_topology_kind
from repro.observability import Telemetry

SweepTarget = Callable[[Dict[str, object], Telemetry, RandomSource], Dict[str, float]]

#: Registered targets by name (see :func:`register_target`).
TARGETS: Dict[str, SweepTarget] = {}


def register_target(name: str) -> Callable[[SweepTarget], SweepTarget]:
    """Decorator: register a sweep target under ``name``."""

    def wrap(fn: SweepTarget) -> SweepTarget:
        TARGETS[name] = fn
        return fn

    return wrap


def resolve_target(name: str) -> SweepTarget:
    """Look up a target by name.

    ``profile:<id>`` resolves dynamically to the matching run profile;
    anything else must be in :data:`TARGETS`.  Unknown names raise
    ``KeyError`` listing what is sweepable.
    """
    if name in TARGETS:
        return TARGETS[name]
    if name.startswith("profile:"):
        profile_id = name.split(":", 1)[1]
        from repro import profiles

        if profile_id.upper() not in profiles.PROFILES:
            known = ", ".join(sorted(profiles.PROFILES))
            raise KeyError(
                f"no run profile for sweep target {name!r}; profiles: {known}"
            )
        return _profile_target(profile_id)
    known = ", ".join(sorted(TARGETS)) + ", profile:<id>"
    raise KeyError(f"unknown sweep target {name!r}; sweepable: {known}")


def _profile_target(profile_id: str) -> SweepTarget:
    def run_point(
        params: Dict[str, object],
        telemetry: Telemetry,
        rng: RandomSource,
    ) -> Dict[str, float]:
        from repro import profiles

        overrides = dict(params)
        # Profiles that take a seed get one derived from (sweep seed,
        # point index) unless the grid pins it; seedless profiles are
        # deterministic already.
        profile = profiles.PROFILES[profile_id.upper()]
        if "seed" not in overrides and "seed" in inspect.signature(profile).parameters:
            overrides["seed"] = rng.integer(0, 2**31 - 1)
        result = profiles.run(profile_id, telemetry, **overrides)
        return result.metrics

    return run_point


# --- the fabric congestion target ---------------------------------------------

#: Canned topology sizes for the fabric target — small enough that one
#: point runs in well under a second, large enough that congestion policies
#: separate.  All have >= 64 terminals.
_FABRIC_TOPOLOGIES: Dict[str, Dict[str, object]] = {
    "dragonfly": {"groups": 6, "routers_per_group": 4, "terminals": 4},
    "hyperx": {"dims": (4, 4), "terminals": 4},
    "fat-tree": {"k": 6},
    "two-tier": {"leaves": 8, "spines": 4, "terminals": 8},
    "torus": {"dims": (4, 4, 4), "terminals": 1},
}

#: Congestion axis values understood by the fabric target.  The
#: ``flow-adaptive`` variant is the flow-based policy with adaptive
#: rerouting of hot flows enabled on top.
FABRIC_CONGESTION_VARIANTS = ("none", "ecn", "flow", "flow-adaptive")


@register_target("fabric-congestion")
def fabric_congestion(
    params: Dict[str, object],
    telemetry: Telemetry,
    rng: RandomSource,
) -> Dict[str, float]:
    """Uniform random traffic on a canned topology under a congestion policy.

    Grid parameters (all optional except ``topology``):

    ``topology``
        Any :data:`~repro.interconnect.topology.TOPOLOGY_KINDS` name.
    ``congestion``
        One of :data:`FABRIC_CONGESTION_VARIANTS` (default ``"none"``).
    ``load``
        Offered load as a fraction of a 25 GB/s terminal line rate in
        (0, 1]; sets the mean flow inter-arrival gap (default ``0.5``).
    ``flows`` / ``flow_size``
        Trace length and per-flow bytes (defaults 96 and 2 MB).
    ``solver``
        Rate-solver registry name (``"reference"`` / ``"numpy"``); omitted
        means the process default.  All solvers are bit-identical, so the
        metrics don't change — but the name lands in the point's params
        and therefore in the sweep fingerprint, keeping mixed-solver
        sweeps from colliding with cached goldens.
    """
    kind = normalize_topology_kind(str(params["topology"]))
    spec = dict(_FABRIC_TOPOLOGIES[kind])
    variant = str(params.get("congestion", "none"))
    adaptive = variant == "flow-adaptive"
    policy = congestion_policy("flow" if adaptive else variant)
    load = float(params.get("load", 0.5))
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    flow_count = int(params.get("flows", 96))
    flow_size = float(params.get("flow_size", 2e6))
    solver = params.get("solver")

    topology = build_topology(kind, **spec)
    simulator = FabricSimulator(
        topology,
        congestion=policy,
        reroute_adaptively=adaptive,
        telemetry=telemetry,
        solver=str(solver) if solver is not None else None,
    )
    terminals = list(topology.terminals)
    mean_gap = flow_size / (load * 25e9)
    clock = 0.0
    trace = []
    for _ in range(flow_count):
        source, destination = rng.sample(terminals, 2)
        trace.append(
            Flow(
                source=source, destination=destination,
                size=flow_size, start_time=clock,
            )
        )
        clock += rng.exponential(mean_gap)
    stats = simulator.run(trace)
    completions = sorted(s.completion_time for s in stats)
    mean_fct = sum(completions) / len(completions) if completions else 0.0
    p99 = completions[int(0.99 * (len(completions) - 1))] if completions else 0.0
    return {
        "flows_finished": float(len(stats)),
        "mean_fct_s": mean_fct,
        "p99_fct_s": p99,
        "max_fct_s": completions[-1] if completions else 0.0,
        "bytes": float(sum(s.size for s in stats)),
        "congestion_events": telemetry.counter(
            "fabric.congestion_events"
        ).total(),
    }


# --- the resilience churn target ----------------------------------------------


@register_target("resilience-churn")
def resilience_churn(
    params: Dict[str, object],
    telemetry: Telemetry,
    rng: RandomSource,
) -> Dict[str, float]:
    """A single-site cluster under a node-fault campaign, swept.

    A batch of identical jobs runs on ``nodes`` devices while an
    exponential node-failure process kills them; killed jobs requeue under
    a bounded retry policy, optionally resuming from periodic checkpoints.
    All randomness (fault timeline, victim choice) forks from the point's
    ``rng``, so the sweep engine's fingerprint contract covers the fault
    schedule too — ``fault_time_sum`` lands in the metrics precisely so a
    perturbed timeline changes the sweep fingerprint.

    Grid parameters (all optional):

    ``nodes`` / ``jobs`` / ``ranks``
        Cluster size, job count and per-job width (defaults 8, 24, 1).
    ``work``
        Intended per-job runtime in seconds (default 900); job kernels are
        calibrated so the runtime estimate matches.
    ``mtbf``
        Aggregate mean time between node failures at the site, seconds
        (default 4000).
    ``repair_time``
        Node downtime per failure (default 120).
    ``checkpoint_interval`` / ``checkpoint_cost`` / ``restart_time``
        Periodic checkpointing knobs; interval 0 (default) disables
        checkpointing entirely.
    ``max_retries`` / ``base_delay``
        Retry policy bounds (defaults 10 and 5 s; jitter stays 0 so only
        the named forks below consume randomness).
    ``arrival_gap``
        Seconds between job arrivals (default 60).
    """
    from repro.federation import Site, SiteKind
    from repro.hardware import Precision, default_catalog
    from repro.resilience import (
        CheckpointPlan,
        FailureProcess,
        FaultCampaign,
        FaultInjector,
        NodeFaultSpec,
        RetryPolicy,
        bind_cluster,
        check_conservation,
        cluster_report,
    )
    from repro.scheduling.cluster import ClusterSimulator
    from repro.scheduling.runtime import estimate_job
    from repro.workloads.base import JobClass, make_single_kernel_job

    nodes = int(params.get("nodes", 8))
    jobs = int(params.get("jobs", 24))
    ranks = int(params.get("ranks", 1))
    work = float(params.get("work", 900.0))
    mtbf = float(params.get("mtbf", 4_000.0))
    repair_time = float(params.get("repair_time", 120.0))
    interval = float(params.get("checkpoint_interval", 0.0))
    cost = float(params.get("checkpoint_cost", 30.0))
    restart_time = float(params.get("restart_time", 30.0))
    max_retries = int(params.get("max_retries", 10))
    base_delay = float(params.get("base_delay", 5.0))
    arrival_gap = float(params.get("arrival_gap", 60.0))

    catalog = default_catalog()
    device = catalog.get("epyc-class-cpu")
    site = Site(
        name="churn", kind=SiteKind.ON_PREMISE, devices={device: nodes}
    )

    def make_job(index: int, flops: float):
        job = make_single_kernel_job(
            name=f"churn-{index}",
            job_class=JobClass.SIMULATION,
            flops=flops,
            bytes_moved=1e6,
            precision=Precision.FP64,
            ranks=ranks,
        )
        job.arrival_time = index * arrival_gap
        return job

    # Calibrate kernel flops so the runtime estimate hits ``work`` —
    # compute-bound kernels scale linearly.
    probe = make_job(0, 1e15)
    probe_time = estimate_job(probe, device, site).time
    flops = 1e15 * work / probe_time

    checkpoint = (
        CheckpointPlan(interval=interval, cost=cost, restart_time=restart_time)
        if interval > 0 else None
    )
    cluster = ClusterSimulator(
        site=site, device=device, telemetry=telemetry,
        retry_policy=RetryPolicy(
            max_retries=max_retries, base_delay=base_delay, jitter=0.0
        ),
        checkpoint=checkpoint, rng=rng.fork("cluster"),
    )
    telemetry.bind_simulation(cluster.simulation)
    for index in range(jobs):
        cluster.submit(make_job(index, flops))
    horizon = float(
        params.get("horizon", 2.0 * (jobs * arrival_gap + 20.0 * work))
    )
    campaign = FaultCampaign(
        horizon=horizon,
        node_faults=(
            NodeFaultSpec(
                site=site.name,
                process=FailureProcess(mtbf=mtbf),
                repair_time=repair_time,
            ),
        ),
    )
    timeline = campaign.timeline(rng.fork("faults"))
    injector = FaultInjector(
        cluster.simulation, campaign, rng.fork("faults"),
        telemetry=telemetry, timeline=timeline,
    )
    bind_cluster(injector, cluster)
    injector.install()
    cluster.run()
    report = cluster_report(cluster)
    check_conservation(cluster)
    return {
        "completed": float(report.completed),
        "dead": float(report.dead),
        "kills": float(report.kills),
        "retries_total": float(report.retries),
        "faults_injected": float(injector.injected),
        "goodput": report.goodput,
        "utilization": report.utilization,
        "wasted_device_seconds": report.wasted_device_seconds,
        "makespan_s": report.makespan,
        "fault_time_sum": sum(event.time for event in timeline),
    }


# --- the memory-reliability target --------------------------------------------


@register_target("memory-reliability")
def memory_reliability(
    params: Dict[str, object],
    telemetry: Telemetry,
    rng: RandomSource,
) -> Dict[str, float]:
    """Reliability vs sustainability: ECC/scrub strength under memory errors.

    The churn scenario with memory as the failure domain: a FIT-rate
    upset process over the site's DRAM is classified by the swept ECC
    and patrol-scrub policies; DUEs kill jobs through the
    checkpoint-restart path, and the checkpoint interval itself is
    derived from the FIT rate via
    :func:`~repro.resilience.memerrors.memory_failure_model`.  Each
    point is scored in goodput *and* carbon (operational + embodied per
    completed job), so the sweep trades scrub aggressiveness and ECC
    strength against gCO2e directly.  ``upset_time_sum`` lands in the
    metrics so a perturbed upset timeline changes the sweep fingerprint.

    Grid parameters (all optional):

    ``ecc``
        ECC policy name: ``none`` / ``sec-ded`` / ``chipkill``
        (default ``sec-ded``).
    ``scrub_interval``
        Patrol-scrub period in seconds; ``0`` disables scrubbing
        (default 900).
    ``fit_per_gib``
        Accelerated upset rate in FIT/GiB (default 4e6).
    ``nodes`` / ``jobs`` / ``work`` / ``arrival_gap``
        Cluster size, job count, per-job seconds and arrival spacing
        (defaults 8, 24, 900, 60).
    ``node_mtbf``
        Per-node hardware MTBF excluding memory (default 30000 s).
    ``max_retries`` / ``base_delay``
        Retry policy bounds (defaults 10 and 5 s).
    """
    import math

    from repro.economics import EnergyCarbonModel
    from repro.federation import Site, SiteKind
    from repro.hardware import Precision, default_catalog
    from repro.hardware.power import (
        CoolingTechnology,
        DatacenterPowerModel,
        RackPowerModel,
    )
    from repro.resilience import (
        CheckpointPlan,
        FaultInjector,
        MemoryErrorCampaign,
        MemoryErrorSpec,
        NO_SCRUB,
        RetryPolicy,
        ScrubPolicy,
        bind_memory,
        check_conservation,
        cluster_report,
        ecc_policy,
        memory_failure_model,
    )
    from repro.scheduling.checkpointing import fabric_pm_target
    from repro.scheduling.cluster import ClusterSimulator
    from repro.scheduling.runtime import estimate_job
    from repro.workloads.base import JobClass, make_single_kernel_job

    ecc = ecc_policy(str(params.get("ecc", "sec-ded")))
    scrub_interval = float(params.get("scrub_interval", 900.0))
    scrub = ScrubPolicy(scrub_interval) if scrub_interval > 0 else NO_SCRUB
    fit_per_gib = float(params.get("fit_per_gib", 4e6))
    nodes = int(params.get("nodes", 8))
    jobs = int(params.get("jobs", 24))
    work = float(params.get("work", 900.0))
    arrival_gap = float(params.get("arrival_gap", 60.0))
    node_mtbf = float(params.get("node_mtbf", 30_000.0))
    max_retries = int(params.get("max_retries", 10))
    base_delay = float(params.get("base_delay", 5.0))

    catalog = default_catalog()
    device = catalog.get("epyc-class-cpu")
    site = Site(
        name="memrel", kind=SiteKind.ON_PREMISE, devices={device: nodes}
    )
    footprint = device.spec.memory_capacity
    pool_capacity = footprint * nodes
    mem_spec = MemoryErrorSpec(
        device=device.name, region=site.name, capacity_bytes=pool_capacity,
        fit_per_gib=fit_per_gib, ecc=ecc, scrub=scrub,
    )
    failures = memory_failure_model(
        footprint, mem_spec, nodes=nodes, node_mtbf=node_mtbf
    )
    plan = CheckpointPlan.from_target(fabric_pm_target(), 2e11, failures)

    def make_job(index: int, flops: float):
        job = make_single_kernel_job(
            name=f"memrel-{index}",
            job_class=JobClass.SIMULATION,
            flops=flops,
            bytes_moved=1e6,
            precision=Precision.FP64,
            ranks=1,
        )
        job.arrival_time = index * arrival_gap
        return job

    probe = make_job(0, 1e15)
    probe_time = estimate_job(probe, device, site).time
    flops = 1e15 * work / probe_time

    cluster = ClusterSimulator(
        site=site, device=device, telemetry=telemetry,
        retry_policy=RetryPolicy(
            max_retries=max_retries, base_delay=base_delay, jitter=0.0
        ),
        checkpoint=plan, rng=rng.fork("cluster"),
    )
    telemetry.bind_simulation(cluster.simulation)
    for index in range(jobs):
        cluster.submit(make_job(index, flops))
    horizon = float(
        params.get("horizon", 2.0 * (jobs * arrival_gap + 20.0 * work))
    )
    campaign = MemoryErrorCampaign(horizon=horizon, memory=(mem_spec,))
    timeline = campaign.timeline(rng.fork("faults"))
    injector = FaultInjector(
        cluster.simulation, campaign, rng.fork("faults"),
        telemetry=telemetry, timeline=timeline,
    )
    stats = bind_memory(
        injector, cluster, rng=rng.fork("memvictim"), region=site.name
    )
    injector.install()
    cluster.run()
    report = cluster_report(cluster)
    check_conservation(cluster)

    rack = RackPowerModel(
        cooling=CoolingTechnology.DIRECT_LIQUID, devices=[device.spec] * nodes
    )
    datacenter = DatacenterPowerModel(racks=[rack])
    carbon = EnergyCarbonModel().run_report(
        it_power=datacenter.it_power(),
        pue=datacenter.pue(),
        dwell_seconds=report.makespan,
        completed_jobs=report.completed,
        memory_bytes=pool_capacity,
        extra_it_power=mem_spec.scrub.scrub_power(pool_capacity),
    )
    gco2e_per_job = carbon["gco2e_per_job"]
    return {
        "completed": float(report.completed),
        "dead": float(report.dead),
        "kills": float(report.kills),
        "retries_total": float(report.retries),
        "mem_corrected": float(stats.corrected),
        "mem_due": float(stats.due),
        "mem_silent": float(stats.silent),
        "mem_kills": float(stats.kills),
        "checkpoint_interval_s": plan.interval,
        "goodput": report.goodput,
        "utilization": report.utilization,
        "makespan_s": report.makespan,
        "energy_kwh": carbon["energy_kwh"],
        "carbon_total_kg": carbon["total_kg"],
        # Runs completing nothing have no per-job carbon; JSON cannot
        # carry inf, so the sentinel is 0 alongside completed == 0.
        "gco2e_per_job": 0.0 if math.isinf(gco2e_per_job) else gco2e_per_job,
        "upset_time_sum": sum(event.time for event in timeline),
    }


# --- named sweeps -------------------------------------------------------------


def named_sweep(name: str, seed: Optional[int] = None):
    """A ready-made :class:`~repro.sweep.engine.SweepSpec` by name.

    ``"congestion"`` is the 64-point congestion study (4 topologies × 4
    congestion variants × 4 loads); ``"smoke"`` is its 8-point miniature
    for CI; ``"resilience"`` sweeps checkpoint interval × failure rate on
    the churn target; ``"reliability"`` sweeps ECC strength × patrol-scrub
    period on the memory-error target, trading goodput against gCO2e per
    completed job.  Unknown names raise ``KeyError``.
    """
    from repro.sweep.engine import SweepSpec

    if name == "congestion":
        return SweepSpec(
            name="congestion",
            target="fabric-congestion",
            grid={
                "topology": ["dragonfly", "hyperx", "fat-tree", "two-tier"],
                "congestion": list(FABRIC_CONGESTION_VARIANTS),
                "load": [0.25, 0.5, 0.75, 0.95],
                # Single-value rider: enough traffic per point that process
                # fan-out wins (point cost >> pool overhead) on multi-core.
                "flows": [256],
            },
            seed=seed if seed is not None else 424242,
        )
    if name == "smoke":
        return SweepSpec(
            name="smoke",
            target="fabric-congestion",
            grid={
                "topology": ["dragonfly", "two-tier"],
                "congestion": ["none", "flow"],
                "load": [0.5, 0.95],
                "flows": [24],
            },
            seed=seed if seed is not None else 7,
        )
    if name == "resilience":
        return SweepSpec(
            name="resilience",
            target="resilience-churn",
            grid={
                "checkpoint_interval": [0, 120, 360, 720],
                "mtbf": [500, 2_000],
                "jobs": [16],
                "work": [600.0],
            },
            seed=seed if seed is not None else 1031,
        )
    if name == "reliability":
        return SweepSpec(
            name="reliability",
            target="memory-reliability",
            grid={
                "ecc": ["none", "sec-ded", "chipkill"],
                "scrub_interval": [120.0, 900.0, 0.0],
                "fit_per_gib": [4e6],
                "jobs": [16],
                "work": [600.0],
            },
            seed=seed if seed is not None else 2063,
        )
    raise KeyError(
        "unknown named sweep "
        f"{name!r}; known: congestion, smoke, resilience, reliability"
    )


#: Named sweeps available to the CLI (``python -m repro sweep <name>``).
NAMED_SWEEPS = ("congestion", "smoke", "resilience", "reliability")
