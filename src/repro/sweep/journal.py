"""Append-only run journals: crash-consistent sweep progress on disk.

A journal is a JSONL file (schema ``repro.sweep.journal/v1``): one header
line identifying the sweep, then one line per completed point (and one
per terminally-failed point).  Every record is flushed **and fsynced**
before the supervisor moves on, so the journal survives a SIGKILL of any
worker *or the parent* with at most one torn trailing line — which
:func:`load_journal` detects and drops, because a record only counts once
its terminating newline is on disk.

``run_sweep(spec, resume=path)`` uses the journal to skip completed
points and re-attempt failed ones; the resumed result's fingerprint is
bit-identical to an uninterrupted run because every point's outcome is a
pure function of ``(seed, sweep name, point index)`` — never of which
run, attempt or worker produced it.

Distributed sweeps write *several* journals — the coordinator's primary
plus one per worker host — and :func:`merge_journals` folds them back
into one resume state: the first-listed journal wins duplicate indices,
and a duplicate whose payload digest disagrees raises ``ValueError``
naming the offending path and point index (two journals claiming
different outcomes for the same point means the determinism contract was
broken, which must never be papered over).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.atomicio import fsync_directory
from repro.sweep.engine import PointResult, SweepSpec

#: Journal document schema identifier (the header's ``schema`` field).
SCHEMA = "repro.sweep.journal/v1"


def grid_digest(spec: SweepSpec) -> str:
    """A stable digest of the spec's full parameter grid.

    Written into the journal header and re-checked on resume, so a
    journal can never silently replay onto a sweep whose axes changed.
    """
    payload = json.dumps(
        [
            {"index": point.index,
             "params": {k: repr(v) for k, v in point.params.items()}}
            for point in spec.points()
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def journal_header(spec: SweepSpec) -> Dict[str, object]:
    """The header record for one spec."""
    return {
        "kind": "header",
        "schema": SCHEMA,
        "name": spec.name,
        "target": spec.target,
        "seed": spec.seed,
        "points": len(spec.points()),
        "grid_digest": grid_digest(spec),
    }


@dataclass
class JournalState:
    """Everything a journal file recorded, ready for resume."""

    header: Dict[str, object]
    completed: Dict[int, PointResult] = field(default_factory=dict)
    failed: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: Attempts recorded per completed point index.
    attempts: Dict[int, int] = field(default_factory=dict)
    #: Which journal file each completed record came from (meaningful for
    #: :func:`merge_journals`; single-file loads point every index here).
    origin: Dict[int, str] = field(default_factory=dict)
    #: True when the final line was torn (a crash mid-append) and dropped.
    torn_tail: bool = False

    def matches(self, spec: SweepSpec) -> Optional[str]:
        """``None`` if this journal belongs to ``spec``, else the mismatch."""
        expected = journal_header(spec)
        for key in ("schema", "name", "target", "seed", "points",
                    "grid_digest"):
            if self.header.get(key) != expected[key]:
                return (
                    f"journal {key} {self.header.get(key)!r} does not match "
                    f"the spec's {expected[key]!r}"
                )
        return None


def _point_record(result: PointResult, attempts: int) -> Dict[str, object]:
    record = {
        "kind": "point",
        "index": result.index,
        "params": result.params,
        "metrics": result.metrics,
        "counters": result.counters,
        "wall_seconds": result.wall_seconds,
        "attempts": attempts,
    }
    if result.telemetry is not None:
        # Telemetry-collecting runs journal each point's summary so a
        # resumed run merges the same aggregate as an uninterrupted one.
        record["telemetry"] = result.telemetry
    return record


def point_record(result: PointResult, attempts: int = 1) -> Dict[str, object]:
    """The JSON-ready record for one completed point.

    The same encoding serves the journal file and the fleet's ``result``
    frames, so a worker host's wire payload and its local journal line
    are byte-for-byte the same JSON object.
    """
    return _point_record(result, attempts)


def point_from_record(record: Dict[str, object]) -> Tuple[PointResult, int]:
    """Decode one ``kind == "point"`` record into ``(result, attempts)``.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input;
    callers wrap with path/line (journal loads) or host (wire frames)
    context.
    """
    index = int(record["index"])
    result = PointResult(
        index=index,
        params=dict(record["params"]),
        metrics={k: float(v) for k, v in record["metrics"].items()},
        counters={k: float(v)
                  for k, v in record.get("counters", {}).items()},
        wall_seconds=float(record.get("wall_seconds", 0.0)),
        telemetry=record.get("telemetry"),
    )
    return result, int(record.get("attempts", 1))


def point_payload_digest(result: PointResult) -> str:
    """Digest of one point's deterministic payload.

    Covers exactly the fields :meth:`SweepResult.fingerprint` hashes —
    index, repr'd params, metrics, counters — and none of the
    run-dependent ones (wall clock, attempts, telemetry), so two records
    for the same point digest equal iff the determinism contract held.
    """
    payload = json.dumps(
        {
            "index": result.index,
            "params": {k: repr(v) for k, v in result.params.items()},
            "metrics": result.metrics,
            "counters": result.counters,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def load_journal(path: Union[str, pathlib.Path]) -> JournalState:
    """Parse a journal file into a :class:`JournalState`.

    Tolerates exactly one torn trailing line (the crash-in-flight append);
    any other malformed line raises ``ValueError`` naming the path and
    line number, as does a missing or mismatched header.
    """
    source = pathlib.Path(path)
    raw = source.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is the torn tail of an interrupted
    # append and is dropped (its record never durably happened).
    torn_tail = bool(lines and lines[-1] != "")
    body = lines[:-1]
    state: Optional[JournalState] = None
    for number, line in enumerate(body, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{source}: corrupt journal line {number}: {error}"
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError(
                f"{source}: journal line {number} has no 'kind' field"
            )
        kind = record["kind"]
        if kind == "header":
            if state is not None:
                raise ValueError(
                    f"{source}: duplicate header at line {number}"
                )
            if record.get("schema") != SCHEMA:
                raise ValueError(
                    f"{source}: expected schema {SCHEMA!r}, found "
                    f"{record.get('schema')!r}"
                )
            state = JournalState(header=record)
            continue
        if state is None:
            raise ValueError(
                f"{source}: line {number} precedes the journal header"
            )
        if kind == "point":
            try:
                result, attempts = point_from_record(record)
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{source}: malformed point record at line {number}: "
                    f"{error}"
                ) from None
            state.completed[result.index] = result
            state.attempts[result.index] = attempts
            state.origin[result.index] = str(source)
            state.failed.pop(result.index, None)
            continue
        if kind == "failure":
            try:
                index = int(record["index"])
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{source}: malformed failure record at line {number}: "
                    f"{error}"
                ) from None
            if index not in state.completed:
                state.failed[index] = record
            continue
        raise ValueError(
            f"{source}: unknown record kind {kind!r} at line {number}"
        )
    if state is None:
        raise ValueError(f"{source}: journal has no header record")
    state.torn_tail = torn_tail
    return state


#: Header fields every journal in a merge set must agree on.
_HEADER_KEYS = ("schema", "name", "target", "seed", "points", "grid_digest")


def merge_journals(
    paths: Iterable[Union[str, pathlib.Path]]
) -> JournalState:
    """Merge one or more journals of the same sweep into one resume state.

    Duplicate point indices keep the record from the **first-listed**
    journal that completed them; a later journal's record for the same
    index is checked against the kept one via
    :func:`point_payload_digest`, and a disagreement raises ``ValueError``
    naming the offending path and index (the records claim different
    deterministic outcomes, so neither can be trusted).  Headers must
    all describe the same spec — same name, target, seed and
    ``grid_digest``.  Failure records survive only for indices no journal
    completed.  ``origin`` maps each kept index to the file it came from,
    which lets a resumed run copy foreign records into its primary
    journal.
    """
    ordered = [pathlib.Path(p) for p in paths]
    if not ordered:
        raise ValueError("merge_journals needs at least one journal path")
    merged: Optional[JournalState] = None
    digests: Dict[int, Tuple[str, pathlib.Path]] = {}
    first = ordered[0]
    for path in ordered:
        state = load_journal(path)
        if merged is None:
            merged = JournalState(header=state.header,
                                  torn_tail=state.torn_tail)
        else:
            for key in _HEADER_KEYS:
                if state.header.get(key) != merged.header.get(key):
                    raise ValueError(
                        f"{path}: journal {key} {state.header.get(key)!r} "
                        f"does not match {first}'s "
                        f"{merged.header.get(key)!r}"
                    )
            merged.torn_tail = merged.torn_tail or state.torn_tail
        for index in sorted(state.completed):
            result = state.completed[index]
            digest = point_payload_digest(result)
            if index in digests:
                kept_digest, kept_path = digests[index]
                if digest != kept_digest:
                    raise ValueError(
                        f"{path}: conflicting record for point {index}: "
                        f"payload digest {digest[:16]} disagrees with "
                        f"{kept_path}'s {kept_digest[:16]}"
                    )
                continue
            digests[index] = (digest, path)
            merged.completed[index] = result
            merged.attempts[index] = state.attempts.get(index, 1)
            merged.origin[index] = str(path)
        for index, record in state.failed.items():
            if index not in merged.failed:
                merged.failed[index] = record
    for index in list(merged.failed):
        if index in merged.completed:
            del merged.failed[index]
    return merged


class RunJournal:
    """The append side: durable, crash-consistent progress records.

    Open in ``"fresh"`` mode to truncate and start a new journal (header
    written immediately) or ``"resume"`` to append to an existing one
    (header must already match the spec — callers validate via
    :func:`load_journal` / :meth:`JournalState.matches` first).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        spec: SweepSpec,
        mode: str = "fresh",
        fsync: bool = True,
    ) -> None:
        if mode not in ("fresh", "resume"):
            raise ValueError(f"journal mode must be fresh|resume, not {mode!r}")
        self.path = pathlib.Path(path)
        self.fsync = fsync
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if mode == "resume":
            self._truncate_torn_tail()
        self._handle = open(self.path, "w" if mode == "fresh" else "a")
        if mode == "fresh":
            if self.fsync:
                # The journal *file* is fsynced per record, but its very
                # existence is only durable once the directory entry is.
                fsync_directory(self.path.parent)
            self._append(journal_header(spec))

    def _truncate_torn_tail(self) -> None:
        """Drop a torn trailing line before appending in resume mode.

        :func:`load_journal` tolerates one torn tail (the record never
        durably happened), but appending after it would concatenate the
        next record onto the partial line, corrupting the journal for
        every later load.  Truncating back to the last terminated line
        restores the invariant of at most one torn trailing line.
        """
        try:
            with open(self.path, "rb+") as handle:
                raw = handle.read()
                if not raw or raw.endswith(b"\n"):
                    return
                handle.truncate(raw.rfind(b"\n") + 1)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        except FileNotFoundError:
            return

    def _append(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def record_point(self, result: PointResult, attempts: int = 1) -> None:
        """Durably journal one completed point."""
        self._append(_point_record(result, attempts))

    def record_failure(
        self, index: int, error: str, attempts: int
    ) -> None:
        """Durably journal one terminally-failed point."""
        self._append(
            {"kind": "failure", "index": index, "error": error,
             "attempts": attempts}
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
