"""The ``tcp`` backend's coordinator: shard a sweep across worker hosts.

One coordinator process owns the grid and the (single, authoritative)
run journal; any number of worker hosts (:mod:`repro.sweep.remote_worker`,
CLI ``repro sweep-worker``) connect over TCP and are fed points in
length-prefixed JSON frames (:mod:`repro.sweep.frames`).  The scheduling
policy is the supervised pool's, lifted one level: hosts replace
workers, frames replace pipes, and every loss mode maps onto the same
bounded retry-or-ledger machinery in
:class:`~repro.sweep.backends.BaseExecutor`:

* a host that **dies** (connection EOF, torn frame, or silence past the
  heartbeat deadline) has its *started* points requeued with one retry
  consumed and its unstarted points returned untouched;
* a point that runs past the per-point ``timeout`` is **cancelled** on
  its host (the host kills the child running it) and requeued;
* an idle host **steals** work: the coordinator revokes unstarted points
  from the most-loaded host and reassigns them, so one straggler host
  cannot serialise the tail of a sweep.

Determinism is untouched by any of this: a point's outcome is a pure
function of ``(seed, sweep name, index)``, so the fingerprint is
bit-identical to a local run no matter how many hosts, deaths, steals or
retries the fleet saw.

Wire protocol (all frames are JSON objects with a ``type`` field):

=========== ========== ==================================================
frame       direction  payload
=========== ========== ==================================================
hello       w -> c     ``protocol``, ``name``, ``slots``, optional
                       ``token`` (shared secret when the fleet
                       demands one)
welcome     c -> w     ``protocol``, ``target``, ``sweep``, ``seed``,
                       ``axes``, ``chaos``, ``heartbeat_interval``,
                       ``collect_telemetry``
rejected    c -> w     ``reason`` — handshake refused (e.g. auth token
                       mismatch); the worker raises a clean error
assign      c -> w     ``index``, ``attempt``
started     w -> c     ``index``, ``attempt`` — point began executing
result      w -> c     ``index``, ``attempt``, ``point`` (journal record)
error       w -> c     ``index``, ``attempt``, ``error``
crashed     w -> c     ``index``, ``attempt``, ``error`` — child died
cancel      c -> w     ``index`` — kill the child running this point
revoke      c -> w     ``count`` — donate up to count unstarted points
revoked     w -> c     ``indices`` — the donated points
heartbeat   w -> c     (empty) — liveness only
shutdown    c -> w     (empty) — drain and exit
=========== ========== ==================================================

Workers only ever receive ``index``/``attempt`` — they recompute params
from their own copy of the grid (rebuilt from the welcome frame's
``axes``), so a param value can never be corrupted in transit and the
purity contract is structural, not just conventional.
"""

from __future__ import annotations

import hmac
import socket
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.sweep.backends import (
    FLEET_COUNTERS,
    BaseExecutor,
    FleetConfig,
    FleetError,
    PointFailure,
    SweepInterrupted,
    _Task,
)
from repro.sweep.frames import (
    PROTOCOL_VERSION,
    FrameError,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["TcpCoordinator"]


@dataclass
class _Host:
    """One connected worker host, as the coordinator sees it."""

    sock: socket.socket
    name: str
    slots: int
    #: Assigned tasks by index; insertion order is assignment order.
    tasks: Dict[int, _Task] = field(default_factory=dict)
    #: Deadline per *started* point (absent = assigned but not started).
    deadlines: Dict[int, float] = field(default_factory=dict)
    last_seen: float = 0.0
    #: True while a revoke frame is outstanding (one steal at a time).
    stealing: bool = False

    @property
    def capacity(self) -> int:
        return self.slots  # multiplied by host_depth at dispatch

    @property
    def unstarted(self) -> List[int]:
        return [i for i in self.tasks if i not in self.deadlines]


class TcpCoordinator(BaseExecutor):
    """Drives one sweep's points through a fleet of TCP worker hosts."""

    def __init__(
        self,
        spec,
        config,
        fleet: Optional[FleetConfig] = None,
        trace_dir: Optional[str] = None,
        metrics=None,
        collect_telemetry: bool = False,
    ) -> None:
        super().__init__(spec, config, metrics=metrics)
        self.fleet = fleet or FleetConfig()
        self.trace_dir = trace_dir
        self.collect_telemetry = collect_telemetry
        for name in FLEET_COUNTERS:
            self.counters.setdefault(name, 0.0)
        chaos = config.chaos
        if chaos is not None and chaos.drop > 0 and config.timeout is None:
            raise ConfigurationError(
                "chaos drop injection needs a per-point timeout, or dropped "
                "result frames would stall the sweep forever"
            )
        self._listener: Optional[socket.socket] = None
        self._hosts: List[_Host] = []
        #: True once min_hosts was reached and dispatch opened.
        self._opened = False
        self._starved_since: Optional[float] = None

    # -- connection management --------------------------------------------

    def _bind(self) -> None:
        host, port = parse_address(self.fleet.listen)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        self._listener = listener
        bound_host, bound_port = listener.getsockname()[:2]
        if self.fleet.on_listen is not None:
            self.fleet.on_listen(bound_host, bound_port)

    def _welcome_payload(self) -> Dict[str, object]:
        chaos = self.config.chaos
        return {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "target": self.spec.target,
            "sweep": self.spec.name,
            "seed": self.spec.seed,
            # A list of [name, values] pairs, NOT a dict: frames are
            # serialised with sorted keys, and axis *order* is load-
            # bearing (it defines the grid's point enumeration).
            "axes": [
                [name, values]
                for name, values in self.spec.grid.axes.items()
            ],
            "chaos": chaos.to_wire() if chaos is not None else None,
            "heartbeat_interval": self.fleet.heartbeat_interval,
            "collect_telemetry": self.collect_telemetry,
        }

    def _accept(self, now: float) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Handshake under a timeout so a stalled client cannot block the
        # event loop; established hosts are policed by heartbeats instead.
        sock.settimeout(self.fleet.effective_heartbeat_timeout)
        try:
            hello = recv_frame(sock)
        except (FrameError, OSError):
            sock.close()
            return
        if (
            hello is None
            or hello.get("type") != "hello"
            or hello.get("protocol") != PROTOCOL_VERSION
        ):
            sock.close()
            return
        if self.fleet.auth_token is not None:
            offered = hello.get("token")
            if not isinstance(offered, str) or not hmac.compare_digest(
                offered, self.fleet.auth_token
            ):
                # An explicit rejection (not a bare close): the worker
                # turns it into a clean FleetError naming the cause
                # instead of reporting an opaque EOF.
                try:
                    send_frame(
                        sock,
                        {"type": "rejected", "reason": "auth token mismatch"},
                    )
                except OSError:
                    pass
                sock.close()
                self.bump("rejected")
                return
        name = str(hello.get("name") or f"host-{len(self._hosts)}")
        slots = max(1, int(hello.get("slots", 1)))
        try:
            send_frame(sock, self._welcome_payload())
        except OSError:
            sock.close()
            return
        sock.settimeout(None)
        self._hosts.append(
            _Host(sock=sock, name=name, slots=slots, last_seen=now)
        )
        self.bump("hosts_seen", host=name)

    def _drop_host(
        self,
        host: _Host,
        reason: str,
        now: float,
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        """A host died: requeue its work, charging only started points."""
        if host not in self._hosts:
            return
        self._hosts.remove(host)
        try:
            host.sock.close()
        except OSError:
            pass
        self.bump("hosts_lost", host=host.name)
        for index, task in list(host.tasks.items()):
            if index in host.deadlines:
                # Started points died mid-execution: one attempt consumed.
                self.bump("requeued")
                self._retry_or_fail(
                    task, f"HostLost: {reason}", now, on_failure, strict
                )
            else:
                # Queued points never started; back untouched.
                self._pending.append(task)
        host.tasks.clear()
        host.deadlines.clear()

    # -- scheduling -------------------------------------------------------

    def _dispatch(self, now: float) -> None:
        """Feed ready tasks to hosts, breadth-first across slot layers."""
        if not self._opened:
            return
        for depth in range(1, self.fleet.host_depth + 1):
            for host in list(self._hosts):
                while len(host.tasks) < depth * host.slots:
                    task = self._pop_ready(now)
                    if task is None:
                        return
                    try:
                        send_frame(host.sock, {
                            "type": "assign",
                            "index": task.index,
                            "attempt": task.attempt,
                        })
                    except OSError:
                        self._pending.append(task)
                        self._drop_host(
                            host, "connection lost during assign", now,
                            self._on_failure, self._strict,
                        )
                        break
                    host.tasks[task.index] = task
                    self.bump("dispatched", host=host.name)

    def _steal(self, now: float) -> None:
        """Revoke unstarted points from loaded hosts for idle capacity."""
        if not self.fleet.steal or len(self._hosts) < 2:
            return
        if self._pending:
            return  # dispatch handles it; stealing is for a dry queue
        idle = sum(
            max(0, host.slots - len(host.tasks)) for host in self._hosts
        )
        if idle <= 0:
            return
        donor = None
        for host in self._hosts:
            if host.stealing or len(host.unstarted) == 0:
                continue
            if donor is None or len(host.unstarted) > len(donor.unstarted):
                donor = host
        if donor is None:
            return
        count = min(idle, len(donor.unstarted))
        try:
            send_frame(donor.sock, {"type": "revoke", "count": count})
        except OSError:
            self._drop_host(
                donor, "connection lost during revoke", now,
                self._on_failure, self._strict,
            )
            return
        donor.stealing = True

    def _check_deadlines(
        self,
        now: float,
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        for host in list(self._hosts):
            for index, deadline in list(host.deadlines.items()):
                if now < deadline:
                    continue
                task = host.tasks.pop(index)
                del host.deadlines[index]
                self.bump("timeouts", host=host.name)
                self.bump("cancelled", host=host.name)
                try:
                    send_frame(host.sock, {"type": "cancel", "index": index})
                except OSError:
                    # Requeue this point first (retry consumed), then let
                    # the host teardown recycle the rest of its queue.
                    self._retry_or_fail(
                        task,
                        f"TimeoutError: point exceeded "
                        f"{self.config.timeout:g}s wall-clock budget",
                        now, on_failure, strict,
                    )
                    self._drop_host(
                        host, "connection lost during cancel", now,
                        on_failure, strict,
                    )
                    break
                self._retry_or_fail(
                    task,
                    f"TimeoutError: point exceeded "
                    f"{self.config.timeout:g}s wall-clock budget",
                    now, on_failure, strict,
                )

    def _check_heartbeats(
        self,
        now: float,
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        deadline = self.fleet.effective_heartbeat_timeout
        for host in list(self._hosts):
            if now - host.last_seen > deadline:
                self._drop_host(
                    host,
                    f"no frame from host {host.name!r} for {deadline:g}s",
                    now, on_failure, strict,
                )

    # -- frame handling ---------------------------------------------------

    def _handle_frame(
        self,
        host: _Host,
        frame: Dict[str, object],
        now: float,
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        kind = frame.get("type")
        if kind == "heartbeat":
            return
        if kind == "started":
            index = int(frame["index"])
            task = host.tasks.get(index)
            # The attempt stamp guards against a stale frame from a
            # previous (since-requeued) attempt of the same index.
            if (
                task is not None
                and int(frame.get("attempt", task.attempt)) == task.attempt
                and self.config.timeout is not None
            ):
                host.deadlines[index] = now + self.config.timeout
            return
        if kind == "result":
            index = int(frame["index"])
            task = host.tasks.pop(index, None)
            host.deadlines.pop(index, None)
            if task is None:
                return  # stale: point was cancelled/requeued meanwhile
            from repro.sweep.journal import point_from_record

            try:
                result, _ = point_from_record(frame["point"])
            except (KeyError, TypeError, ValueError) as error:
                self.bump("errors", host=host.name)
                self._retry_or_fail(
                    task,
                    f"FrameError: host {host.name!r} sent a malformed "
                    f"result for point {index}: {error}",
                    now, on_failure, strict,
                )
                return
            self.bump("completed", host=host.name)
            self._outstanding -= 1
            on_result(result, task.attempt)
            return
        if kind in ("error", "crashed"):
            index = int(frame["index"])
            task = host.tasks.get(index)
            if task is None:
                return
            if int(frame.get("attempt", task.attempt)) != task.attempt:
                return  # a previous attempt's late failure: already charged
            host.tasks.pop(index, None)
            host.deadlines.pop(index, None)
            self.bump("crashes" if kind == "crashed" else "errors",
                      host=host.name)
            self._retry_or_fail(
                task, str(frame.get("error", "unknown remote failure")),
                now, on_failure, strict,
            )
            return
        if kind == "revoked":
            host.stealing = False
            indices = frame.get("indices") or []
            returned = 0
            for raw in indices:
                index = int(raw)
                task = host.tasks.pop(index, None)
                if task is None or index in host.deadlines:
                    continue
                self._pending.append(task)
                returned += 1
            if returned:
                self.bump("stolen", float(returned), host=host.name)
            return
        # Unknown frame types are ignored: forward compatibility.

    # -- the event loop ---------------------------------------------------

    def run(
        self,
        tasks: List[Tuple[int, Dict[str, object]]],
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool = False,
    ) -> Dict[str, float]:
        """Run every (index, params) task across the fleet."""
        self._seed_tasks(tasks)
        self._on_failure = on_failure
        self._strict = strict
        if not self._pending:
            return dict(self.counters)
        self._bind()
        started_wait = time.monotonic()
        try:
            while self._outstanding > 0:
                now = time.monotonic()
                if not self._opened:
                    if len(self._hosts) >= self.fleet.min_hosts:
                        self._opened = True
                    elif now - started_wait > self.fleet.wait_for_hosts:
                        raise FleetError(
                            f"waited {self.fleet.wait_for_hosts:g}s for "
                            f"{self.fleet.min_hosts} worker host(s); only "
                            f"{len(self._hosts)} connected"
                        )
                if self._opened and not self._hosts:
                    if self._starved_since is None:
                        self._starved_since = now
                    elif now - self._starved_since > self.fleet.wait_for_hosts:
                        raise FleetError(
                            f"all worker hosts lost and none reconnected "
                            f"within {self.fleet.wait_for_hosts:g}s; "
                            f"{self._outstanding} point(s) unfinished"
                        )
                else:
                    self._starved_since = None
                self._check_heartbeats(now, on_failure, strict)
                self._check_deadlines(now, on_failure, strict)
                self._dispatch(now)
                self._steal(now)
                self._wait(on_result, on_failure, strict)
        except KeyboardInterrupt:
            raise SweepInterrupted(
                f"sweep {self.spec.name!r} interrupted; "
                f"{self._outstanding} point(s) unfinished"
            ) from None
        finally:
            self._shutdown()
        return dict(self.counters)

    def _wait_timeout(self, now: float) -> float:
        horizons = [now + self.fleet.heartbeat_interval]
        for host in self._hosts:
            if host.deadlines:
                horizons.append(min(host.deadlines.values()))
        wake = self._next_wake()
        # Only a *future* backoff expiry is a wake-up horizon.  A task
        # that is already ready but still pending is parked on host
        # capacity, and capacity only changes with an inbound frame —
        # which interrupts the wait by itself.  Treating a past-due
        # ready time as a horizon would turn this select into a busy
        # spin that starves the worker hosts of CPU.
        if wake is not None and wake > now:
            horizons.append(wake)
        return max(0.0, min(horizons) - now)

    def _wait(
        self,
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        now = time.monotonic()
        watched: List[object] = [self._listener]
        by_sock = {host.sock: host for host in self._hosts}
        watched.extend(by_sock)
        ready = connection.wait(watched, timeout=self._wait_timeout(now))
        now = time.monotonic()
        for sock in ready:
            if sock is self._listener:
                self._accept(now)
                continue
            host = by_sock.get(sock)
            if host is None or host not in self._hosts:
                continue
            try:
                frame = recv_frame(sock)
            except (FrameError, OSError) as error:
                # A host dying mid-frame surfaces as FrameError (torn
                # frame) or raw OSError (RST); both mean the host is gone.
                self._drop_host(host, str(error), now, on_failure, strict)
                continue
            if frame is None:
                self._drop_host(
                    host, "connection closed", now, on_failure, strict
                )
                continue
            host.last_seen = now
            self._handle_frame(
                host, frame, now, on_result, on_failure, strict
            )

    def _shutdown(self) -> None:
        for host in self._hosts:
            try:
                send_frame(host.sock, {"type": "shutdown"})
            except OSError:
                pass
            try:
                host.sock.close()
            except OSError:
                pass
        self._hosts.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
