"""Pluggable sweep executor backends: one interface, local or distributed.

PR 5's supervised fork-pool hard-codes one execution substrate: child
processes on this machine, driven over pipes.  This module extracts the
substrate behind a small interface so ``run_sweep`` can shard the same
grid over a fleet of TCP worker hosts without the engine, journal or
fingerprint contract changing:

* :class:`BaseExecutor` — the shared skeleton every backend inherits:
  harness counters, the pending-task queue with lowest-index-first
  dispatch and retry backoff, and the bounded retry-or-ledger policy.
* :func:`register_backend` / :func:`resolve_backend` /
  :func:`create_executor` — the registry.  Built-ins:

  ========== =========================================================
  name       substrate
  ========== =========================================================
  local      supervised child processes, platform-preferred start
             method (``fork`` where available) — the PR 5 executor
  local-fork supervised child processes, ``fork`` start method
  local-spawn supervised child processes, ``spawn`` start method
  tcp        a socket coordinator sharding points to remote worker
             hosts (:mod:`repro.sweep.coordinator`)
  ========== =========================================================

* :func:`backoff_delay` — deterministic retry backoff with optional
  jitter, forked per ``(seed, sweep, index, attempt)`` exactly like
  :class:`~repro.sweep.supervisor.ChaosSpec` draws, so retry timelines
  are reproducible at any worker or host count.
* :class:`FleetConfig` — the knobs only the ``tcp`` backend reads
  (listen address, minimum hosts, heartbeat cadence, work stealing).

Every backend upholds the same contract: point outcomes are pure
functions of ``(seed, sweep name, point index)``, so fingerprints are
bit-identical across backends, worker counts and host counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, ReproError
from repro.core.rng import RandomSource


class SweepPointError(ReproError):
    """A point exhausted its retry budget under ``strict=True``."""


class FleetError(ReproError):
    """The distributed fleet cannot make progress (no usable hosts)."""


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, after orderly teardown.

    Subclasses :class:`KeyboardInterrupt` so generic interrupt handling
    still fires; carries the partial :class:`~repro.sweep.engine.SweepResult`
    (every point completed before the interrupt, journal already flushed)
    as ``partial`` when the engine could assemble one.
    """

    def __init__(self, message: str, partial=None) -> None:
        super().__init__(message)
        self.partial = partial


@dataclass
class PointFailure:
    """One error-ledger entry: a point that exhausted its retry budget."""

    index: int
    params: Dict[str, object]
    error: str
    attempts: int

    def record(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "params": dict(self.params),
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class _Task:
    index: int
    params: Dict[str, object]
    attempt: int  # 1-based
    not_before: float = 0.0


#: Counter names every backend maintains (all also exported as
#: ``sweep.supervisor.<name>`` observability counters).  The ``tcp``
#: backend adds the fleet counters on top.
COUNTERS = (
    "dispatched", "completed", "retries", "requeued", "crashes",
    "timeouts", "errors", "failed", "workers_replaced", "resumed",
)

#: Extra counters only the distributed coordinator maintains.
FLEET_COUNTERS = ("hosts_seen", "hosts_lost", "stolen", "cancelled")


def backoff_delay(config, seed: int, sweep_name: str, index: int,
                  attempt: int) -> float:
    """The backoff before dispatching ``attempt`` of one point.

    The base schedule is the config's geometric
    :meth:`~repro.sweep.supervisor.SupervisorConfig.delay_before`;
    ``config.jitter > 0`` stretches it by up to ``jitter`` of itself,
    drawn from ``RandomSource(seed).fork(f"backoff/{sweep}/{index}/{attempt}")``
    — a pure function of the sweep seed, point and attempt, never of the
    host or worker running it, so retry timelines reproduce at any fleet
    shape.
    """
    base = config.delay_before(attempt)
    jitter = getattr(config, "jitter", 0.0)
    if base <= 0.0 or jitter <= 0.0:
        return base
    rng = RandomSource(seed).fork(f"backoff/{sweep_name}/{index}/{attempt}")
    return base * (1.0 + jitter * rng.uniform())


@dataclass
class FleetConfig:
    """Knobs for the ``tcp`` backend's coordinator.

    ``listen`` is ``host:port`` (port ``0`` binds an ephemeral port);
    ``on_listen(host, port)`` fires once the socket is bound — the CLI
    prints the address, tests use it to spawn loopback workers against
    the real port.  ``min_hosts`` hosts must be connected before any
    point is dispatched.  A host that has not been heard from for
    ``heartbeat_timeout`` seconds (default ``10 x heartbeat_interval``)
    is declared dead and its points reassigned.  ``wait_for_hosts``
    bounds how long the coordinator waits with zero usable hosts before
    raising :class:`FleetError` instead of stalling forever.
    ``auth_token`` (optional) demands a matching shared secret in every
    worker hello, compared constant-time; a mismatch is rejected with an
    explicit frame so the worker fails cleanly instead of hanging.
    """

    listen: str = "127.0.0.1:0"
    min_hosts: int = 1
    heartbeat_interval: float = 0.5
    heartbeat_timeout: Optional[float] = None
    #: Points a host may hold per slot (1 running + the rest queued
    #: host-side) — the fleet analogue of the supervisor's pipeline depth.
    host_depth: int = 2
    #: Reclaim unstarted points from loaded hosts for idle ones.
    steal: bool = True
    wait_for_hosts: float = 60.0
    auth_token: Optional[str] = None
    on_listen: Optional[Callable[[str, int], None]] = None

    def __post_init__(self) -> None:
        if self.min_hosts < 1:
            raise ConfigurationError("fleet needs min_hosts >= 1")
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be positive: {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout is not None and (
            self.heartbeat_timeout <= self.heartbeat_interval
        ):
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})"
            )
        if self.host_depth < 1:
            raise ConfigurationError(
                f"host_depth must be >= 1: {self.host_depth}"
            )
        if self.wait_for_hosts <= 0:
            raise ConfigurationError(
                f"wait_for_hosts must be positive: {self.wait_for_hosts}"
            )

    @property
    def effective_heartbeat_timeout(self) -> float:
        if self.heartbeat_timeout is not None:
            return self.heartbeat_timeout
        return 10.0 * self.heartbeat_interval


class BaseExecutor:
    """Shared skeleton of every executor backend.

    Owns the harness counters, the pending queue (lowest grid index
    first, honouring per-task retry backoff) and the bounded
    retry-or-error-ledger policy.  Subclasses implement :meth:`run` —
    the event loop that moves tasks to their substrate — and call
    :meth:`_retry_or_fail` when an attempt is lost.
    """

    def __init__(self, spec, config, metrics=None) -> None:
        self.spec = spec
        self.config = config
        self.metrics = metrics
        self.counters: Dict[str, float] = {name: 0.0 for name in COUNTERS}
        self._pending: List[_Task] = []
        self._outstanding = 0

    # -- bookkeeping ------------------------------------------------------

    def bump(self, name: str, amount: float = 1.0, **labels) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount
        if self.metrics is not None:
            self.metrics.counter(
                f"sweep.supervisor.{name}",
                "sweep supervisor harness event count",
            ).inc(amount)
            if labels:
                self.metrics.counter(
                    f"sweep.fleet.{name}",
                    "per-host sweep fleet event count",
                ).inc(amount, **labels)

    def _seed_tasks(
        self, tasks: List[Tuple[int, Dict[str, object]]]
    ) -> None:
        self._pending = [
            _Task(index=index, params=dict(params), attempt=1)
            for index, params in tasks
        ]
        self._outstanding = len(self._pending)

    def _pop_ready(self, now: float) -> Optional[_Task]:
        """The lowest-index pending task whose backoff has expired."""
        best = None
        for task in self._pending:
            if task.not_before > now:
                continue
            if best is None or task.index < best.index:
                best = task
        if best is not None:
            self._pending.remove(best)
        return best

    def _next_wake(self) -> Optional[float]:
        """Earliest ``not_before`` among pending tasks, if any."""
        if not self._pending:
            return None
        return min(task.not_before for task in self._pending)

    def _retry_or_fail(
        self,
        task: _Task,
        error: str,
        now: float,
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        """Requeue a lost attempt, or move the point to the error ledger."""
        if task.attempt <= self.config.retries:
            self.bump("retries")
            next_attempt = task.attempt + 1
            self._pending.append(
                _Task(
                    index=task.index,
                    params=task.params,
                    attempt=next_attempt,
                    not_before=now + backoff_delay(
                        self.config, self.spec.seed, self.spec.name,
                        task.index, next_attempt,
                    ),
                )
            )
            return
        self._outstanding -= 1
        self.bump("failed")
        failure = PointFailure(
            index=task.index,
            params=dict(task.params),
            error=error,
            attempts=task.attempt,
        )
        on_failure(failure)
        if strict:
            raise SweepPointError(
                f"sweep {self.spec.name!r} point {task.index} failed after "
                f"{task.attempt} attempt(s): {error}"
            )

    # -- the backend contract ---------------------------------------------

    def run(
        self,
        tasks: List[Tuple[int, Dict[str, object]]],
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool = False,
    ) -> Dict[str, float]:
        """Run every (index, params) task; returns the harness counters."""
        raise NotImplementedError


#: Backend registry: name -> factory(spec, config, **context) -> executor.
BACKENDS: Dict[str, Callable[..., BaseExecutor]] = {}

#: Names accepted by ``run_sweep(backend=...)`` and ``--backend``.
BACKEND_NAMES = ("local", "local-fork", "local-spawn", "tcp")


def register_backend(name: str):
    """Decorator registering an executor factory under ``name``."""

    def wrap(factory: Callable[..., BaseExecutor]):
        BACKENDS[name] = factory
        return factory

    return wrap


def resolve_backend(name: str) -> Callable[..., BaseExecutor]:
    """Look up a backend factory; unknown names list what is registered."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ConfigurationError(
            f"unknown sweep backend {name!r}; registered backends: {known}"
        ) from None


def create_executor(
    name: Optional[str],
    spec,
    config,
    *,
    trace_dir: Optional[str] = None,
    metrics=None,
    collect_telemetry: bool = False,
    fleet: Optional[FleetConfig] = None,
) -> BaseExecutor:
    """Instantiate the executor backend ``name`` (default ``"local"``)."""
    factory = resolve_backend(name or "local")
    return factory(
        spec, config,
        trace_dir=trace_dir, metrics=metrics,
        collect_telemetry=collect_telemetry, fleet=fleet,
    )


def _local(spec, config, start_method=None, *, trace_dir=None, metrics=None,
           collect_telemetry=False, fleet=None):
    from dataclasses import replace

    from repro.sweep.supervisor import Supervisor

    if start_method is not None and config.start_method != start_method:
        config = replace(config, start_method=start_method)
    return Supervisor(
        spec, config, trace_dir=trace_dir, metrics=metrics,
        collect_telemetry=collect_telemetry,
    )


@register_backend("local")
def _local_default(spec, config, **context):
    """The PR 5 supervised executor with the platform-preferred start method."""
    return _local(spec, config, None, **context)


@register_backend("local-fork")
def _local_fork(spec, config, **context):
    """Supervised child processes under the ``fork`` start method."""
    return _local(spec, config, "fork", **context)


@register_backend("local-spawn")
def _local_spawn(spec, config, **context):
    """Supervised child processes under the ``spawn`` start method."""
    return _local(spec, config, "spawn", **context)


@register_backend("tcp")
def _tcp(spec, config, *, trace_dir=None, metrics=None,
         collect_telemetry=False, fleet=None):
    """A socket coordinator sharding points to remote worker hosts."""
    from repro.sweep.coordinator import TcpCoordinator

    return TcpCoordinator(
        spec, config, fleet=fleet or FleetConfig(),
        trace_dir=trace_dir, metrics=metrics,
        collect_telemetry=collect_telemetry,
    )
