"""JSON persistence for sweep results.

One sweep run serialises to a single self-describing JSON document
(schema id ``repro.sweep/v1``) — the same shape the ``BENCH_*.json``
artefacts use, so a stored sweep seeds benchmark baselines directly.
Round-tripping through :func:`save_sweep`/:func:`load_sweep` preserves
every deterministic field (:meth:`~repro.sweep.engine.SweepResult.fingerprint`
is stable across the round trip).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.sweep.engine import PointResult, SweepResult

#: Schema identifier written into (and required from) every document.
SCHEMA = "repro.sweep/v1"


def sweep_document(result: SweepResult) -> dict:
    """The JSON-ready dict for one sweep result."""
    return {
        "schema": SCHEMA,
        "name": result.name,
        "target": result.target,
        "seed": result.seed,
        "workers": result.workers,
        "wall_seconds": result.wall_seconds,
        "fingerprint": result.fingerprint(),
        "points": [
            {
                "index": point.index,
                "params": point.params,
                "metrics": point.metrics,
                "counters": point.counters,
                "wall_seconds": point.wall_seconds,
            }
            for point in result.points
        ],
    }


def save_sweep(
    result: SweepResult, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the result as JSON; returns the path written."""
    output = pathlib.Path(path)
    output.write_text(json.dumps(sweep_document(result), indent=2) + "\n")
    return output


def load_sweep(path: Union[str, pathlib.Path]) -> SweepResult:
    """Rebuild a :class:`SweepResult` from a saved document.

    Raises ``ValueError`` on a missing or unknown ``schema`` field so a
    stale artefact fails loudly rather than mis-parsing.
    """
    document = json.loads(pathlib.Path(path).read_text())
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, found {schema!r}"
        )
    points = [
        PointResult(
            index=int(entry["index"]),
            params=dict(entry["params"]),
            metrics={k: float(v) for k, v in entry["metrics"].items()},
            counters={k: float(v) for k, v in entry.get("counters", {}).items()},
            wall_seconds=float(entry.get("wall_seconds", 0.0)),
        )
        for entry in document["points"]
    ]
    return SweepResult(
        name=document["name"],
        target=document["target"],
        seed=int(document["seed"]),
        workers=int(document.get("workers", 1)),
        points=points,
        wall_seconds=float(document.get("wall_seconds", 0.0)),
    )
