"""JSON persistence for sweep results.

One sweep run serialises to a single self-describing JSON document
(schema id ``repro.sweep/v1``) — the same shape the ``BENCH_*.json``
artefacts use, so a stored sweep seeds benchmark baselines directly.
Round-tripping through :func:`save_sweep`/:func:`load_sweep` preserves
every deterministic field (:meth:`~repro.sweep.engine.SweepResult.fingerprint`
is stable across the round trip).

Robustness contract:

* :func:`save_sweep` writes **atomically** (temp file in the same
  directory, then ``os.replace``) — a crash mid-write never leaves a
  truncated artefact behind;
* :func:`load_sweep` fails loudly on corrupt artefacts: malformed JSON,
  a missing required field, or a non-finite metric value all raise
  ``ValueError`` naming the path and the offending field.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Union

from repro.core.atomicio import atomic_write_text
from repro.sweep.engine import PointResult, SweepResult
from repro.sweep.supervisor import PointFailure

#: Schema identifier written into (and required from) every document.
SCHEMA = "repro.sweep/v1"

#: Fields every stored document must carry.
_REQUIRED = ("name", "target", "seed", "points")

#: Fields every stored point must carry.
_POINT_REQUIRED = ("index", "params", "metrics")


def sweep_document(result: SweepResult) -> dict:
    """The JSON-ready dict for one sweep result."""
    document = {
        "schema": SCHEMA,
        "name": result.name,
        "target": result.target,
        "seed": result.seed,
        "workers": result.workers,
        "wall_seconds": result.wall_seconds,
        "fingerprint": result.fingerprint(),
        "points": [
            {
                "index": point.index,
                "params": point.params,
                "metrics": point.metrics,
                "counters": point.counters,
                "wall_seconds": point.wall_seconds,
                **(
                    {"telemetry": point.telemetry}
                    if point.telemetry is not None
                    else {}
                ),
            }
            for point in result.points
        ],
    }
    if result.failures:
        document["failures"] = [
            failure.record() for failure in result.failures
        ]
    if result.harness:
        document["harness"] = dict(result.harness)
    if result.telemetry is not None:
        document["telemetry"] = result.telemetry
    return document


def save_sweep(
    result: SweepResult, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Atomically write the result as JSON; returns the path written."""
    return atomic_write_text(
        path, json.dumps(sweep_document(result), indent=2) + "\n"
    )


def _finite_floats(mapping, path, where: str) -> dict:
    """``{k: float(v)}`` with a named error for any non-finite value."""
    values = {}
    for key, value in mapping.items():
        try:
            number = float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"{path}: {where}[{key!r}] is not a number: {value!r}"
            ) from None
        if not math.isfinite(number):
            raise ValueError(
                f"{path}: {where}[{key!r}] is non-finite ({number!r}); "
                "artefact is corrupt or was saved from a broken run"
            )
        values[key] = number
    return values


def load_sweep(path: Union[str, pathlib.Path]) -> SweepResult:
    """Rebuild a :class:`SweepResult` from a saved document.

    Raises ``ValueError`` — always naming the path, and the field where
    one is at fault — on malformed JSON (e.g. a truncated artefact), a
    missing/unknown ``schema``, a missing required field, or a
    non-finite metric value.
    """
    source = pathlib.Path(path)
    try:
        document = json.loads(source.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(
            f"{source}: corrupt sweep artefact (invalid JSON: {error})"
        ) from None
    if not isinstance(document, dict):
        raise ValueError(
            f"{source}: expected a JSON object, found "
            f"{type(document).__name__}"
        )
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{source}: expected schema {SCHEMA!r}, found {schema!r}"
        )
    for field in _REQUIRED:
        if field not in document:
            raise ValueError(
                f"{source}: missing required field {field!r}"
            )
    points = []
    for position, entry in enumerate(document["points"]):
        if not isinstance(entry, dict):
            raise ValueError(
                f"{source}: points[{position}] is not an object"
            )
        for field in _POINT_REQUIRED:
            if field not in entry:
                raise ValueError(
                    f"{source}: points[{position}] missing required field "
                    f"{field!r}"
                )
        index = int(entry["index"])
        points.append(
            PointResult(
                index=index,
                params=dict(entry["params"]),
                metrics=_finite_floats(
                    entry["metrics"], source, f"points[{position}].metrics"
                ),
                counters=_finite_floats(
                    entry.get("counters", {}), source,
                    f"points[{position}].counters",
                ),
                wall_seconds=float(entry.get("wall_seconds", 0.0)),
                telemetry=entry.get("telemetry"),
            )
        )
    failures = []
    for position, entry in enumerate(document.get("failures", [])):
        if not isinstance(entry, dict):
            raise ValueError(
                f"{source}: failures[{position}] is not an object"
            )
        if "index" not in entry:
            raise ValueError(
                f"{source}: failures[{position}] missing required field "
                "'index'"
            )
        try:
            index = int(entry["index"])
            attempts = int(entry.get("attempts", 1))
        except (TypeError, ValueError):
            raise ValueError(
                f"{source}: failures[{position}] has a non-integer "
                "'index' or 'attempts'"
            ) from None
        failures.append(
            PointFailure(
                index=index,
                params=dict(entry.get("params", {})),
                error=str(entry.get("error", "")),
                attempts=attempts,
            )
        )
    return SweepResult(
        name=document["name"],
        target=document["target"],
        seed=int(document["seed"]),
        workers=int(document.get("workers", 1)),
        points=points,
        wall_seconds=float(document.get("wall_seconds", 0.0)),
        failures=failures,
        harness={
            k: float(v) for k, v in document.get("harness", {}).items()
        },
        telemetry=document.get("telemetry"),
    )
