"""Parallel scenario sweeps: declarative grids fanned over worker processes.

The sweep engine turns "run the congestion study at every (topology,
policy, load)" into three declarative pieces:

* :class:`~repro.sweep.grid.ParameterGrid` — the cross product of named
  axes, enumerated in a stable order (:mod:`repro.sweep.grid`),
* a registered **target** — the function one grid point runs, looked up
  by name so specs stay picklable (:mod:`repro.sweep.targets`),
* :func:`~repro.sweep.engine.run_sweep` — the ``multiprocessing`` fan-out
  with per-point telemetry capture (:mod:`repro.sweep.engine`).

Determinism is the headline contract: every point draws randomness from
``spawn(point.index)`` off the sweep seed, so the aggregated result is
bit-identical at any worker count (``SweepResult.fingerprint()`` proves
it).  Results persist as ``repro.sweep/v1`` JSON documents
(:mod:`repro.sweep.store`) and aggregate into tables via
:mod:`repro.analysis.aggregate`.

Fault tolerance rides on the same contract: the supervised executor
(:mod:`repro.sweep.supervisor`) detects crashed and hung workers,
requeues their points under a bounded retry budget, journals every
completed point to a crash-consistent JSONL file
(:mod:`repro.sweep.journal`), and resumes an interrupted sweep —
``run_sweep(spec, resume=path)`` — with a fingerprint bit-identical to
an uninterrupted run.

Distribution generalises the executor behind pluggable backends
(:mod:`repro.sweep.backends`): ``run_sweep(spec, backend="tcp",
fleet=FleetConfig(...))`` shards the grid over TCP worker hosts
(``repro sweep-worker``) with heartbeats, dead-host requeue and
work-stealing (:mod:`repro.sweep.coordinator`,
:mod:`repro.sweep.remote_worker`); killing any subset of hosts and
resuming from the merged journals
(:func:`~repro.sweep.journal.merge_journals`) still reproduces the
single-process fingerprint.

Quickstart
----------
>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     name="demo", target="fabric-congestion", seed=7,
...     grid={"topology": ["dragonfly"], "load": [0.5, 0.9], "flows": [16]},
... )
>>> result = run_sweep(spec, workers=2)   # doctest: +SKIP
"""

from repro.sweep.backends import (
    BACKEND_NAMES,
    BaseExecutor,
    FleetConfig,
    FleetError,
    backoff_delay,
    create_executor,
    register_backend,
)
from repro.sweep.engine import (
    PointResult,
    SweepResult,
    SweepSpec,
    run_sweep,
    spec_from_request,
)
from repro.sweep.grid import ParameterGrid, ScenarioPoint
from repro.sweep.journal import (
    RunJournal,
    load_journal,
    merge_journals,
    point_payload_digest,
)
from repro.sweep.remote_worker import run_worker
from repro.sweep.store import SCHEMA, load_sweep, save_sweep, sweep_document
from repro.sweep.supervisor import (
    ChaosSpec,
    PointFailure,
    SupervisorConfig,
    SweepInterrupted,
    SweepPointError,
    parse_chaos,
)
from repro.sweep.targets import (
    FABRIC_CONGESTION_VARIANTS,
    NAMED_SWEEPS,
    TARGETS,
    named_sweep,
    register_target,
    resolve_target,
)

__all__ = [
    "BACKEND_NAMES",
    "BaseExecutor",
    "ChaosSpec",
    "FABRIC_CONGESTION_VARIANTS",
    "FleetConfig",
    "FleetError",
    "NAMED_SWEEPS",
    "ParameterGrid",
    "PointFailure",
    "PointResult",
    "RunJournal",
    "SCHEMA",
    "ScenarioPoint",
    "SupervisorConfig",
    "SweepInterrupted",
    "SweepPointError",
    "SweepResult",
    "SweepSpec",
    "TARGETS",
    "backoff_delay",
    "create_executor",
    "load_journal",
    "load_sweep",
    "merge_journals",
    "named_sweep",
    "parse_chaos",
    "point_payload_digest",
    "register_backend",
    "register_target",
    "resolve_target",
    "run_sweep",
    "run_worker",
    "save_sweep",
    "spec_from_request",
    "sweep_document",
]
