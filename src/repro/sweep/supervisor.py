"""Supervised sweep execution: crash detection, timeouts, retries, chaos.

The bare pool in :mod:`repro.sweep.engine` trusts its workers: one point
that segfaults, calls ``os._exit`` or hangs forever takes the whole sweep
with it.  The supervisor replaces that trust with an explicit contract —
each worker is a long-lived child process driven over its own pipe, so
the parent always knows *which point* a worker is running and for how
long:

* a worker that **dies** (non-zero exit, ``os._exit``, SIGKILL — under
  both ``fork`` and ``spawn`` start methods) is detected as EOF on its
  pipe; the in-flight point is requeued to a replacement worker;
* a point that **hangs** past ``timeout`` gets its worker killed and
  replaced, and the point is requeued;
* every requeue consumes one unit of the point's bounded
  **retry-with-backoff** budget; an exhausted budget lands the point in
  the sweep's error ledger (:class:`PointFailure`) instead of raising —
  unless ``strict=True``, which restores fail-fast behaviour via
  :class:`SweepPointError`.

A built-in **chaos mode** (:class:`ChaosSpec`, CLI ``--chaos
crash:0.1,hang:0.05``) injects worker crashes and hangs into the harness
itself — deterministically per ``(seed, sweep, point, attempt)`` — so
recovery is provable end to end: a chaos run that completes has the same
fingerprint as a calm one.

Retry/timeout/requeue counts surface both as
``sweep.supervisor.*`` counters on an optional
:class:`~repro.observability.metrics.MetricsRegistry` and as the
``SweepResult.harness`` summary dict.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.sweep.backends import (  # re-exported for compatibility
    COUNTERS,
    BaseExecutor,
    PointFailure,
    SweepInterrupted,
    SweepPointError,
    _Task,
    backoff_delay,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "CHAOS_HOST_EXIT_CODE",
    "COUNTERS",
    "ChaosSpec",
    "PointFailure",
    "Supervisor",
    "SupervisorConfig",
    "SweepInterrupted",
    "SweepPointError",
    "backoff_delay",
    "parse_chaos",
]

#: Exit code chaos-injected crashes die with (visible in crash messages).
CHAOS_EXIT_CODE = 86

#: Exit code a chaos-injected *host* crash dies with (tcp backend).
CHAOS_HOST_EXIT_CODE = 87


@dataclass(frozen=True)
class ChaosSpec:
    """Harness-fault injection probabilities, drawn per (point, attempt).

    ``crash`` is the probability a worker ``os._exit``\\ s instead of
    running the point; ``hang`` the probability it sleeps
    ``hang_seconds`` first (long past any sane timeout).  Draws come from
    ``RandomSource(seed, name=f"chaos/{sweep}/{index}/{attempt}")`` — a
    pure function of the sweep seed, point and attempt — so chaos runs
    are reproducible and a retried attempt rolls fresh dice.

    The fleet faults only fire under the ``tcp`` backend (local workers
    have no host or network to lose) and draw from their own forks of the
    same ``(seed, sweep, index, attempt)`` tuple, so a chaos run's fault
    schedule is identical at any host count:

    * ``host_crash`` — the whole worker *host* ``os._exit``\\ s instead of
      dispatching the point (exercises dead-host detection + requeue);
    * ``drop`` — the host computes the point but never sends the result
      frame (recovered by the per-point timeout, hence requires one);
    * ``delay`` — the result frame is delayed ``delay_seconds`` before
      sending (exercises heartbeat/ordering tolerance).
    """

    crash: float = 0.0
    hang: float = 0.0
    hang_seconds: float = 3600.0
    host_crash: float = 0.0
    drop: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "host_crash", "drop", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"chaos {name} probability must be in [0, 1]: {value}"
                )
        if self.crash + self.hang > 1.0:
            raise ConfigurationError(
                "chaos crash + hang probabilities exceed 1 "
                f"({self.crash} + {self.hang})"
            )
        if self.drop + self.delay > 1.0:
            raise ConfigurationError(
                "chaos drop + delay probabilities exceed 1 "
                f"({self.drop} + {self.delay})"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"chaos delay_seconds must be >= 0: {self.delay_seconds}"
            )

    @property
    def active(self) -> bool:
        return (
            self.crash > 0.0 or self.hang > 0.0 or self.host_crash > 0.0
            or self.drop > 0.0 or self.delay > 0.0
        )

    @property
    def fleet_active(self) -> bool:
        """True when any tcp-only fault (host crash, drop, delay) is armed."""
        return self.host_crash > 0.0 or self.drop > 0.0 or self.delay > 0.0

    def draw(
        self, seed: int, sweep_name: str, index: int, attempt: int
    ) -> Optional[str]:
        """``"crash"``, ``"hang"`` or ``None`` for this (point, attempt)."""
        rng = RandomSource(seed).fork(
            f"chaos/{sweep_name}/{index}/{attempt}"
        )
        roll = rng.uniform()
        if roll < self.crash:
            return "crash"
        if roll < self.crash + self.hang:
            return "hang"
        return None

    def draw_host(
        self, seed: int, sweep_name: str, index: int, attempt: int
    ) -> Optional[str]:
        """``"crash"`` (whole host dies) or ``None`` for this attempt."""
        if self.host_crash <= 0.0:
            return None
        rng = RandomSource(seed).fork(
            f"chaos-host/{sweep_name}/{index}/{attempt}"
        )
        return "crash" if rng.uniform() < self.host_crash else None

    def draw_net(
        self, seed: int, sweep_name: str, index: int, attempt: int
    ) -> Optional[str]:
        """``"drop"``, ``"delay"`` or ``None`` for this result frame."""
        if self.drop <= 0.0 and self.delay <= 0.0:
            return None
        rng = RandomSource(seed).fork(
            f"chaos-net/{sweep_name}/{index}/{attempt}"
        )
        roll = rng.uniform()
        if roll < self.drop:
            return "drop"
        if roll < self.drop + self.delay:
            return "delay"
        return None

    def to_wire(self) -> Dict[str, float]:
        """JSON-ready form for the coordinator's welcome frame."""
        return {
            "crash": self.crash, "hang": self.hang,
            "hang_seconds": self.hang_seconds,
            "host_crash": self.host_crash,
            "drop": self.drop, "delay": self.delay,
            "delay_seconds": self.delay_seconds,
        }


#: CLI clause name -> ChaosSpec field; starred fields are probabilities.
_CHAOS_CLAUSES = {
    "crash": "crash",
    "hang": "hang",
    "hang-seconds": "hang_seconds",
    "host-crash": "host_crash",
    "drop": "drop",
    "delay": "delay",
    "delay-seconds": "delay_seconds",
}


def parse_chaos(text: str) -> ChaosSpec:
    """Parse ``crash:0.1,hang:0.05,host-crash:0.1,drop:0.05,delay:0.1``."""
    values: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, separator, raw = part.partition(":")
        name = name.strip()
        if not separator or name not in _CHAOS_CLAUSES:
            known = ", ".join(f"{clause}:<p>" for clause in _CHAOS_CLAUSES)
            raise ConfigurationError(
                f"bad chaos clause {part!r}; expected clauses from: {known}"
            )
        try:
            values[_CHAOS_CLAUSES[name]] = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"bad chaos probability in {part!r}"
            ) from None
    if not values:
        raise ConfigurationError(f"empty chaos spec {text!r}")
    return ChaosSpec(**values)


@dataclass
class SupervisorConfig:
    """Fault-tolerance policy for one supervised sweep run."""

    workers: int = 1
    #: Per-point wall-clock budget in seconds; ``None`` disables the kill.
    timeout: Optional[float] = None
    #: How many times a failed point is re-dispatched before the ledger.
    retries: int = 2
    #: First retry delay; each further retry multiplies by ``backoff_factor``.
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Deterministic backoff jitter: each retry delay is stretched by up
    #: to this fraction of itself, drawn per ``(seed, sweep, index,
    #: attempt)`` (see :func:`repro.sweep.backends.backoff_delay`) so
    #: retry timelines decorrelate without losing reproducibility.
    jitter: float = 0.0
    chaos: Optional[ChaosSpec] = None
    #: ``fork``/``spawn``/``forkserver``; ``None`` prefers ``fork``.
    start_method: Optional[str] = None
    #: Points a worker may hold at once (1 running + the rest queued in
    #: its pipe).  Depth 2 hides the parent's scheduling latency — the
    #: worker starts its next point the instant it sends a result —
    #: without loosening the accounting: the parent still knows exactly
    #: which points each worker holds.
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("supervisor needs workers >= 1")
        if self.pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline_depth must be >= 1: {self.pipeline_depth}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"per-point timeout must be positive: {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0: {self.retries}")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "need backoff >= 0 and backoff_factor >= 1"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0: {self.jitter}")
        if (
            self.chaos is not None
            and self.chaos.hang > 0
            and self.timeout is None
        ):
            raise ConfigurationError(
                "chaos hang injection needs a per-point timeout, or hung "
                "workers would stall the sweep forever"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff before dispatching ``attempt`` (attempts are 1-based)."""
        if attempt <= 1:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 2)


def _supervised_worker(conn, common: Tuple) -> None:
    """Child body: recv a job, run it, send the outcome; repeat until None.

    Module-level (and fed only picklable state) so it works under both
    ``fork`` and ``spawn`` start methods.
    """
    from repro.sweep.engine import _run_point

    target_name, sweep_name, seed, trace_dir, chaos, collect_telemetry = common
    try:
        # Ready handshake: interpreter boot + imports are done (the bulk
        # of spawn-method startup).  The parent starts the first point's
        # timeout clock on this sentinel, not at dispatch, so startup
        # latency can never masquerade as a point timeout.
        conn.send(("ready", -1, 0, None))
    except (BrokenPipeError, EOFError, OSError):
        return
    parent = multiprocessing.parent_process()
    watched = [conn] if parent is None else [conn, parent.sentinel]
    while True:
        try:
            # Wait on the parent's sentinel too: a SIGKILLed parent can
            # never close our pipe (under fork this child inherited the
            # parent-side fd as well), so EOF alone would leave orphaned
            # workers blocked in recv() forever.
            ready = connection.wait(watched)
            if conn not in ready:
                break
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        index, params, attempt = job
        if chaos is not None:
            action = chaos.draw(seed, sweep_name, index, attempt)
            if action == "crash":
                os._exit(CHAOS_EXIT_CODE)
            elif action == "hang":
                time.sleep(chaos.hang_seconds)
        try:
            result = _run_point(
                (target_name, sweep_name, seed, index, params, trace_dir,
                 collect_telemetry)
            )
            message = ("ok", index, attempt, result)
        except KeyboardInterrupt:
            break
        except BaseException as error:
            message = (
                "error", index, attempt,
                f"{type(error).__name__}: {error}",
            )
        try:
            conn.send(message)
        except (BrokenPipeError, EOFError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - teardown race
        pass


@dataclass
class _Worker:
    process: multiprocessing.Process
    conn: connection.Connection
    #: FIFO of points this worker holds: ``tasks[0]`` is running (its
    #: clock is ``deadline``); the rest sit unstarted in the pipe.
    tasks: List[_Task] = field(default_factory=list)
    deadline: Optional[float] = None
    #: True once the child's ready handshake arrived; until then no
    #: deadline runs, so startup latency is never billed to a point.
    ready: bool = False


class Supervisor(BaseExecutor):
    """Drives one sweep's points through supervised worker processes."""

    def __init__(
        self,
        spec,
        config: SupervisorConfig,
        trace_dir: Optional[str] = None,
        metrics=None,
        collect_telemetry: bool = False,
    ) -> None:
        super().__init__(spec, config, metrics=metrics)
        self.trace_dir = trace_dir
        self.collect_telemetry = collect_telemetry
        if config.start_method is not None:
            self._context = multiprocessing.get_context(config.start_method)
        else:
            from repro.sweep.engine import _pool_context

            self._context = _pool_context()
        self._common = (
            spec.target, spec.name, spec.seed, trace_dir, config.chaos,
            collect_telemetry,
        )
        self._workers: List[_Worker] = []

    # -- bookkeeping ------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_supervised_worker,
            args=(child_conn, self._common),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        self._workers.append(worker)
        return worker

    def _discard_worker(self, worker: _Worker) -> None:
        """Kill and reap one worker; its pipe is closed and it leaves the pool."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        if worker in self._workers:
            self._workers.remove(worker)

    def _handle_loss(
        self,
        worker: _Worker,
        error: str,
        kind: str,
        now: float,
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        """A worker died or was killed mid-point: requeue and replace."""
        running = worker.tasks[0] if worker.tasks else None
        queued = worker.tasks[1:]
        self.bump(kind)
        self._discard_worker(worker)
        if running is not None:
            self.bump("requeued")
            self._retry_or_fail(running, error, now, on_failure, strict)
        # Queued points never started, so they go back untouched — the
        # loss consumes no part of their retry budget.
        self._pending.extend(queued)
        # Replace the worker only if there is (or will be) work to run.
        if self._pending and len(self._workers) < self.config.workers:
            self.bump("workers_replaced")
            self._spawn_worker()

    # -- the event loop ---------------------------------------------------

    def run(
        self,
        tasks: List[Tuple[int, Dict[str, object]]],
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool = False,
    ) -> Dict[str, float]:
        """Run every (index, params) task; returns the harness counters.

        ``on_result(point_result, attempts)`` fires as points complete
        (completion order, not grid order); ``on_failure(point_failure)``
        fires when a point exhausts its retry budget.
        """
        self._seed_tasks(tasks)
        if not self._pending:
            return dict(self.counters)
        pool_size = min(self.config.workers, len(self._pending))
        try:
            for _ in range(pool_size):
                self._spawn_worker()
            while self._outstanding > 0:
                self._step(on_result, on_failure, strict)
        except KeyboardInterrupt:
            raise SweepInterrupted(
                f"sweep {self.spec.name!r} interrupted; "
                f"{self._outstanding} point(s) unfinished"
            ) from None
        finally:
            self._shutdown()
        return dict(self.counters)

    def _dispatch_ready(self, now, on_failure, strict) -> None:
        # Breadth-first: top every worker up to one task before any
        # worker gets its pipelined second, so early points spread out.
        for depth in range(1, self.config.pipeline_depth + 1):
            for worker in list(self._workers):
                if len(worker.tasks) >= depth:
                    continue
                task = self._pop_ready(now)
                if task is None:
                    return
                try:
                    worker.conn.send((task.index, task.params, task.attempt))
                except (BrokenPipeError, OSError):
                    # Worker died before this task reached it; the task
                    # goes back untouched (no attempt consumed) and the
                    # death is handled like any other crash.
                    self._pending.append(task)
                    self._handle_loss(
                        worker, "WorkerCrash: worker process died",
                        "crashes", now, on_failure, strict,
                    )
                    continue
                if not worker.tasks:
                    # A not-yet-ready worker is still booting; its first
                    # point's clock starts when the handshake arrives.
                    worker.deadline = (
                        now + self.config.timeout
                        if worker.ready and self.config.timeout is not None
                        else None
                    )
                worker.tasks.append(task)
                self.bump("dispatched")

    def _step(
        self,
        on_result: Callable[[object, int], None],
        on_failure: Callable[[PointFailure], None],
        strict: bool,
    ) -> None:
        now = time.monotonic()
        # 1. Kill anything past its per-point deadline.
        timeout_s = self.config.timeout
        for worker in list(self._workers):
            if worker.deadline is not None and now >= worker.deadline:
                self._handle_loss(
                    worker,
                    f"TimeoutError: point exceeded {timeout_s:g}s wall-clock "
                    "budget",
                    "timeouts", now, on_failure, strict,
                )
        # 2. Hand work to idle workers (respecting retry backoff).
        self._dispatch_ready(now, on_failure, strict)
        busy = [w for w in self._workers if w.tasks]
        if not busy:
            if self._pending:
                wake = min(task.not_before for task in self._pending)
                time.sleep(max(0.0, min(wake - now, 0.1)))
            return
        # 3. Sleep until a message, a death, a deadline or a backoff expiry.
        horizons = [w.deadline for w in busy if w.deadline is not None]
        spare_depth = any(
            len(w.tasks) < self.config.pipeline_depth for w in self._workers
        )
        if self._pending and spare_depth:
            horizons.append(min(task.not_before for task in self._pending))
        wait_timeout = (
            max(0.0, min(horizons) - now) if horizons else None
        )
        by_conn = {worker.conn: worker for worker in busy}
        ready = connection.wait(list(by_conn), timeout=wait_timeout)
        now = time.monotonic()
        for conn in ready:
            worker = by_conn[conn]
            if worker not in self._workers:
                continue  # already reaped by an earlier event this step
            try:
                message = conn.recv()
            except (EOFError, OSError):
                worker.process.join(timeout=5.0)
                code = worker.process.exitcode
                self._handle_loss(
                    worker,
                    f"WorkerCrash: worker process died (exit code {code})",
                    "crashes", now, on_failure, strict,
                )
                continue
            kind, _index, attempt, payload = message
            if kind == "ready":
                worker.ready = True
                if worker.tasks and self.config.timeout is not None:
                    worker.deadline = now + self.config.timeout
                continue
            task = worker.tasks.pop(0)
            # The pipelined next task (if any) started the moment the
            # worker sent this result; its clock starts now.
            worker.deadline = (
                now + self.config.timeout
                if worker.tasks and self.config.timeout is not None
                else None
            )
            if kind == "ok":
                self.bump("completed")
                self._outstanding -= 1
                on_result(payload, attempt)
            else:
                self.bump("errors")
                self._retry_or_fail(task, payload, now, on_failure, strict)

    def _shutdown(self) -> None:
        for worker in list(self._workers):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self._workers):
            worker.process.join(timeout=1.0)
            self._discard_worker(worker)
