"""The fault injector: plays a campaign timeline on the DES kernel.

:class:`FaultInjector` expands a :class:`~repro.resilience.faults.FaultCampaign`
into concrete events and schedules them on a shared
:class:`~repro.core.events.Simulation`. Fault arrivals are scheduled as
*daemon* events — a campaign whose horizon outlives the workload must never
keep a drained simulation alive — while each applied fault's repair is a
regular event: recovery is pending work that queued jobs may be waiting on,
so the run cannot end in the middle of an outage.

Subsystems subscribe with :meth:`FaultInjector.on`; the binding helpers in
:mod:`repro.resilience.recovery` wire the standard cluster/metascheduler
reactions so most callers never register handlers by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.events import Simulation
from repro.core.rng import RandomSource
from repro.observability.probes import CATEGORY_FAULT, Telemetry
from repro.resilience.faults import FaultCampaign, FaultEvent, FaultKind

#: A fault handler: receives the event and whether this call is the repair
#: (``True``) or the fault itself (``False``).
FaultHandler = Callable[[FaultEvent, bool], None]


class FaultInjector:
    """Schedules a campaign's fault and repair events on a simulation.

    Parameters
    ----------
    simulation:
        The shared DES kernel the workload runs on.
    campaign:
        The declarative fault schedule.
    rng:
        Seed-stable source the timeline is drawn from (fork it from the
        run seed; see :meth:`FaultCampaign.timeline`).
    telemetry:
        Optional :class:`~repro.observability.probes.Telemetry`: faults
        bump ``resilience.faults.injected`` / ``.repaired`` counters
        (labelled by kind) and leave instant markers on the trace.
    links:
        Link population for campaigns with link flaps.
    timeline:
        A pre-expanded timeline to replay instead of drawing one — used
        to hold faults identical across a parameter grid (common random
        numbers).
    """

    def __init__(
        self,
        simulation: Simulation,
        campaign: FaultCampaign,
        rng: RandomSource,
        telemetry: Optional[Telemetry] = None,
        links: Optional[Sequence[Tuple[str, str]]] = None,
        timeline: Optional[List[FaultEvent]] = None,
    ) -> None:
        self.simulation = simulation
        self.campaign = campaign
        self.telemetry = telemetry
        self.timeline: List[FaultEvent] = (
            list(timeline) if timeline is not None
            else campaign.timeline(rng, links=links)
        )
        self._handlers: Dict[FaultKind, List[FaultHandler]] = {
            kind: [] for kind in FaultKind
        }
        self.injected = 0
        self.repaired = 0
        self._installed = False

    def on(self, kind: FaultKind, handler: FaultHandler) -> None:
        """Subscribe ``handler`` to faults (and repairs) of ``kind``."""
        self._handlers[kind].append(handler)

    def install(self) -> int:
        """Schedule every timeline event; returns how many were scheduled.

        Call once, after all handlers are bound and before
        ``simulation.run()``. Events before the current clock are skipped
        (installing mid-run replays only the future).
        """
        if self._installed:
            return 0
        self._installed = True
        scheduled = 0
        now = self.simulation.now
        for event in self.timeline:
            if event.time < now:
                continue
            self.simulation.schedule_at(
                event.time, self._make_firer(event), daemon=True
            )
            scheduled += 1
        return scheduled

    def _make_firer(self, event: FaultEvent) -> Callable[[], None]:
        def fire() -> None:
            self._fire(event)

        return fire

    def _fire(self, event: FaultEvent) -> None:
        self.injected += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "resilience.faults.injected", "faults applied by the injector"
            ).inc(kind=event.kind.value)
            self.telemetry.tracer.instant(
                f"fault:{event.kind.value}", CATEGORY_FAULT,
                self.simulation.now, target=event.target,
                duration=event.duration,
            )
        for handler in self._handlers[event.kind]:
            handler(event, False)
        # Repair is real pending work (queued jobs may be waiting on it),
        # so it is a non-daemon event and keeps the simulation alive.
        self.simulation.schedule(event.duration, lambda: self._repair(event))

    def _repair(self, event: FaultEvent) -> None:
        self.repaired += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "resilience.faults.repaired", "faults repaired"
            ).inc(kind=event.kind.value)
            self.telemetry.tracer.instant(
                f"repair:{event.kind.value}", CATEGORY_FAULT,
                self.simulation.now, target=event.target,
            )
        for handler in self._handlers[event.kind]:
            handler(event, True)
