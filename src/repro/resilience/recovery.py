"""Recovery machinery: live checkpoint-restart and standard fault bindings.

:class:`CheckpointPlan` is the *live* counterpart of the analytical
:class:`~repro.scheduling.checkpointing.CheckpointedExecution`: instead of
a closed-form expected time it gives the cluster simulator the arithmetic
it needs per attempt — how long an attempt takes including checkpoint
writes, and how much progress survives a kill. The same
:class:`~repro.scheduling.checkpointing.CheckpointTarget` presets
(parallel filesystem, local SSD, fabric-attached persistent memory) feed
both models via :meth:`CheckpointPlan.from_target`, so simulated and
analytical results are directly comparable.

The ``bind_*`` helpers wire a :class:`~repro.resilience.injector.FaultInjector`
to the standard subsystem reactions (node faults -> cluster kill/repair,
site outages -> metascheduler failover) with duck-typed callbacks, keeping
the import graph acyclic: the scheduling layer never imports resilience.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.errors import ConfigurationError
from repro.resilience.faults import FaultEvent, FaultKind
from repro.resilience.injector import FaultInjector
from repro.scheduling.checkpointing import (
    CheckpointTarget,
    FailureModel,
    young_daly_interval,
)


@dataclass(frozen=True)
class CheckpointPlan:
    """Periodic checkpointing as executed (not just expected).

    Attributes
    ----------
    interval:
        Useful work between checkpoints, seconds.
    cost:
        Time to write one checkpoint, seconds.
    restart_time:
        Overhead prepended to every post-failure attempt (relaunch plus
        checkpoint reload).
    """

    interval: float
    cost: float
    restart_time: float = 120.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.cost < 0 or self.restart_time < 0:
            raise ConfigurationError("cost and restart_time must be non-negative")

    @classmethod
    def from_target(
        cls,
        target: CheckpointTarget,
        bytes_per_node: float,
        failures: FailureModel,
        interval: float = 0.0,
        restart_time: float = 120.0,
    ) -> "CheckpointPlan":
        """Build a plan for a checkpoint target under a failure model.

        ``interval`` of 0 picks the Young/Daly optimum for the target's
        checkpoint cost. Targets that do not survive node loss pay the
        same tripled restart as the analytical model (fall back to an
        older global checkpoint).
        """
        cost = target.checkpoint_time(bytes_per_node)
        if interval <= 0:
            interval = young_daly_interval(failures.system_mtbf, cost)
        restart = restart_time if target.survives_node_loss else 3.0 * restart_time
        return cls(interval=interval, cost=cost, restart_time=restart)

    def checkpoints_for(self, work: float) -> int:
        """Checkpoints written during ``work`` seconds of compute.

        One per full interval; the final partial segment does not
        checkpoint (the job ends instead).
        """
        if work <= 0:
            return 0
        return max(0, math.ceil(work / self.interval) - 1)

    def attempt_runtime(self, work: float) -> float:
        """Wall-clock of a failure-free attempt over ``work`` seconds of
        compute, including checkpoint writes (restart overhead excluded —
        the cluster adds it for post-failure attempts only)."""
        if work < 0:
            raise ValueError("work must be non-negative")
        return work + self.checkpoints_for(work) * self.cost

    def saved_work(self, elapsed: float, restart_overhead: float = 0.0) -> float:
        """Progress durably saved after ``elapsed`` seconds of an attempt.

        The attempt spends ``restart_overhead`` first, then alternates
        ``interval`` of work with ``cost`` of checkpoint write; only fully
        written checkpoints count.
        """
        progress_time = elapsed - restart_overhead
        if progress_time <= 0:
            return 0.0
        return math.floor(progress_time / (self.interval + self.cost)) * self.interval


def bind_cluster(injector: FaultInjector, cluster) -> None:
    """Route NODE faults at the cluster's site to kill/repair reactions.

    ``cluster`` duck-types :class:`~repro.scheduling.cluster.ClusterSimulator`:
    it needs ``site.name``, ``fail_node()`` and ``repair_node()``.
    """
    site_name = cluster.site.name

    def react(event: FaultEvent, repaired: bool) -> None:
        if event.target != site_name:
            return
        if repaired:
            cluster.repair_node()
        else:
            cluster.fail_node()

    injector.on(FaultKind.NODE, react)


def bind_metascheduler(injector: FaultInjector, scheduler) -> None:
    """Route SITE outages to metascheduler failover/restore.

    ``scheduler`` duck-types :class:`~repro.scheduling.metascheduler.MetaScheduler`:
    it needs ``fail_site(name)`` and ``restore_site(name)``. NODE faults
    inside one pool are bound separately with :func:`bind_cluster` against
    the pool of interest.
    """

    def react(event: FaultEvent, repaired: bool) -> None:
        if repaired:
            scheduler.restore_site(event.target)
        else:
            scheduler.fail_site(event.target)

    injector.on(FaultKind.SITE, react)


def link_events_from_timeline(timeline: List[FaultEvent]):
    """Convert a timeline's LINK faults into fabric ``LinkEvent`` pairs.

    Each flap becomes a down event at its time and an up event after its
    repair duration, ready to pass to
    :meth:`~repro.interconnect.fabric.FabricSimulator.run` as
    ``link_events=``.
    """
    from repro.interconnect.fabric import LinkEvent

    events = []
    for fault in timeline:
        if fault.kind is not FaultKind.LINK:
            continue
        link = fault.link
        events.append(LinkEvent(time=fault.time, link=link, up=False))
        events.append(LinkEvent(time=fault.time + fault.duration, link=link, up=True))
    events.sort(key=lambda e: e.time)
    return events
