"""Dynamic fault injection and recovery for the live simulation.

The paper's exascale argument (§III.C) is a resilience argument: systems
survive hours-scale MTBF only by checkpointing into a persistence tier and
reacting to failures as they happen. This package makes failures *dynamic*
— a :class:`FaultCampaign` schedules node deaths, link flaps and site
outages on the shared DES kernel via a :class:`FaultInjector`, and every
affected layer reacts: the cluster kills and requeues jobs under a
:class:`RetryPolicy` (optionally resuming from checkpoints per a
:class:`CheckpointPlan`), the fabric reroutes or drops in-flight transfers,
and the metascheduler fails whole sites over to survivors.

Outcomes — goodput vs. raw utilisation, wasted work, MTTI, recovery
latency, retry histograms — flow through the observability layer and
:func:`cluster_report`.
"""

from repro.resilience.faults import (
    FailureProcess,
    FaultCampaign,
    FaultEvent,
    FaultKind,
    LinkFlapSpec,
    NodeFaultSpec,
    SiteOutageSpec,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.memerrors import (
    CHIPKILL,
    ECC_NONE,
    ECC_POLICIES,
    NO_SCRUB,
    SEC_DED,
    EccPolicy,
    MemoryErrorCampaign,
    MemoryErrorSpec,
    MemoryErrorStats,
    MemoryUpset,
    ScrubPolicy,
    bind_memory,
    due_rate,
    ecc_policy,
    effective_mtbf,
    expand_spec,
    memory_failure_model,
    outcome_fractions,
)
from repro.resilience.metrics import (
    ResilienceReport,
    check_conservation,
    cluster_report,
    conservation,
)
from repro.resilience.recovery import (
    CheckpointPlan,
    bind_cluster,
    bind_metascheduler,
    link_events_from_timeline,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FaultCampaign",
    "FaultEvent",
    "FaultKind",
    "FailureProcess",
    "NodeFaultSpec",
    "LinkFlapSpec",
    "SiteOutageSpec",
    "FaultInjector",
    "CHIPKILL",
    "ECC_NONE",
    "ECC_POLICIES",
    "NO_SCRUB",
    "SEC_DED",
    "EccPolicy",
    "MemoryErrorCampaign",
    "MemoryErrorSpec",
    "MemoryErrorStats",
    "MemoryUpset",
    "ScrubPolicy",
    "bind_memory",
    "due_rate",
    "ecc_policy",
    "effective_mtbf",
    "expand_spec",
    "memory_failure_model",
    "outcome_fractions",
    "RetryPolicy",
    "CheckpointPlan",
    "bind_cluster",
    "bind_metascheduler",
    "link_events_from_timeline",
    "ResilienceReport",
    "conservation",
    "check_conservation",
    "cluster_report",
]
