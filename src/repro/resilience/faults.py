"""Declarative fault campaigns: who fails, when, and for how long.

A :class:`FaultCampaign` is a pure description — node failures, link flaps
and site outages over a time horizon — that expands into a concrete,
sorted :class:`FaultEvent` timeline with :meth:`FaultCampaign.timeline`.
The expansion draws only from named forks of the :class:`RandomSource` it
is given, so the same ``(seed, campaign)`` pair always yields bit-identical
timelines regardless of which process or sweep worker performs the draw —
the same contract the sweep engine guarantees for scenario points.

Arrival processes are exponential (memoryless, the classical MTBF model)
or Weibull (``shape < 1`` captures infant mortality / hazard decreasing
with uptime, ``shape > 1`` wear-out), parameterised by their *mean* so an
MTBF measured on a real system can be pasted in directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource

#: Separator joining the two endpoints of a link into a FaultEvent target.
#: Node names ("s3", "t17") never contain it.
LINK_SEPARATOR = "~"


class FaultKind(Enum):
    """What kind of component a fault takes down."""

    NODE = "node"
    LINK = "link"
    SITE = "site"
    #: A memory upset (see :mod:`repro.resilience.memerrors`); the target
    #: is a region label and the event carries its ECC classification.
    MEMORY = "memory"


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault: ``target`` goes down at ``time`` for ``duration``.

    ``target`` is a site name for NODE faults (the injector picks the
    victim node inside that site's pool), ``"u~v"`` for LINK faults (see
    :data:`LINK_SEPARATOR`), and a site name for SITE outages.
    """

    time: float
    kind: FaultKind
    target: str
    duration: float

    @property
    def link(self) -> Tuple[str, str]:
        """The ``(u, v)`` endpoints of a LINK fault's target."""
        if self.kind is not FaultKind.LINK:
            raise ValueError(f"{self.kind.value} fault has no link endpoints")
        u, _, v = self.target.partition(LINK_SEPARATOR)
        return (u, v)


@dataclass(frozen=True)
class FailureProcess:
    """A renewal process of failures with the given mean interarrival time.

    ``shape == 1`` (default) is exponential; any other shape is Weibull
    with the scale chosen so the mean stays ``mtbf``.
    """

    mtbf: float
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ConfigurationError(f"mtbf must be positive, got {self.mtbf}")
        if self.shape <= 0:
            raise ConfigurationError(f"shape must be positive, got {self.shape}")

    def draw(self, rng: RandomSource) -> float:
        """One interarrival time."""
        if self.shape == 1.0:
            return rng.exponential(self.mtbf)
        scale = self.mtbf / math.gamma(1.0 + 1.0 / self.shape)
        return float(scale * rng.numpy.weibull(self.shape))


@dataclass(frozen=True)
class NodeFaultSpec:
    """Node failures at ``site``: a renewal process of single-node deaths.

    ``process.mtbf`` is the *aggregate* rate at the site (system MTBF =
    node MTBF / node count, per :class:`~repro.scheduling.checkpointing.FailureModel`).
    Each failure takes one node out for ``repair_time`` seconds.
    """

    site: str
    process: FailureProcess
    repair_time: float = 300.0

    def __post_init__(self) -> None:
        if self.repair_time < 0:
            raise ConfigurationError("repair_time must be non-negative")


@dataclass(frozen=True)
class LinkFlapSpec:
    """Fabric link flaps: each arrival downs one random switch link.

    The link population comes from the ``links`` argument of
    :meth:`FaultCampaign.timeline` (typically the switch-to-switch edges
    of the topology under test); each flap lasts ``repair_time`` seconds.
    """

    process: FailureProcess
    repair_time: float = 60.0

    def __post_init__(self) -> None:
        if self.repair_time < 0:
            raise ConfigurationError("repair_time must be non-negative")


@dataclass(frozen=True)
class SiteOutageSpec:
    """A whole-site outage, either scheduled (``at``) or stochastic.

    Exactly one of ``at`` (a deterministic outage instant) or ``process``
    (a renewal process of outages) must be set.
    """

    site: str
    duration: float = 3_600.0
    at: Optional[float] = None
    process: Optional[FailureProcess] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if (self.at is None) == (self.process is None):
            raise ConfigurationError(
                "exactly one of at= or process= must be given"
            )
        if self.at is not None and self.at < 0:
            raise ConfigurationError("at must be non-negative")


@dataclass(frozen=True)
class FaultCampaign:
    """A declarative fault schedule over ``[0, horizon]``.

    ``timeline(rng)`` expands the specs into sorted :class:`FaultEvent`
    objects. Each spec draws from its own named fork of ``rng``
    (``node/<i>``, ``link/<i>``, ``site/<i>``), so adding a spec never
    perturbs the timelines of the others.
    """

    horizon: float
    node_faults: Tuple[NodeFaultSpec, ...] = field(default_factory=tuple)
    link_flaps: Tuple[LinkFlapSpec, ...] = field(default_factory=tuple)
    site_outages: Tuple[SiteOutageSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        # Accept lists in the constructor but store hashable tuples.
        object.__setattr__(self, "node_faults", tuple(self.node_faults))
        object.__setattr__(self, "link_flaps", tuple(self.link_flaps))
        object.__setattr__(self, "site_outages", tuple(self.site_outages))

    def timeline(
        self,
        rng: RandomSource,
        links: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> List[FaultEvent]:
        """Expand the campaign into a sorted fault-event timeline.

        ``links`` is the link population flaps pick victims from; it is
        required iff the campaign has link flaps.
        """
        if self.link_flaps and not links:
            raise ConfigurationError(
                "campaign has link flaps but no links= population was given"
            )
        events: List[FaultEvent] = []
        for index, spec in enumerate(self.node_faults):
            fork = rng.fork(f"node/{index}")
            clock = spec.process.draw(fork)
            while clock <= self.horizon:
                events.append(
                    FaultEvent(clock, FaultKind.NODE, spec.site, spec.repair_time)
                )
                clock += spec.process.draw(fork)
        for index, spec in enumerate(self.link_flaps):
            fork = rng.fork(f"link/{index}")
            clock = spec.process.draw(fork)
            while clock <= self.horizon:
                u, v = fork.choice(list(links))
                events.append(
                    FaultEvent(
                        clock, FaultKind.LINK,
                        f"{u}{LINK_SEPARATOR}{v}", spec.repair_time,
                    )
                )
                clock += spec.process.draw(fork)
        for index, spec in enumerate(self.site_outages):
            if spec.at is not None:
                if spec.at <= self.horizon:
                    events.append(
                        FaultEvent(spec.at, FaultKind.SITE, spec.site, spec.duration)
                    )
                continue
            fork = rng.fork(f"site/{index}")
            clock = spec.process.draw(fork)
            while clock <= self.horizon:
                events.append(
                    FaultEvent(clock, FaultKind.SITE, spec.site, spec.duration)
                )
                # Outages cannot overlap themselves: the next draw starts
                # after the site is back.
                clock += spec.duration + spec.process.draw(fork)
        events.sort(key=lambda e: e.time)  # stable: spec order breaks ties
        return events
