"""Retry policies: bounded retries with exponential backoff and jitter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff.

    A job's ``n``-th restart (``n`` counted from 0) is delayed by::

        min(base_delay * multiplier**n, max_delay) * (1 + jitter * U(-1, 1))

    After ``max_retries`` failed attempts have been retried, the next
    failure declares the job dead (it lands on the cluster's dead-job
    ledger instead of the queue).

    ``jitter`` is the half-width of the uniform perturbation; 0 disables
    it, in which case no :class:`RandomSource` is consumed and backoff is
    a pure function of the attempt number.
    """

    max_retries: int = 3
    base_delay: float = 10.0
    multiplier: float = 2.0
    max_delay: float = 3_600.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, rng: Optional[RandomSource] = None) -> float:
        """Delay before restart number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return delay
