"""Resilience outcome metrics: goodput, waste, MTTI, retry histograms.

Definitions (documented once, used by tests, profiles and the CLI):

goodput
    Useful device-seconds over ``nominal_capacity * makespan``. *Useful*
    counts each completed job's intrinsic work exactly once — checkpoint
    writes, restart overheads and rolled-back progress are excluded — so
    goodput <= utilization always, with equality only on a fault-free run
    without checkpointing.
wasted work
    Device-seconds burned on killed attempts beyond what a checkpoint
    saved: lost compute, partial checkpoint writes and restart overheads.
MTTI (mean time to interrupt)
    Makespan over the number of job kills; ``inf`` on a fault-free run.
conservation
    ``submitted == completed + dead + in_flight`` at every instant, where
    in-flight spans queued, running and scheduled-to-requeue jobs. The
    cluster tracks each term structurally, so the check is an identity
    over independent counters, not a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.errors import SimulationError


@dataclass(frozen=True)
class ResilienceReport:
    """Headline resilience numbers for one cluster run."""

    submitted: int
    completed: int
    dead: int
    kills: int
    retries: int
    goodput: float
    utilization: float
    useful_device_seconds: float
    wasted_device_seconds: float
    makespan: float
    mtti: float
    retry_histogram: Dict[int, int] = field(default_factory=dict)


def conservation(cluster) -> Dict[str, int]:
    """The conservation tally for a cluster (see module docstring).

    ``cluster`` duck-types :class:`~repro.scheduling.cluster.ClusterSimulator`
    with the resilience extensions (``dead_jobs``, ``pending_requeues``).
    """
    submitted = len(cluster.records) + len(cluster.evacuated_records)
    completed = sum(1 for r in cluster.records if r.finish_time is not None)
    dead = len(cluster.dead_jobs)
    in_flight = (
        cluster.queue_depth + len(cluster._running) + cluster.pending_requeues
    )
    return {
        "submitted": submitted,
        "completed": completed,
        "dead": dead,
        "in_flight": in_flight,
        "evacuated": len(cluster.evacuated_records),
    }


def check_conservation(cluster) -> Dict[str, int]:
    """Assert submitted = completed + dead + in-flight (+ evacuated).

    Returns the tally; raises :class:`SimulationError` on violation.
    """
    tally = conservation(cluster)
    balance = (
        tally["completed"] + tally["dead"] + tally["in_flight"]
        + tally["evacuated"]
    )
    if balance != tally["submitted"]:
        raise SimulationError(
            f"job conservation violated on {cluster.site.name}: "
            f"submitted={tally['submitted']} but completed+dead+in_flight"
            f"+evacuated={balance} ({tally})"
        )
    return tally


def cluster_report(cluster) -> ResilienceReport:
    """Build a :class:`ResilienceReport` from a finished cluster run."""
    tally = check_conservation(cluster)
    makespan = cluster.makespan()
    nominal = cluster.nominal_capacity
    goodput = (
        cluster.useful_device_seconds / (nominal * makespan)
        if makespan > 0 else 0.0
    )
    kills = len(cluster.kill_times)
    histogram: Dict[int, int] = {}
    for record in cluster.records:
        if record.finish_time is None and not record.dead:
            continue
        histogram[record.retries] = histogram.get(record.retries, 0) + 1
    return ResilienceReport(
        submitted=tally["submitted"],
        completed=tally["completed"],
        dead=tally["dead"],
        kills=kills,
        retries=sum(r.retries for r in cluster.records),
        goodput=goodput,
        utilization=cluster.utilization(),
        useful_device_seconds=cluster.useful_device_seconds,
        wasted_device_seconds=cluster.wasted_device_seconds,
        makespan=makespan,
        mtti=(makespan / kills) if kills else float("inf"),
        retry_histogram=histogram,
    )
