"""Memory-error processes: bit flips, MBU clusters, scrub and ECC policy.

Node, link and site failures (:mod:`repro.resilience.faults`) treat
memory as perfect.  This module adds the missing failure domain: a
deterministic soft-error process over a device's memory capacity —
Poisson single-bit upsets plus clustered multi-bit upsets — classified
by an ECC policy (SEC-DED, Chipkill-class symbol correction) and a
patrol-scrub policy into one of three outcomes:

``corrected``
    The ECC logic fixed the upset in place; the workload never notices.
``due``
    Detected-uncorrectable: the machine-check fires and the job owning
    the region dies (routed to the cluster's existing ``fail_job``
    kill/retry path by :func:`bind_memory`).
``silent``
    The upset escaped both correction and detection (silent data
    corruption); it is counted but deliberately has no simulated effect.

Everything is a pure function of ``(seed, spec index)``: each
:class:`MemoryErrorSpec` expands from its own ``mem/<i>`` fork, so
memory-error timelines are bit-identical at any worker count and never
perturb — or are perturbed by — the ``node/<i>`` / ``link/<i>`` /
``site/<i>`` forks of an existing :class:`~repro.resilience.faults.FaultCampaign`.
Arrival times and cluster sizes are drawn independently of the ECC/scrub
policy (the classification draws are always consumed), so sweeping
policy strength against a fixed seed holds the upset timeline constant.

The analytic side — :func:`outcome_fractions`, :func:`due_rate`,
:func:`effective_mtbf` — is the closed form the ``check_memerrors``
differential validates the injected simulation against, and the bridge
into the Young/Daly machinery: :func:`memory_failure_model` turns a
job's memory footprint plus the node's ECC policy into the
:class:`~repro.scheduling.checkpointing.FailureModel` that
:meth:`~repro.resilience.recovery.CheckpointPlan.from_target` picks
checkpoint intervals from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.hardware.reliability import MemoryReliabilitySpec, reliability_for
from repro.resilience.faults import FaultCampaign, FaultEvent, FaultKind
from repro.resilience.injector import FaultInjector
from repro.scheduling.checkpointing import FailureModel

#: Outcome labels (also the telemetry counter suffixes).
CORRECTED = "corrected"
DUE = "due"
SILENT = "silent"
OUTCOMES = (CORRECTED, DUE, SILENT)


@dataclass(frozen=True)
class EccPolicy:
    """An ECC scheme's correction/detection envelope per cluster size.

    ``correct_bits`` is the largest upset cluster corrected in place;
    ``detect_bits`` the largest reliably *detected* (clusters between the
    two become DUEs; beyond ``detect_bits`` the upset is silent).
    """

    name: str
    correct_bits: int
    detect_bits: int

    def __post_init__(self) -> None:
        if self.correct_bits < 0:
            raise ConfigurationError("correct_bits must be non-negative")
        if self.detect_bits < self.correct_bits:
            raise ConfigurationError(
                f"{self.name}: detect_bits ({self.detect_bits}) must be >= "
                f"correct_bits ({self.correct_bits})"
            )

    def classify_bits(self, bits: int) -> str:
        """Outcome of a ``bits``-wide cluster, ignoring accumulation."""
        if bits <= self.correct_bits:
            return CORRECTED
        if bits <= self.detect_bits:
            return DUE
        return SILENT

    @property
    def escalation_outcome(self) -> str:
        """What a scrub-missed accumulated correctable error becomes."""
        return DUE if self.detect_bits > self.correct_bits else SILENT


#: No ECC: nothing corrected, nothing detected — every upset is silent.
ECC_NONE = EccPolicy("none", correct_bits=0, detect_bits=0)

#: Classic SEC-DED: single-bit correct, double-bit detect.
SEC_DED = EccPolicy("sec-ded", correct_bits=1, detect_bits=2)

#: Chipkill-class symbol correction: an 8-bit symbol corrected, double
#: symbols detected.
CHIPKILL = EccPolicy("chipkill", correct_bits=8, detect_bits=16)

ECC_POLICIES: Dict[str, EccPolicy] = {
    policy.name: policy for policy in (ECC_NONE, SEC_DED, CHIPKILL)
}


def ecc_policy(name: str) -> EccPolicy:
    """Look up an ECC policy by name (CLI / sweep-axis entry point)."""
    try:
        return ECC_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(ECC_POLICIES))
        raise ConfigurationError(
            f"unknown ECC policy {name!r}; known policies: {known}"
        ) from None


@dataclass(frozen=True)
class ScrubPolicy:
    """Patrol scrubbing: a background pass over the whole capacity.

    A correctable upset that sits unscrubbed accumulates with later
    upsets; the phenomenological escalation probability is
    ``interval / (interval + accumulation_time)`` — monotone in the
    scrub period, 0 in the scrub-constantly limit and 1 with scrubbing
    off (``interval=inf``, :data:`NO_SCRUB`).  Scrubbing is not free:
    each pass reads the capacity, so the policy charges a standing
    ``scrub_power`` that the energy/carbon accounting picks up.
    """

    interval: float = 900.0
    energy_per_byte: float = 60e-12

    def __post_init__(self) -> None:
        if not self.interval > 0:
            raise ConfigurationError(
                f"scrub interval must be positive (inf disables): {self.interval}"
            )
        if self.energy_per_byte < 0:
            raise ConfigurationError("energy_per_byte must be non-negative")

    def escalation_probability(self, accumulation_time: float) -> float:
        """P(a correctable upset escalates before the next scrub pass)."""
        if math.isinf(self.interval):
            return 1.0
        return self.interval / (self.interval + accumulation_time)

    def scrub_power(self, capacity_bytes: float) -> float:
        """Standing watts spent patrol-reading ``capacity_bytes``."""
        if capacity_bytes < 0:
            raise ConfigurationError("capacity_bytes must be non-negative")
        if math.isinf(self.interval):
            return 0.0
        return capacity_bytes * self.energy_per_byte / self.interval


#: Scrubbing disabled: accumulated correctable errors always escalate.
NO_SCRUB = ScrubPolicy(interval=math.inf)


@dataclass(frozen=True)
class MemoryUpset(FaultEvent):
    """One concrete upset: ``bits`` flipped in region ``target``.

    The outcome is pre-classified at expansion time (a pure function of
    the draw and the spec's ECC/scrub policy) so replaying a timeline
    never re-draws.
    """

    bits: int = 1
    outcome: str = CORRECTED
    spec_index: int = 0


@dataclass(frozen=True)
class MemoryErrorSpec:
    """A memory-error process over one device's memory region.

    FIT rate, MBU mix and accumulation constant default from the
    :mod:`repro.hardware.reliability` catalog entry for ``device``;
    each may be overridden.  ``region`` labels the events (the C-series
    profiles use the site name so bindings can filter); ``capacity_bytes``
    defaults to the device's full memory capacity.
    """

    device: str = "epyc-class-cpu"
    region: str = "pool"
    capacity_bytes: Optional[float] = None
    fit_per_gib: Optional[float] = None
    mbu_fraction: Optional[float] = None
    mbu_cluster_mean: Optional[float] = None
    accumulation_time: Optional[float] = None
    ecc: EccPolicy = SEC_DED
    scrub: ScrubPolicy = field(default_factory=ScrubPolicy)

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive: {self.capacity_bytes}"
            )
        if not self.region:
            raise ConfigurationError("region must be non-empty")
        # Resolve the catalog entry eagerly so a bad device name fails at
        # spec construction, not mid-expansion.
        self.reliability()

    def reliability(self) -> MemoryReliabilitySpec:
        """The catalog envelope with this spec's overrides applied."""
        base = reliability_for(self.device)
        overrides = {}
        if self.fit_per_gib is not None:
            overrides["fit_per_gib"] = self.fit_per_gib
        if self.mbu_fraction is not None:
            overrides["mbu_fraction"] = self.mbu_fraction
        if self.mbu_cluster_mean is not None:
            overrides["mbu_cluster_mean"] = self.mbu_cluster_mean
        if self.accumulation_time is not None:
            overrides["accumulation_time"] = self.accumulation_time
        return replace(base, **overrides) if overrides else base

    def capacity(self) -> float:
        """Protected capacity in bytes (device default unless overridden)."""
        if self.capacity_bytes is not None:
            return self.capacity_bytes
        from repro.hardware.catalog import default_catalog

        return default_catalog().get(self.device).spec.memory_capacity

    def upset_rate(self) -> float:
        """Raw upsets per second over the spec's capacity."""
        return self.reliability().upset_rate(self.capacity())


def _cluster_geometry(mbu_cluster_mean: float) -> float:
    """The geometric parameter p for cluster size ``K = 2 + Geom0(p)``.

    ``mean(K) = 2 + (1-p)/p`` solved for p; a mean of exactly 2 gives
    p=1 (every cluster is a double-bit upset).
    """
    excess = mbu_cluster_mean - 2.0
    if excess <= 0:
        return 1.0
    return 1.0 / (1.0 + excess)


def _cluster_cdf(bits: int, p: float) -> float:
    """P(cluster size <= bits) for ``K = 2 + Geom0(p)``."""
    if bits < 2:
        return 0.0
    # P(Geom0(p) <= g) = 1 - (1-p)^(g+1) with g = bits - 2.
    return 1.0 - (1.0 - p) ** (bits - 1)


def _cluster_bits(u: float, p: float) -> int:
    """Inverse-transform a uniform into a cluster size (>= 2 bits)."""
    if p >= 1.0:
        return 2
    # Geom0: G = floor(log(1-u) / log(1-p)).
    return 2 + int(math.floor(math.log1p(-u) / math.log1p(-p)))


def outcome_fractions(spec: MemoryErrorSpec) -> Dict[str, float]:
    """The closed-form corrected/due/silent split of the upset stream.

    This is the analytic side of the ``check_memerrors`` differential:
    the empirical outcome fractions of an expanded timeline converge to
    exactly these numbers.
    """
    reliability = spec.reliability()
    f_mbu = reliability.mbu_fraction
    p_geo = _cluster_geometry(reliability.mbu_cluster_mean)
    p_esc = spec.scrub.escalation_probability(reliability.accumulation_time)
    c, d = spec.ecc.correct_bits, spec.ecc.detect_bits

    def prob_at_most(bits: int) -> float:
        """P(K <= bits) over the SBU/MBU mixture."""
        single = 1.0 if bits >= 1 else 0.0
        return (1.0 - f_mbu) * single + f_mbu * _cluster_cdf(bits, p_geo)

    correctable = prob_at_most(c)
    detectable = prob_at_most(d) - correctable
    beyond = 1.0 - correctable - detectable
    fractions = {
        CORRECTED: correctable * (1.0 - p_esc),
        DUE: detectable,
        SILENT: beyond,
    }
    fractions[spec.ecc.escalation_outcome] += correctable * p_esc
    return fractions


def due_rate(spec: MemoryErrorSpec,
             footprint_bytes: Optional[float] = None) -> float:
    """Detected-uncorrectable errors per second.

    ``footprint_bytes`` scales the rate to a job's memory footprint
    instead of the spec's full capacity (upsets land uniformly over the
    capacity, so a job owning half the memory sees half the DUEs).
    """
    capacity = spec.capacity() if footprint_bytes is None else footprint_bytes
    if capacity <= 0:
        return 0.0
    rate = spec.reliability().upset_rate(capacity)
    return rate * outcome_fractions(spec)[DUE]


def effective_mtbf(
    footprint_bytes: float,
    spec: MemoryErrorSpec,
    node_mtbf: float = math.inf,
) -> float:
    """A job's MTBF from its memory footprint plus the node's own MTBF.

    Memory DUEs and node failures are independent Poisson processes, so
    the hazards add: ``1/mtbf = 1/node_mtbf + due_rate(footprint)``.
    """
    if footprint_bytes < 0:
        raise ConfigurationError("footprint_bytes must be non-negative")
    if node_mtbf <= 0:
        raise ConfigurationError(f"node_mtbf must be positive: {node_mtbf}")
    hazard = due_rate(spec, footprint_bytes)
    if not math.isinf(node_mtbf):
        hazard += 1.0 / node_mtbf
    if hazard <= 0:
        return math.inf
    return 1.0 / hazard


def memory_failure_model(
    footprint_bytes: float,
    spec: MemoryErrorSpec,
    nodes: int = 1,
    node_mtbf: float = math.inf,
) -> FailureModel:
    """The FIT-derived :class:`FailureModel` for Young/Daly planning.

    ``footprint_bytes`` is the per-node memory footprint; the returned
    model's ``system_mtbf`` divides by ``nodes`` exactly like the
    hand-set models, so
    :meth:`CheckpointPlan.from_target <repro.resilience.recovery.CheckpointPlan.from_target>`
    accepts it unchanged and picks checkpoint intervals from FIT rates.
    """
    return FailureModel(
        node_mtbf=effective_mtbf(footprint_bytes, spec, node_mtbf),
        nodes=nodes,
    )


def expand_spec(
    spec: MemoryErrorSpec,
    horizon: float,
    rng: RandomSource,
    spec_index: int = 0,
) -> List[MemoryUpset]:
    """Expand one spec into its sorted upset timeline over ``[0, horizon]``.

    Four draws are consumed per upset — interarrival gap, MBU bernoulli,
    cluster size, escalation — *unconditionally*, so arrival times and
    cluster sizes are identical across ECC/scrub policies at a fixed
    seed: policy sweeps see the same upsets, classified differently.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive: {horizon}")
    rate = spec.upset_rate()
    if rate <= 0:
        return []
    reliability = spec.reliability()
    p_geo = _cluster_geometry(reliability.mbu_cluster_mean)
    p_esc = spec.scrub.escalation_probability(reliability.accumulation_time)
    mean_gap = 1.0 / rate
    upsets: List[MemoryUpset] = []
    clock = rng.exponential(mean_gap)
    while clock <= horizon:
        u_mbu = rng.uniform()
        u_size = rng.uniform()
        u_esc = rng.uniform()
        bits = _cluster_bits(u_size, p_geo) if u_mbu < reliability.mbu_fraction else 1
        outcome = spec.ecc.classify_bits(bits)
        if outcome == CORRECTED and u_esc < p_esc:
            outcome = spec.ecc.escalation_outcome
        upsets.append(
            MemoryUpset(
                time=clock, kind=FaultKind.MEMORY, target=spec.region,
                duration=0.0, bits=bits, outcome=outcome,
                spec_index=spec_index,
            )
        )
        clock += rng.exponential(mean_gap)
    return upsets


@dataclass(frozen=True)
class MemoryErrorCampaign:
    """A fault campaign extended with memory-error processes.

    Duck-types :class:`~repro.resilience.faults.FaultCampaign` for the
    injector: ``timeline(rng)`` merges the base campaign's node/link/site
    events (drawn from their unchanged ``node/<i>``-style forks) with
    each memory spec's upsets (drawn from ``mem/<i>`` forks), so adding
    memory errors to an existing campaign is bit-stable for both sides.
    """

    horizon: float
    memory: Tuple[MemoryErrorSpec, ...] = field(default_factory=tuple)
    base: Optional[FaultCampaign] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        object.__setattr__(self, "memory", tuple(self.memory))

    def timeline(
        self,
        rng: RandomSource,
        links: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        if self.base is not None:
            events.extend(self.base.timeline(rng, links=links))
        for index, spec in enumerate(self.memory):
            fork = rng.fork(f"mem/{index}")
            events.extend(expand_spec(spec, self.horizon, fork, index))
        events.sort(key=lambda e: e.time)  # stable: base before memory at ties
        return events


class MemoryErrorStats:
    """Running totals a :func:`bind_memory` binding accumulates."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.kills = 0

    @property
    def corrected(self) -> int:
        return self.counts[CORRECTED]

    @property
    def due(self) -> int:
        return self.counts[DUE]

    @property
    def silent(self) -> int:
        return self.counts[SILENT]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def bind_memory(
    injector: FaultInjector,
    cluster,
    rng: Optional[RandomSource] = None,
    region: Optional[str] = None,
) -> MemoryErrorStats:
    """Route MEMORY upsets to ECC telemetry and the cluster kill path.

    Corrected and silent upsets only bump counters
    (``resilience.memerrors.<outcome>``, labelled by region); a DUE
    kills one running job through the cluster's existing ``fail_job``
    retry/checkpoint machinery — the victim weighted by device footprint
    when ``rng`` is given, the lowest job id otherwise.  A DUE landing
    on an idle cluster kills nothing (the region had no job in it).

    ``cluster`` duck-types :class:`~repro.scheduling.cluster.ClusterSimulator`
    (``running_jobs()`` and ``fail_job()``); ``region`` filters events to
    one region label (default: react to all).  Returns the live
    :class:`MemoryErrorStats` the caller can read after the run.
    """
    stats = MemoryErrorStats()
    telemetry = injector.telemetry

    def react(event: FaultEvent, repaired: bool) -> None:
        if repaired or not isinstance(event, MemoryUpset):
            return
        if region is not None and event.target != region:
            return
        stats.counts[event.outcome] += 1
        if telemetry is not None:
            telemetry.counter(
                f"resilience.memerrors.{event.outcome}",
                "memory upsets by ECC outcome",
            ).inc(region=event.target)
        if event.outcome != DUE:
            return
        running = cluster.running_jobs()
        if not running:
            return
        if rng is not None:
            victim, _ = rng.choice(
                running, weights=[needed for _, needed in running]
            )
        else:
            victim = running[0][0]
        cluster.fail_job(victim)
        stats.kills += 1

    injector.on(FaultKind.MEMORY, react)
    return stats
