"""repro — a simulation framework for diversified heterogeneous HPC.

This library reproduces, as an executable system, the vision of
*"Future of HPC: Diversifying Heterogeneity"* (Milojicic, Faraboschi, Dube,
Roweth — DATE 2021): heterogeneous accelerators, low-diameter interconnects
with flow-based congestion management, CXL-class memory fabrics,
edge-to-supercomputer federation, a transparent meta-scheduler, and an
Open Compute Exchange market for compute resources.

Quickstart
----------
>>> import repro
>>> catalog = repro.default_catalog()
>>> federation = repro.Federation()
>>> # ... add sites/devices, generate a job trace, run the meta-scheduler.

Subpackages
-----------
``repro.core``
    Discrete-event kernel, units, RNG, errors.
``repro.hardware``
    Device models (CPU/GPU/systolic/wafer-scale/analog/optical/edge),
    roofline, power and cooling.
``repro.interconnect``
    Topologies, switches, flow-level fabric with congestion management,
    memory fabrics, photonics.
``repro.workloads``
    HPC kernels, AI models, hybrid closed loops, edge streams, traces.
``repro.federation``
    Sites, WAN, datasets, data gravity, bursting, SLAs.
``repro.scheduling``
    Runtime prediction, noise, cluster queues, the meta-scheduler.
``repro.resilience``
    Dynamic fault injection and recovery: campaigns, retry policies,
    checkpoint-restart, goodput accounting.
``repro.market``
    The Open Compute Exchange: order book, agents, equilibrium.
``repro.datafoundation``
    Metadata catalog, lineage/provenance DAG, transfer planning.
``repro.economics``
    Platform standardisation cost model.
``repro.analysis``
    Metrics, table rendering and sweep aggregation for benchmarks.
``repro.observability``
    Simulation telemetry: tracer, metrics registry, probes, trace export.
``repro.sweep``
    Parallel scenario sweeps: parameter grids fanned over worker
    processes with bit-identical results at any worker count.
``repro.validate``
    Validation and conformance: runtime invariants, golden-result
    fingerprints, differential model checks (``python -m repro validate``).
``repro.profiles``
    Runnable experiment profiles: ``repro.profiles.run("C1", ...)``.
"""

from repro.core import RandomSource, Simulation
from repro.federation import (
    Dataset,
    Federation,
    Site,
    SiteKind,
    WanLink,
)
from repro.hardware import (
    Device,
    DeviceCatalog,
    DeviceKind,
    DeviceSpec,
    KernelProfile,
    Precision,
    default_catalog,
)
from repro.interconnect import (
    FabricSimulator,
    Flow,
    Topology,
    TopologySpec,
    build_dragonfly,
    build_fat_tree,
    build_hyperx,
    build_topology,
    build_torus,
    build_two_tier,
    congestion_policy,
)
from repro.market import ComputeExchange, MarketSimulation, ResourceClass
from repro.observability import MetricsRegistry, Telemetry, Tracer
from repro.resilience import (
    CheckpointPlan,
    FaultCampaign,
    FaultInjector,
    RetryPolicy,
    cluster_report,
)
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.sweep import ParameterGrid, SweepResult, SweepSpec, run_sweep
from repro.workloads import (
    AIModel,
    Job,
    JobClass,
    JobTraceGenerator,
    TraceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AIModel",
    "CheckpointPlan",
    "ComputeExchange",
    "Dataset",
    "Device",
    "DeviceCatalog",
    "DeviceKind",
    "DeviceSpec",
    "FabricSimulator",
    "FaultCampaign",
    "FaultInjector",
    "Federation",
    "Flow",
    "Job",
    "JobClass",
    "JobTraceGenerator",
    "KernelProfile",
    "MarketSimulation",
    "MetaScheduler",
    "MetricsRegistry",
    "ParameterGrid",
    "PlacementPolicy",
    "Precision",
    "RandomSource",
    "ResourceClass",
    "RetryPolicy",
    "Simulation",
    "Site",
    "SiteKind",
    "SweepResult",
    "SweepSpec",
    "Telemetry",
    "Topology",
    "TopologySpec",
    "TraceConfig",
    "Tracer",
    "WanLink",
    "build_dragonfly",
    "build_fat_tree",
    "build_hyperx",
    "build_topology",
    "build_torus",
    "build_two_tier",
    "cluster_report",
    "congestion_policy",
    "default_catalog",
    "run_sweep",
    "__version__",
]
