"""A minimal HTTP/1.1 layer for the serve API — stdlib asyncio only.

The service speaks exactly the slice of HTTP it needs: request line +
headers + ``Content-Length`` body in, fixed-length JSON or chunked-free
NDJSON streams out.  No routing framework, no dependency — requests
parse into a :class:`ServeRequest`, handlers return a :class:`Response`
or :class:`NdjsonResponse`, and :func:`write_response` serialises either
onto the socket.

Anything malformed raises :class:`ProtocolError` carrying the HTTP
status to answer with (400 for parse errors, 413 for oversized bodies),
so the connection loop can reply instead of dying.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for the statuses the service actually sends.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Hard ceiling on request head size (request line + headers).
MAX_HEAD_BYTES = 16 * 1024


class ProtocolError(Exception):
    """A malformed request, carrying the status code to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServeRequest:
    """One parsed request: method, path, query, lowercase headers, body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def from_target(
        cls,
        method: str,
        target: str,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> "ServeRequest":
        """Build a request from a raw target like ``/v1/sweep?stream=1``."""
        parts = urlsplit(target)
        return cls(
            method=method.upper(),
            path=parts.path or "/",
            query=dict(parse_qsl(parts.query)),
            headers={k.lower(): v for k, v in (headers or {}).items()},
            body=body,
        )

    def json(self) -> object:
        """The body parsed as JSON; :class:`ProtocolError` 400 if not."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ProtocolError(400, f"invalid JSON body: {error}") from None


@dataclass
class Response:
    """A fixed-length response; ``body`` bytes are sent verbatim."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


class NdjsonResponse:
    """A streamed NDJSON response: one JSON document per line.

    ``events`` is an async iterator of JSON-ready dicts; each is written
    (and flushed) as its own line the moment it is produced, so clients
    see progress while the job runs.  The connection closes at stream
    end — the one place the service forgoes keep-alive, because without
    a length the client needs EOF to know the stream finished.
    """

    def __init__(self, events: AsyncIterator[dict], status: int = 200) -> None:
        self.status = status
        self.events = events
        self.headers: Dict[str, str] = {}


def json_response(
    payload: object,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    """A sorted-key JSON response (deterministic bytes for equal payloads)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers or {}))


def error_response(
    status: int, message: str, headers: Optional[Dict[str, str]] = None
) -> Response:
    """A JSON error body ``{"error", "status"}`` with the same status."""
    return json_response(
        {"error": message, "status": status}, status=status, headers=headers
    )


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[ServeRequest]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise ProtocolError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(400, "request head too large")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise ProtocolError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            400, f"bad Content-Length: {length_text!r}"
        ) from None
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise ProtocolError(
            413, f"body of {length} bytes exceeds the {max_body} byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return ServeRequest.from_target(method, target, headers, body)


def _head_bytes(
    status: int, headers: Dict[str, str]
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    response,
) -> bool:
    """Send a response; returns True when the connection must close."""
    if isinstance(response, NdjsonResponse):
        headers = {
            "Content-Type": "application/x-ndjson",
            "Connection": "close",
            **response.headers,
        }
        writer.write(_head_bytes(response.status, headers))
        await writer.drain()
        async for event in response.events:
            writer.write(
                (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()
        return True
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        **response.headers,
    }
    writer.write(_head_bytes(response.status, headers))
    writer.write(response.body)
    await writer.drain()
    return False
