"""Route handlers for the serve API.

Four routes, dispatched by :meth:`repro.serve.app.ServiceApp.dispatch`:

``GET /healthz``
    Liveness plus the admission snapshot and cache statistics.
``GET /metrics``
    The ``serve.*`` counters (and everything else on the app registry)
    in the Prometheus text exposition format
    (:func:`repro.observability.export.prometheus_lines`).
``POST /v1/profile`` / ``POST /v1/sweep``
    Submit a request.  ``?stream=1`` switches the response to NDJSON
    events (``accepted`` / ``progress`` / ``result`` / ``error``);
    otherwise the completed envelope returns as one JSON body.

Response envelopes are deterministic by construction — sorted keys, no
wall-clock fields — which is what makes byte-identical caching possible:
the cache stores exactly the bytes a fresh run would produce.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.serve.http import ServeRequest, Response, json_response

#: Response envelope schema identifier.
SERVE_SCHEMA = "repro.serve/v1"


def build_body(
    canonical: Dict[str, object],
    fingerprint: str,
    document: Dict[str, object],
) -> bytes:
    """The deterministic response body for one completed request.

    ``document`` is the ``repro.validate/v1`` fingerprint document of
    the run (metrics + counters, no wall-clock), so two executions of
    the same canonical request — cold, cached, or journal-resumed —
    produce byte-identical bodies.
    """
    envelope = {
        "schema": SERVE_SCHEMA,
        "kind": canonical["kind"],
        "fingerprint": fingerprint,
        "request": canonical,
        "result": document,
    }
    return (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8")


async def handle_health(app, request: ServeRequest) -> Response:
    return json_response(
        {
            "status": "ok",
            "admission": app.admission.snapshot(),
            "cache": dict(app.cache.stats),
            "inflight_jobs": len(app.inflight),
        }
    )


async def handle_metrics(app, request: ServeRequest) -> Response:
    from repro.observability.export import prometheus_lines

    app.refresh_gauges()
    lines = prometheus_lines(app.telemetry.metrics)
    body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
    return Response(
        status=200, body=body, content_type="text/plain; version=0.0.4"
    )


async def handle_profile(app, request: ServeRequest):
    return await app.submit(request, "profile")


async def handle_sweep(app, request: ServeRequest):
    return await app.submit(request, "sweep")


#: The route table: (method, path) -> handler coroutine.
ROUTES = {
    ("GET", "/healthz"): handle_health,
    ("GET", "/metrics"): handle_metrics,
    ("POST", "/v1/profile"): handle_profile,
    ("POST", "/v1/sweep"): handle_sweep,
}
