"""A stdlib socket client for the serve API.

Backs ``python -m repro serve-request`` (the CLI client the smoke tests
and the CI job drive) and the real-socket test suites.  Uses
``http.client`` — synchronous, dependency-free, and happy to read both
fixed-length JSON bodies and NDJSON streams to EOF.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional
from urllib.parse import urlsplit

from repro.serve.testing import ClientResponse


def http_request(
    url: str,
    method: str,
    target: str,
    payload: Optional[dict] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 300.0,
) -> ClientResponse:
    """One HTTP request against a running serve process.

    ``url`` is the service base (``http://127.0.0.1:7750``); ``target``
    the path + query.  Returns the full response with the body read to
    completion (streams included).
    """
    parts = urlsplit(url if "//" in url else f"//{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"unsupported scheme {parts.scheme!r} in {url!r}")
    if not parts.hostname:
        raise ValueError(f"no host in serve url {url!r}")
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=timeout
    )
    try:
        body = (
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        connection.request(method, target, body=body, headers=send_headers)
        response = connection.getresponse()
        return ClientResponse(
            status=response.status,
            headers={k.lower(): v for k, v in response.getheaders()},
            body=response.read(),
        )
    finally:
        connection.close()
