"""The fingerprint-keyed artefact cache behind ``repro serve``.

Completed response bodies are stored on disk under
``<store>/artefacts/<fingerprint>.json`` — written atomically
(:func:`repro.core.atomicio.atomic_write_text` semantics, but for the
exact response bytes) so a crash mid-write can never publish a torn
artefact — and fronted by a bounded in-memory LRU so the hot path
serves repeats without touching the filesystem.

The same store owns ``<store>/journals/<fingerprint>.jsonl``: the sweep
run journal for an in-flight request.  A serve process killed mid-sweep
leaves the journal behind; the restarted process finds it and resumes
(``run_sweep(resume=...)``) instead of recomputing, then deletes it once
the artefact lands.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from collections import OrderedDict
from typing import Dict, Optional, Union


class ResultCache:
    """Disk-backed, memory-fronted cache of response bodies by fingerprint.

    ``max_memory_entries`` bounds only the in-memory front; the disk
    store is the durable, unbounded source of truth.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        max_memory_entries: int = 1024,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.artefacts = self.directory / "artefacts"
        self.journals = self.directory / "journals"
        self.artefacts.mkdir(parents=True, exist_ok=True)
        self.journals.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0,
        }

    def artefact_path(self, fingerprint: str) -> pathlib.Path:
        return self.artefacts / f"{fingerprint}.json"

    def journal_path(self, fingerprint: str) -> pathlib.Path:
        return self.journals / f"{fingerprint}.jsonl"

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The cached body, or ``None``.  Corrupt artefacts raise.

        Artefacts are written atomically, so a corrupt file means
        something outside the service touched the store — surface that
        loudly (naming the path) rather than silently recomputing over
        it.
        """
        body = self._memory.get(fingerprint)
        if body is not None:
            self._memory.move_to_end(fingerprint)
            self.stats["memory_hits"] += 1
            return body
        path = self.artefact_path(fingerprint)
        try:
            body = path.read_bytes()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        try:
            json.loads(body)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: corrupt cached artefact (invalid JSON: {error}) "
                "— delete it to allow recomputation"
            ) from None
        self.stats["disk_hits"] += 1
        self._remember(fingerprint, body)
        return body

    def put(self, fingerprint: str, body: bytes) -> pathlib.Path:
        """Publish a completed response body atomically."""
        path = self.artefact_path(fingerprint)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{fingerprint[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._remember(fingerprint, body)
        return path

    def discard_journal(self, fingerprint: str) -> None:
        """Drop the run journal once its artefact is durable."""
        try:
            self.journal_path(fingerprint).unlink()
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.artefacts.glob("*.json"))

    def _remember(self, fingerprint: str, body: bytes) -> None:
        self._memory[fingerprint] = body
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
