"""The fingerprint-keyed artefact cache behind ``repro serve``.

Completed response bodies are stored on disk under
``<store>/artefacts/<fingerprint>.json`` — written atomically
(:func:`repro.core.atomicio.atomic_write_text` semantics, but for the
exact response bytes) so a crash mid-write can never publish a torn
artefact — and fronted by a bounded in-memory LRU so the hot path
serves repeats without touching the filesystem.

The same store owns ``<store>/journals/<fingerprint>.jsonl``: the sweep
run journal for an in-flight request.  A serve process killed mid-sweep
leaves the journal behind; the restarted process finds it and resumes
(``run_sweep(resume=...)``) instead of recomputing, then deletes it once
the artefact lands.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Union


class ResultCache:
    """Disk-backed, memory-fronted cache of response bodies by fingerprint.

    ``max_memory_entries`` bounds only the in-memory front; the disk
    store is the durable, unbounded source of truth.

    ``ttl`` (seconds, ``None`` = never expire) ages artefacts out of both
    tiers: an entry whose age reaches the TTL is evicted — memory entry
    dropped, disk file unlinked — and the lookup counts as a miss, so the
    next request recomputes.  Ages are measured with the injectable
    ``clock`` (the serve config's clock), which makes expiry
    deterministic under test; an artefact already on disk when this
    process first observes it is stamped fresh at that observation (disk
    mtimes come from the wall clock and cannot be compared against an
    injected one).  The LRU bound and hit accounting are unchanged.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        max_memory_entries: int = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive, got {ttl}")
        self.directory = pathlib.Path(directory)
        self.artefacts = self.directory / "artefacts"
        self.journals = self.directory / "journals"
        self.artefacts.mkdir(parents=True, exist_ok=True)
        self.journals.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.ttl = ttl
        self.clock = clock
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._stamps: Dict[str, float] = {}
        self.stats: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0, "expired": 0,
        }

    def artefact_path(self, fingerprint: str) -> pathlib.Path:
        return self.artefacts / f"{fingerprint}.json"

    def journal_path(self, fingerprint: str) -> pathlib.Path:
        return self.journals / f"{fingerprint}.jsonl"

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The cached body, or ``None``.  Corrupt artefacts raise.

        Artefacts are written atomically, so a corrupt file means
        something outside the service touched the store — surface that
        loudly (naming the path) rather than silently recomputing over
        it.
        """
        if self._expire(fingerprint):
            self.stats["misses"] += 1
            return None
        body = self._memory.get(fingerprint)
        if body is not None:
            self._memory.move_to_end(fingerprint)
            self.stats["memory_hits"] += 1
            return body
        path = self.artefact_path(fingerprint)
        try:
            body = path.read_bytes()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        try:
            json.loads(body)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: corrupt cached artefact (invalid JSON: {error}) "
                "— delete it to allow recomputation"
            ) from None
        self.stats["disk_hits"] += 1
        self._remember(fingerprint, body)
        return body

    def put(self, fingerprint: str, body: bytes) -> pathlib.Path:
        """Publish a completed response body atomically."""
        path = self.artefact_path(fingerprint)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{fingerprint[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        if self.ttl is not None:
            # A (re)publication is fresh by definition.
            self._stamps[fingerprint] = self.clock()
        self._remember(fingerprint, body)
        return path

    def discard_journal(self, fingerprint: str) -> None:
        """Drop the run journal once its artefact is durable."""
        try:
            self.journal_path(fingerprint).unlink()
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.artefacts.glob("*.json"))

    def _expire(self, fingerprint: str) -> bool:
        """Evict the entry if its age has reached the TTL.

        With no TTL this is a no-op.  Entries never stamped by this
        process (disk artefacts from a previous run) are stamped fresh
        on first observation rather than expired by an incomparable
        mtime.  Returns whether the entry was evicted.
        """
        if self.ttl is None:
            return False
        stamp = self._stamps.get(fingerprint)
        if stamp is None:
            if (
                fingerprint in self._memory
                or self.artefact_path(fingerprint).exists()
            ):
                self._stamps[fingerprint] = self.clock()
            return False
        if self.clock() - stamp < self.ttl:
            return False
        self._memory.pop(fingerprint, None)
        self._stamps.pop(fingerprint, None)
        try:
            self.artefact_path(fingerprint).unlink()
        except FileNotFoundError:
            pass
        self.stats["expired"] += 1
        return True

    def _remember(self, fingerprint: str, body: bytes) -> None:
        if self.ttl is not None:
            # Age counts from publication (or first observation), never
            # from access: reads must not refresh a stale-bound entry.
            self._stamps.setdefault(fingerprint, self.clock())
        self._memory[fingerprint] = body
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
