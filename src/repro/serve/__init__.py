"""``repro serve``: the long-running simulation service.

The paper's delivery-model thesis (§IV) is that heterogeneous HPC gets
consumed *as a service*; ROADMAP item 3 applies that to this repo
itself.  ``python -m repro serve`` turns the cold per-CLI-invocation
cost model into a resident asyncio HTTP/JSON API — stdlib only — whose
pieces map onto the classic HPC-cloud service stack:

* **canonical requests & caching** — every request normalises through
  :func:`repro.validate.fingerprint.canonical_request` and hashes to a
  fingerprint; identical requests (any spelling) answer from the
  artefact store with **zero simulation** (:mod:`repro.serve.cache`);
* **admission control** — per-tenant token-bucket quotas plus bounded
  in-flight load shedding, 429 + ``Retry-After``
  (:mod:`repro.serve.admission`);
* **execution** — jobs run through the supervised sweep harness
  (journalled, parent-sentinel worker cleanup), so a SIGKILLed service
  restarted on the same store *resumes* interrupted sweeps
  (:mod:`repro.serve.app`);
* **observability** — ``serve.*`` counters on a Telemetry registry,
  scraped at ``/metrics`` in the Prometheus exposition, with NDJSON
  progress streaming reusing the sweep progress reporter
  (:mod:`repro.serve.handlers`);
* **test harness** — an in-process :class:`ServiceClient` and a real
  socket :class:`ServerThread` fixture (:mod:`repro.serve.testing`).

Quickstart::

    python -m repro serve --port 7750 --store /tmp/repro-store
    python -m repro serve-request http://127.0.0.1:7750 profile C1
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    QuotaPolicy,
    TokenBucket,
)
from repro.serve.app import ServeConfig, ServiceApp
from repro.serve.cache import ResultCache
from repro.serve.client import http_request
from repro.serve.handlers import SERVE_SCHEMA, build_body
from repro.serve.http import (
    NdjsonResponse,
    ProtocolError,
    Response,
    ServeRequest,
    error_response,
    json_response,
)
from repro.serve.testing import ClientResponse, ServerThread, ServiceClient

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ClientResponse",
    "NdjsonResponse",
    "ProtocolError",
    "QuotaPolicy",
    "Response",
    "ResultCache",
    "SERVE_SCHEMA",
    "ServeConfig",
    "ServeRequest",
    "ServerThread",
    "ServiceApp",
    "ServiceClient",
    "TokenBucket",
    "build_body",
    "error_response",
    "http_request",
    "json_response",
]
