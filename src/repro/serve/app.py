"""The serve application: lifecycle, dispatch, caching and job execution.

``python -m repro serve`` builds one :class:`ServiceApp` from a
:class:`ServeConfig` and runs it forever.  The asyncio loop owns
connections, admission and the cache; simulations run on a small thread
pool (:class:`~concurrent.futures.ThreadPoolExecutor`) so the loop stays
responsive — and sweep requests immediately fan out to *processes* via
:func:`repro.sweep.engine.run_sweep`, inheriting the supervised harness:
crash detection, retries, parent-sentinel worker cleanup and the
crash-consistent run journal that makes a killed-and-restarted service
resume instead of recompute.

The caching contract, end to end:

1. the request canonicalises
   (:func:`repro.validate.fingerprint.canonical_request`) and hashes
   (:func:`~repro.validate.fingerprint.request_fingerprint`);
2. a cached artefact answers immediately — zero simulation, proven by
   the ``serve.kernel_events`` counter standing still;
3. an identical request already in flight *coalesces* — it awaits the
   running job's future instead of starting a second simulation;
4. only a genuinely cold request passes admission control and executes,
   and its deterministic body is published atomically to the store.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.observability import Telemetry
from repro.serve import http
from repro.serve.admission import AdmissionController, QuotaPolicy
from repro.serve.cache import ResultCache
from repro.serve.handlers import ROUTES, build_body


@dataclass
class ServeConfig:
    """Everything tunable about one serve process."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed/returned
    store: str = ".repro-serve"
    sweep_workers: int = 2
    sweep_retries: int = 2
    job_workers: int = 1
    max_queue: int = 8
    quota: Optional[QuotaPolicy] = None  # None = unlimited
    retry_after_cap: float = 60.0
    max_body: int = 1_000_000
    share_topologies: bool = True
    #: Artefact max-age in seconds; ``None`` keeps artefacts forever.
    cache_ttl: Optional[float] = None
    clock: Callable[[], float] = time.monotonic


class _NullStream:
    """A /dev/null stream for progress reporters driven only for snapshots."""

    def write(self, text: str) -> None:  # pragma: no cover - trivial
        pass

    def flush(self) -> None:  # pragma: no cover - trivial
        pass


class ServiceApp:
    """One serve worker: connection handling down to job execution."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = ResultCache(
            self.config.store,
            ttl=self.config.cache_ttl,
            clock=self.config.clock,
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            quota=self.config.quota,
            clock=self.config.clock,
            retry_after_cap=self.config.retry_after_cap,
        )
        self.telemetry = Telemetry()
        #: Fingerprint -> future of the currently-running identical job.
        self.inflight: Dict[str, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.job_workers),
            thread_name_prefix="repro-serve-job",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        if self.config.share_topologies:
            from repro.interconnect.topology import enable_topology_cache

            enable_topology_cache(True)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        """Release process-level resources (idempotent)."""
        self._executor.shutdown(wait=True)
        if self.config.share_topologies:
            from repro.interconnect.topology import enable_topology_cache

            enable_topology_cache(False)

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str):
        return self.telemetry.metrics.counter(name)

    def refresh_gauges(self) -> None:
        """Mirror point-in-time state into gauges before a scrape."""
        from repro.interconnect.topology import topology_cache_stats

        registry = self.telemetry.metrics
        registry.gauge("serve.inflight").set(float(self.admission.inflight))
        for key, value in self.cache.stats.items():
            registry.gauge(f"serve.cache.{key}").set(float(value))
        for key, value in topology_cache_stats().items():
            registry.gauge(f"serve.topology_cache.{key}").set(float(value))

    # -- connection & dispatch ---------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, max_body=self.config.max_body
                    )
                except http.ProtocolError as error:
                    await http.write_response(
                        writer,
                        http.error_response(error.status, str(error)),
                    )
                    break
                if request is None:
                    break
                response = await self.dispatch(request)
                must_close = await http.write_response(writer, response)
                if must_close or request.headers.get("connection") == "close":
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def dispatch(self, request: http.ServeRequest):
        """Route one request; never raises — errors become responses."""
        handler = ROUTES.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in ROUTES}
            if request.path in known_paths:
                return http.error_response(
                    405, f"{request.method} not allowed on {request.path}"
                )
            return http.error_response(404, f"no route for {request.path}")
        try:
            return await handler(self, request)
        except http.ProtocolError as error:
            return http.error_response(error.status, str(error))
        except Exception as error:  # the loop must outlive any one request
            self.counter("serve.errors").inc(1)
            return http.error_response(
                500, f"{type(error).__name__}: {error}"
            )

    # -- submission --------------------------------------------------------

    async def submit(self, request: http.ServeRequest, kind: str):
        """The POST /v1/{profile,sweep} path: cache -> coalesce -> admit."""
        from repro.validate.fingerprint import (
            canonical_request,
            request_fingerprint,
        )

        payload = request.json()
        if not isinstance(payload, dict):
            return http.error_response(400, "request body must be an object")
        tenant = request.headers.get(
            "x-tenant", str(payload.get("tenant", "default"))
        )
        stream = request.query.get("stream", "") in ("1", "true", "yes")
        try:
            canonical = canonical_request(payload)
        except ValueError as error:
            self.counter("serve.bad_requests").inc(1, kind=kind)
            return http.error_response(400, str(error))
        if canonical["kind"] != kind:
            self.counter("serve.bad_requests").inc(1, kind=kind)
            return http.error_response(
                400,
                f"/v1/{kind} got a {canonical['kind']} request — "
                f"use /v1/{canonical['kind']}",
            )
        fingerprint = request_fingerprint(canonical)
        headers = {"X-Fingerprint": fingerprint}

        # 1. Cache: answer from the store, no quota charge, no simulation.
        body = self.cache.get(fingerprint)
        if body is not None:
            self.counter("serve.requests").inc(1, kind=kind, cache="hit")
            headers["X-Cache"] = "hit"
            if stream:
                return self._stream_cached(fingerprint, body, headers)
            return http.Response(200, body, headers=headers)

        # 2. Coalesce: an identical job is already running — join it.
        existing = self.inflight.get(fingerprint)
        if (
            existing is not None
            and not existing.done()
            and existing.get_loop() is asyncio.get_running_loop()
        ):
            self.counter("serve.requests").inc(
                1, kind=kind, cache="coalesced"
            )
            body = await asyncio.shield(existing)
            headers["X-Cache"] = "coalesced"
            if stream:
                return self._stream_cached(fingerprint, body, headers)
            return http.Response(200, body, headers=headers)

        # 3. Cold: this request wants real simulation — admission decides.
        decision = self.admission.admit(tenant)
        if not decision.admitted:
            self.counter("serve.rejected").inc(
                1, reason=decision.reason, tenant=tenant
            )
            retry_after = decision.retry_after
            if not math.isfinite(retry_after):
                retry_after = self.config.retry_after_cap
            return http.error_response(
                429,
                f"request shed ({decision.reason}); retry later",
                headers={
                    "Retry-After": str(max(1, math.ceil(retry_after))),
                    "X-Reject-Reason": decision.reason,
                },
            )
        self.counter("serve.requests").inc(1, kind=kind, cache="miss")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.inflight[fingerprint] = future
        headers["X-Cache"] = "miss"
        if stream:
            return self._stream_cold(canonical, fingerprint, kind)
        # Shielded: the job keeps running (and publishes to the cache)
        # even if this client disconnects mid-simulation.
        body = await asyncio.shield(
            self._start_job(canonical, fingerprint, progress=None)
        )
        return http.Response(200, body, headers=headers)

    def _stream_cached(self, fingerprint: str, body: bytes, headers):
        async def events():
            yield {
                "event": "accepted",
                "fingerprint": fingerprint,
                "cache": headers.get("X-Cache", "hit"),
            }
            yield {
                "event": "result",
                "fingerprint": fingerprint,
                "response": json.loads(body),
            }

        response = http.NdjsonResponse(events())
        response.headers.update(headers)
        return response

    def _stream_cold(self, canonical, fingerprint: str, kind: str):
        """Start a cold job now and stream its NDJSON events.

        The job task starts *before* the response generator is consumed,
        so an abandoned stream (client gone before reading a byte) still
        runs the job to completion, publishes the artefact and releases
        the admission slot.
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        progress = None
        if kind == "sweep":
            from repro.observability.progress import SweepProgressReporter
            from repro.sweep import spec_from_request

            total = len(spec_from_request(canonical).points())
            reporter = SweepProgressReporter(
                total, telemetry=self.telemetry, stream=_NullStream()
            )

            def progress(point_result) -> None:  # runs on the job thread
                reporter(point_result)
                loop.call_soon_threadsafe(
                    queue.put_nowait,
                    {"event": "progress", **reporter.snapshot()},
                )

        job = self._start_job(canonical, fingerprint, progress=progress)

        async def events():
            yield {
                "event": "accepted",
                "fingerprint": fingerprint,
                "kind": kind,
                "cache": "miss",
            }
            while not (job.done() and queue.empty()):
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=0.05
                    )
                except asyncio.TimeoutError:
                    continue
                yield event
            try:
                body = job.result()
            except Exception as error:
                yield {
                    "event": "error",
                    "fingerprint": fingerprint,
                    "error": f"{type(error).__name__}: {error}",
                }
                return
            yield {
                "event": "result",
                "fingerprint": fingerprint,
                "response": json.loads(body),
            }

        response = http.NdjsonResponse(events())
        response.headers.update(
            {"X-Fingerprint": fingerprint, "X-Cache": "miss"}
        )
        return response

    def _start_job(
        self, canonical, fingerprint: str, progress
    ) -> "asyncio.Task":
        """Launch one admitted job as a loop-owned task."""
        task = asyncio.ensure_future(
            self._settle_job(canonical, fingerprint, progress)
        )
        # A stream abandoned before reading the result would otherwise
        # leave the task's exception unretrieved at GC time.
        task.add_done_callback(
            lambda t: t.cancelled() or t.exception()
        )
        return task

    async def _settle_job(
        self, canonical, fingerprint: str, progress
    ) -> bytes:
        """Run the job on the executor; settle the shared future."""
        future = self.inflight[fingerprint]
        try:
            body = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._execute, canonical, fingerprint,
                progress,
            )
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
                future.exception()  # consumed: coalesced waiters re-raise
            raise
        else:
            if not future.done():
                future.set_result(body)
            return body
        finally:
            self.admission.release()
            self.inflight.pop(fingerprint, None)

    # -- execution (job thread) --------------------------------------------

    def _execute(self, canonical, fingerprint: str, progress) -> bytes:
        """Synchronous job body: simulate, build the deterministic
        envelope, publish it atomically, account kernel events."""
        kind = canonical["kind"]
        if kind == "profile":
            document, kernel_events = self._execute_profile(canonical)
        else:
            document, kernel_events = self._execute_sweep(
                canonical, fingerprint, progress
            )
        body = build_body(canonical, fingerprint, document)
        self.cache.put(fingerprint, body)
        if kind == "sweep":
            self.cache.discard_journal(fingerprint)
        self.counter("serve.simulations").inc(1, kind=kind)
        self.counter("serve.kernel_events").inc(kernel_events, kind=kind)
        return body

    def _execute_profile(self, canonical):
        from repro import profiles
        from repro.validate.fingerprint import profile_fingerprint

        telemetry = Telemetry()
        result = profiles.run(
            canonical["profile"], telemetry, **canonical["params"]
        )
        document = profile_fingerprint(result)
        kernel_events = float(
            document["counters"].get("sim.events.fired", 0.0)
        )
        return document, kernel_events

    def _execute_sweep(self, canonical, fingerprint: str, progress):
        from repro.sweep import run_sweep, spec_from_request
        from repro.validate.fingerprint import sweep_fingerprint

        spec = spec_from_request(canonical)
        journal = self.cache.journal_path(fingerprint)
        resuming = journal.exists()
        # Kernel events are charged for *executed* points only — resumed
        # points replay from the journal without simulating, and the
        # counter must say so.
        executed_events = [0.0]

        def on_point(point_result) -> None:
            executed_events[0] += float(
                point_result.counters.get("sim.events.fired", 0.0)
            )
            if progress is not None:
                progress(point_result)

        result = run_sweep(
            spec,
            workers=self.config.sweep_workers,
            progress=on_point,
            retries=self.config.sweep_retries,
            journal=None if resuming else str(journal),
            resume=[str(journal)] if resuming else None,
            strict=True,
            telemetry=self.telemetry,
        )
        return sweep_fingerprint(result), executed_events[0]
