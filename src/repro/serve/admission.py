"""Admission control: per-tenant token buckets and load shedding.

The policy protects *simulation capacity*, the scarce resource — so it
sits in front of cold runs only; cache hits and coalesced joins answer
from memory and are always admitted.  Two gates, in order:

1. **Load shedding** — a bounded in-flight count (queued + running
   jobs).  Past the bound every request sheds with 429 regardless of
   tenant, because admitting work the queue cannot absorb only converts
   overload into latency.
2. **Per-tenant quota** — a token bucket per tenant name (rate tokens/s,
   ``burst`` capacity).  ``rate=0`` makes the bucket a hard budget of
   ``burst`` requests, which is what the deterministic load-shed tests
   and CI smoke use: no clock in the outcome at all.

Every rejection carries a ``Retry-After`` hint: the token deficit
divided by the refill rate (capped), or the configured queue drain hint.
The clock is injectable, so tests can prove quota refill behaviour
without sleeping.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""  # "" | "queue" | "quota"
    retry_after: float = 0.0


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        if self.rate > 0 and now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
        self._last = now

    def take(self) -> AdmissionDecision:
        """Consume one token, or say how long until one exists."""
        self._refill(self.clock())
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return AdmissionDecision(True)
        if self.rate <= 0:
            # A pure budget: it never refills, so there is no honest
            # retry hint — callers cap this to their configured maximum.
            return AdmissionDecision(False, "quota", math.inf)
        return AdmissionDecision(
            False, "quota", (1.0 - self.tokens) / self.rate
        )


@dataclass
class QuotaPolicy:
    """Per-tenant quota settings; ``rate=None`` disables quotas entirely."""

    rate: Optional[float] = None
    burst: float = 8.0

    @classmethod
    def parse(cls, text: str) -> "QuotaPolicy":
        """Parse the CLI spelling ``RATE:BURST`` (e.g. ``0:2``, ``1.5:8``)."""
        rate_text, separator, burst_text = text.partition(":")
        try:
            rate = float(rate_text)
            burst = float(burst_text) if separator else rate
        except ValueError:
            raise ValueError(
                f"bad quota {text!r}; expected RATE:BURST, e.g. '0:2'"
            ) from None
        if rate < 0 or burst < 0:
            raise ValueError(f"quota {text!r} must be non-negative")
        return cls(rate=rate, burst=burst)


class AdmissionController:
    """The two-gate admission policy described in the module docstring."""

    def __init__(
        self,
        max_queue: int = 8,
        quota: Optional[QuotaPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        retry_after_cap: float = 60.0,
        queue_retry_after: float = 1.0,
    ) -> None:
        self.max_queue = max(1, int(max_queue))
        self.quota = quota if quota is not None else QuotaPolicy()
        self.clock = clock
        self.retry_after_cap = float(retry_after_cap)
        self.queue_retry_after = float(queue_retry_after)
        self.inflight = 0
        self.buckets: Dict[str, TokenBucket] = {}

    def admit(self, tenant: str) -> AdmissionDecision:
        """Decide one cold request.  Admission takes an in-flight slot
        (pair every admit with a :meth:`release`); rejections take
        nothing — a shed request consumes neither a slot nor a token."""
        if self.inflight >= self.max_queue:
            return AdmissionDecision(
                False, "queue",
                min(self.queue_retry_after, self.retry_after_cap),
            )
        if self.quota.rate is not None:
            bucket = self.buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.quota.rate, self.quota.burst, self.clock
                )
                self.buckets[tenant] = bucket
            decision = bucket.take()
            if not decision.admitted:
                return AdmissionDecision(
                    False, "quota",
                    min(decision.retry_after, self.retry_after_cap),
                )
        self.inflight += 1
        return AdmissionDecision(True)

    def release(self) -> None:
        self.inflight = max(0, self.inflight - 1)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for health endpoints and tests."""
        return {
            "inflight": self.inflight,
            "max_queue": self.max_queue,
            "quota_rate": self.quota.rate,
            "quota_burst": self.quota.burst,
            "tenants": {
                tenant: round(bucket.tokens, 6)
                for tenant, bucket in sorted(self.buckets.items())
            },
        }
