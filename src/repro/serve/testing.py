"""The service-level test harness for ``repro serve``.

Two entry points, both used by the tier-1 suites and the ``check_serve``
differential:

* :class:`ServiceClient` — an **in-process** client that drives
  :meth:`~repro.serve.app.ServiceApp.dispatch` directly, no socket: the
  full submit/cache/admission/execution path under test with none of
  the transport flake.  NDJSON responses are drained eagerly into the
  returned :class:`ClientResponse`.
* :class:`ServerThread` — the **real-socket** fixture: runs an app's
  asyncio server on a background thread, binding port 0 (never a fixed
  port — suites must survive parallel runs), and tears down cleanly on
  :meth:`stop` so ``pytest -x`` leaves no listener behind.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.http import NdjsonResponse, ServeRequest


@dataclass
class ClientResponse:
    """One response as a test sees it: status, headers, raw body."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        return json.loads(self.body)

    def ndjson(self) -> List[dict]:
        """The body parsed as one JSON document per line."""
        return [
            json.loads(line)
            for line in self.body.splitlines()
            if line.strip()
        ]


class ServiceClient:
    """In-process client: requests go straight to ``app.dispatch``."""

    __test__ = False  # not a pytest collection target

    def __init__(self, app) -> None:
        self.app = app

    def request(
        self,
        method: str,
        target: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ClientResponse:
        body = (
            b""
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        request = ServeRequest.from_target(method, target, headers, body)

        async def run() -> ClientResponse:
            response = await self.app.dispatch(request)
            if isinstance(response, NdjsonResponse):
                chunks = []
                async for event in response.events:
                    chunks.append(
                        json.dumps(event, sort_keys=True) + "\n"
                    )
                return ClientResponse(
                    status=response.status,
                    headers=dict(response.headers),
                    body="".join(chunks).encode("utf-8"),
                )
            return ClientResponse(
                status=response.status,
                headers=dict(response.headers),
                body=response.body,
            )

        return asyncio.run(run())

    def get(self, target: str) -> ClientResponse:
        return self.request("GET", target)

    def post(
        self,
        target: str,
        payload: dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> ClientResponse:
        return self.request("POST", target, payload, headers)


class ServerThread:
    """A real listening server on a background thread, port 0 only.

    Usage::

        server = ServerThread(app)
        host, port = server.start()
        ...
        server.stop()   # closes the listener, joins the thread

    ``stop`` is idempotent and does not call ``app.close()`` — the
    owner decides when process-level resources go away.
    """

    __test__ = False

    def __init__(self, app) -> None:
        self.app = app
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to bind: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.address = loop.run_until_complete(self.app.start())
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.app.stop_server())
            # Let in-flight connection tasks observe the shutdown.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - diagnostics
            raise RuntimeError("server thread did not stop in time")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
