"""Market participants of the Open Compute Exchange.

The paper (§III.F): "consumer and provider market orders strategies,
third-party brokers, technology speculators and future HPC architectures
risk hedging are only some of the possibilities that could now be
envisioned." Each strategy here quotes limit orders once per market round:

* :class:`ProviderAgent` — sells idle capacity above its marginal cost,
  discounting as idle inventory ages (capacity is perishable: an idle
  device-hour not sold is lost).
* :class:`ConsumerAgent` — buys device-hours below its private valuation,
  bidding more aggressively as its deadline approaches.
* :class:`BrokerAgent` — a market maker quoting both sides around the last
  price, earning the spread and providing the liquidity the paper says a
  thin few-provider market lacks.
* :class:`SpeculatorAgent` — momentum trader buying rising and selling
  falling prices, bounded by inventory/short limits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import MarketError
from repro.core.rng import RandomSource
from repro.market.orders import Order, Side


@dataclass
class MarketView:
    """What an agent sees before quoting: public book/tape state."""

    resource: str
    round_index: int
    best_bid: Optional[float]
    best_ask: Optional[float]
    last_price: Optional[float]
    price_history: List[float] = field(default_factory=list)

    @property
    def reference_price(self) -> Optional[float]:
        """Mid if quotable, else last trade."""
        if self.best_bid is not None and self.best_ask is not None:
            return (self.best_bid + self.best_ask) / 2.0
        return self.last_price


class Agent(ABC):
    """Base market participant with cash/inventory accounting."""

    def __init__(self, agent_id: str, cash: float = 0.0) -> None:
        self.agent_id = agent_id
        self.cash = cash
        self.inventory = 0.0  # device-hours held (consumers accumulate)

    @abstractmethod
    def quote(self, view: MarketView, rng: RandomSource) -> List[Order]:
        """Orders to submit this round (possibly empty)."""

    def on_buy(self, quantity: float, price: float) -> None:
        self.cash -= quantity * price
        self.inventory += quantity

    def on_sell(self, quantity: float, price: float) -> None:
        self.cash += quantity * price
        self.inventory -= quantity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.agent_id!r})"


class ProviderAgent(Agent):
    """A site selling idle capacity, with a ZIP-style adaptive margin.

    The ask starts at ``marginal_cost * (1 + markup)``. After a round in
    which the capacity went unsold, the margin *concedes* toward the cost
    floor (capacity is perishable — an idle device-hour not sold is lost);
    after a fully-sold round it tightens back up. This adaptive scheme is
    the classic mechanism by which continuous double auctions discover the
    competitive equilibrium.

    Attributes
    ----------
    marginal_cost:
        $/device-hour floor (power + amortisation) below which selling
        loses money.
    capacity_per_round:
        Device-hours of idle capacity arriving each round.
    concession:
        Fraction of the remaining margin given up after an unsold round.
    greed:
        Relative ask increase after a fully-sold round.
    """

    def __init__(
        self,
        agent_id: str,
        marginal_cost: float,
        capacity_per_round: float,
        markup: float = 0.5,
        concession: float = 0.25,
        greed: float = 0.05,
    ) -> None:
        super().__init__(agent_id)
        if marginal_cost <= 0 or capacity_per_round <= 0:
            raise MarketError("marginal_cost and capacity must be positive")
        if not 0.0 < concession < 1.0:
            raise MarketError("concession must be in (0, 1)")
        if greed < 0:
            raise MarketError("greed must be non-negative")
        self.marginal_cost = marginal_cost
        self.capacity_per_round = capacity_per_round
        self.concession = concession
        self.greed = greed
        self._ask = marginal_cost * (1.0 + markup)
        self._inventory_at_last_quote = self.inventory

    def quote(self, view: MarketView, rng: RandomSource) -> List[Order]:
        sold_last_round = self._inventory_at_last_quote - self.inventory
        if view.round_index > 0:
            if sold_last_round >= self.capacity_per_round * 0.999:
                self._ask *= 1.0 + self.greed
            elif sold_last_round <= 0:
                margin = self._ask - self.marginal_cost
                self._ask = self.marginal_cost + margin * (1.0 - self.concession)
        self._inventory_at_last_quote = self.inventory
        jitter = 1.0 + rng.normal(0.0, 0.01)
        price = max(self.marginal_cost, self._ask * jitter)
        return [
            Order(
                side=Side.ASK,
                price=price,
                quantity=self.capacity_per_round,
                agent_id=self.agent_id,
                resource=view.resource,
            )
        ]


class ConsumerAgent(Agent):
    """A user buying device-hours, with a ZIP-style adaptive margin.

    The bid starts at 60% of the private valuation; unfilled rounds concede
    upward toward the valuation (deadline pressure), filled rounds probe
    back down. Never bids above the valuation — an extra-marginal consumer
    (valuation below the equilibrium price) simply never trades, exactly as
    theory requires.

    Attributes
    ----------
    valuation:
        Private $/device-hour value of getting the work done.
    demand_per_round:
        Device-hours wanted per round.
    concession:
        Fraction of the bid-to-valuation gap closed after an unfilled round.
    thrift:
        Relative bid decrease after a fully-filled round.
    """

    def __init__(
        self,
        agent_id: str,
        valuation: float,
        demand_per_round: float,
        concession: float = 0.25,
        thrift: float = 0.05,
        patience: int = 20,
    ) -> None:
        super().__init__(agent_id, cash=valuation * demand_per_round * patience)
        if valuation <= 0 or demand_per_round <= 0 or patience <= 0:
            raise MarketError("valuation, demand and patience must be positive")
        if not 0.0 < concession < 1.0:
            raise MarketError("concession must be in (0, 1)")
        if thrift < 0:
            raise MarketError("thrift must be non-negative")
        self.valuation = valuation
        self.demand_per_round = demand_per_round
        self.concession = concession
        self.thrift = thrift
        self.patience = patience
        self._bid = 0.6 * valuation
        self._inventory_at_last_quote = self.inventory

    def quote(self, view: MarketView, rng: RandomSource) -> List[Order]:
        bought_last_round = self.inventory - self._inventory_at_last_quote
        if view.round_index > 0:
            if bought_last_round >= self.demand_per_round * 0.999:
                self._bid *= 1.0 - self.thrift
            elif bought_last_round <= 0:
                gap = self.valuation - self._bid
                self._bid = self.valuation - gap * (1.0 - self.concession)
        self._inventory_at_last_quote = self.inventory
        jitter = 1.0 + rng.normal(0.0, 0.01)
        price = min(self.valuation, max(0.01, self._bid * jitter))
        return [
            Order(
                side=Side.BID,
                price=price,
                quantity=self.demand_per_round,
                agent_id=self.agent_id,
                resource=view.resource,
            )
        ]


class BrokerAgent(Agent):
    """A market maker quoting both sides around the reference price."""

    def __init__(
        self,
        agent_id: str,
        half_spread: float = 0.05,
        quote_size: float = 10.0,
        max_inventory: float = 200.0,
    ) -> None:
        super().__init__(agent_id, cash=10_000.0)
        if half_spread <= 0 or quote_size <= 0 or max_inventory <= 0:
            raise MarketError("broker parameters must be positive")
        self.half_spread = half_spread
        self.quote_size = quote_size
        self.max_inventory = max_inventory

    def quote(self, view: MarketView, rng: RandomSource) -> List[Order]:
        reference = view.reference_price
        if reference is None:
            return []
        # Inventory skew: long inventory lowers both quotes to shed it.
        skew = -0.5 * self.half_spread * (self.inventory / self.max_inventory)
        orders = []
        if self.inventory < self.max_inventory:
            orders.append(
                Order(
                    side=Side.BID,
                    price=max(0.01, reference * (1.0 - self.half_spread + skew)),
                    quantity=self.quote_size,
                    agent_id=self.agent_id,
                    resource=view.resource,
                )
            )
        if self.inventory > -self.max_inventory:
            orders.append(
                Order(
                    side=Side.ASK,
                    price=reference * (1.0 + self.half_spread + skew),
                    quantity=self.quote_size,
                    agent_id=self.agent_id,
                    resource=view.resource,
                )
            )
        return orders


class SpeculatorAgent(Agent):
    """A momentum trader: buys rising markets, sells falling ones."""

    def __init__(
        self,
        agent_id: str,
        window: int = 5,
        trade_size: float = 5.0,
        max_position: float = 50.0,
    ) -> None:
        super().__init__(agent_id, cash=5_000.0)
        if window < 2 or trade_size <= 0 or max_position <= 0:
            raise MarketError("invalid speculator parameters")
        self.window = window
        self.trade_size = trade_size
        self.max_position = max_position

    def quote(self, view: MarketView, rng: RandomSource) -> List[Order]:
        history = view.price_history
        if len(history) < self.window:
            return []
        recent = history[-self.window:]
        momentum = recent[-1] - recent[0]
        reference = view.reference_price or recent[-1]
        if momentum > 0 and self.inventory < self.max_position:
            return [
                Order(
                    side=Side.BID,
                    price=reference * 1.01,
                    quantity=self.trade_size,
                    agent_id=self.agent_id,
                    resource=view.resource,
                )
            ]
        if momentum < 0 and self.inventory > -self.max_position:
            return [
                Order(
                    side=Side.ASK,
                    price=max(0.01, reference * 0.99),
                    quantity=self.trade_size,
                    agent_id=self.agent_id,
                    resource=view.resource,
                )
            ]
        return []
