"""The compute exchange and its round-based market simulation.

:class:`ComputeExchange` hosts one :class:`~repro.market.orderbook.OrderBook`
per :class:`ResourceClass` and settles trades into agent accounts, checking
the paper's "zero-summed game" invariant: cash is conserved across agents
(every dollar a buyer spends lands in a seller's account).

:class:`MarketSimulation` runs rounds: each round every agent quotes, the
books match continuously, and price/volume history is recorded. Equilibrium
detection watches the relative dispersion of recent clearing prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import MarketError
from repro.core.rng import RandomSource
from repro.market.agents import Agent, MarketView
from repro.market.orderbook import OrderBook
from repro.market.orders import Order, Side, Trade


@dataclass(frozen=True)
class ResourceClass:
    """A tradable compute resource class, e.g. GPU-hours.

    ``unit`` is descriptive; the symbol is the book key.
    """

    symbol: str
    description: str = ""
    unit: str = "device-hour"


class ComputeExchange:
    """Books plus settlement accounts for a set of agents."""

    def __init__(self, resources: Sequence[ResourceClass]) -> None:
        if not resources:
            raise MarketError("exchange needs at least one resource class")
        self.resources = {r.symbol: r for r in resources}
        self.books: Dict[str, OrderBook] = {
            r.symbol: OrderBook(r.symbol) for r in resources
        }
        self.agents: Dict[str, Agent] = {}

    def register(self, agent: Agent) -> Agent:
        if agent.agent_id in self.agents:
            raise MarketError(f"duplicate agent id: {agent.agent_id}")
        self.agents[agent.agent_id] = agent
        return agent

    def book(self, symbol: str) -> OrderBook:
        try:
            return self.books[symbol]
        except KeyError:
            raise MarketError(f"unknown resource class: {symbol!r}") from None

    def submit(self, order: Order, now: float = 0.0) -> List[Trade]:
        """Submit an order, match it, and settle resulting trades."""
        if order.agent_id not in self.agents:
            raise MarketError(f"unregistered agent: {order.agent_id}")
        trades = self.book(order.resource).submit(order, now)
        for trade in trades:
            self._settle(trade)
        return trades

    def _settle(self, trade: Trade) -> None:
        buyer = self.agents[trade.buyer_id]
        seller = self.agents[trade.seller_id]
        buyer.on_buy(trade.quantity, trade.price)
        seller.on_sell(trade.quantity, trade.price)

    def total_cash(self) -> float:
        """Sum of all agent cash — conserved by settlement (zero-sum)."""
        return sum(agent.cash for agent in self.agents.values())

    def total_volume(self, symbol: str) -> float:
        return sum(t.quantity for t in self.book(symbol).trades)


class MarketSimulation:
    """Round-based simulation of one resource class's market.

    Parameters
    ----------
    exchange:
        The exchange (agents must already be registered).
    symbol:
        Resource class to simulate.
    clear_books_each_round:
        When True, unfilled resting orders expire at the round boundary
        (capacity is perishable); when False the book persists.
    """

    def __init__(
        self,
        exchange: ComputeExchange,
        symbol: str,
        rng: Optional[RandomSource] = None,
        clear_books_each_round: bool = True,
    ) -> None:
        self.exchange = exchange
        self.symbol = symbol
        self.rng = rng or RandomSource(seed=23, name="market")
        self.clear_books_each_round = clear_books_each_round
        self.price_history: List[float] = []
        self.volume_history: List[float] = []

    def run_round(self, round_index: int) -> None:
        """One market round: all agents quote (in random order), matching live."""
        book = self.exchange.book(self.symbol)
        agents = list(self.exchange.agents.values())
        self.rng.shuffle(agents)
        round_trades: List[Trade] = []
        for agent in agents:
            view = MarketView(
                resource=self.symbol,
                round_index=round_index,
                best_bid=book.best_bid,
                best_ask=book.best_ask,
                last_price=book.last_trade_price(),
                price_history=self.price_history,
            )
            for order in agent.quote(view, self.rng):
                round_trades.extend(self.exchange.submit(order, now=float(round_index)))
        if round_trades:
            volume = sum(t.quantity for t in round_trades)
            vwap = sum(t.notional for t in round_trades) / volume
            self.price_history.append(vwap)
            self.volume_history.append(volume)
        else:
            self.volume_history.append(0.0)
        if self.clear_books_each_round:
            for agent in agents:
                book.cancel_agent_orders(agent.agent_id)

    def run(self, rounds: int) -> None:
        """Run ``rounds`` market rounds."""
        if rounds <= 0:
            raise MarketError("rounds must be positive")
        start = len(self.volume_history)
        for round_index in range(start, start + rounds):
            self.run_round(round_index)

    # --- analysis -----------------------------------------------------------

    def equilibrium_round(self, window: int = 10, tolerance: float = 0.02) -> Optional[int]:
        """First round after which prices stay within ``tolerance`` relative
        dispersion over a trailing ``window`` — the paper's "eventually
        reaches equilibrium". None if never converged."""
        prices = self.price_history
        if len(prices) < window:
            return None
        for end in range(window, len(prices) + 1):
            segment = np.asarray(prices[end - window:end])
            mean = float(segment.mean())
            if mean > 0 and float(segment.std()) / mean <= tolerance:
                return end - window
        return None

    def mean_price(self, last: Optional[int] = None) -> float:
        prices = self.price_history[-last:] if last else self.price_history
        if not prices:
            raise MarketError("no trades occurred")
        return float(np.mean(prices))

    def fill_rate(self, offered_per_round: float) -> float:
        """Mean traded volume over offered capacity per round — the market's
        utilisation of perishable capacity."""
        if offered_per_round <= 0:
            raise MarketError("offered_per_round must be positive")
        if not self.volume_history:
            return 0.0
        return float(np.mean(self.volume_history)) / offered_per_round
