"""Orders and trades for the compute exchange."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import MarketError

_order_ids = itertools.count()


class Side(Enum):
    """Order side: BID buys compute, ASK sells it."""

    BID = "bid"
    ASK = "ask"


@dataclass
class Order:
    """A limit order for a quantity of a resource class.

    Attributes
    ----------
    side:
        BID (consumer buying device-hours) or ASK (provider selling).
    price:
        Limit price in dollars per device-hour.
    quantity:
        Device-hours offered or wanted (reduced as fills occur).
    agent_id:
        The submitting agent (settlement account key).
    resource:
        Resource class symbol, e.g. ``'gpu-hour'``.
    timestamp:
        Submission time; earlier orders at equal price match first.
    """

    side: Side
    price: float
    quantity: float
    agent_id: str
    resource: str
    timestamp: float = 0.0
    order_id: int = field(default_factory=lambda: next(_order_ids))

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise MarketError(f"order price must be positive: {self.price}")
        if self.quantity <= 0:
            raise MarketError(f"order quantity must be positive: {self.quantity}")

    @property
    def is_filled(self) -> bool:
        return self.quantity <= 1e-12


@dataclass(frozen=True)
class Trade:
    """An executed match between a bid and an ask.

    The execution price is the resting (earlier) order's limit price, per
    standard continuous-auction rules.
    """

    resource: str
    price: float
    quantity: float
    buyer_id: str
    seller_id: str
    timestamp: float

    @property
    def notional(self) -> float:
        """Dollar value of the trade."""
        return self.price * self.quantity
