"""The Open Compute Exchange: a market for compute resources.

The paper (§III.F): "an Open Compute Exchange would enable trading of
resources between sites and users, providers and consumers, and would pave
the way to a true commoditization of workflows ... the underlying economic
model is nothing but a non-cooperative, zero-summed game, that eventually
reaches equilibrium."

Components:

* :mod:`repro.market.orders` / :mod:`repro.market.orderbook` — limit
  orders and a price-time-priority book with a matching engine,
* :mod:`repro.market.exchange` — the exchange: instruments (resource
  classes), clearing, and zero-sum settlement accounting,
* :mod:`repro.market.agents` — provider, consumer, broker (market maker)
  and speculator strategies, as the paper enumerates,
* :mod:`repro.market.equilibrium` — theoretical supply/demand equilibrium
  to validate that the simulated market converges to it.
"""

from repro.market.agents import (
    Agent,
    BrokerAgent,
    ConsumerAgent,
    ProviderAgent,
    SpeculatorAgent,
)
from repro.market.equilibrium import clearing_price, demand_at, supply_at
from repro.market.exchange import ComputeExchange, MarketSimulation, ResourceClass
from repro.market.orderbook import OrderBook
from repro.market.orders import Order, Side, Trade
from repro.market.procurement import (
    CapacityOffer,
    CapacityProcurer,
    ProcurementResult,
    market_savings,
    on_demand_cost,
)

__all__ = [
    "Agent",
    "BrokerAgent",
    "CapacityOffer",
    "CapacityProcurer",
    "ComputeExchange",
    "ProcurementResult",
    "market_savings",
    "on_demand_cost",
    "ConsumerAgent",
    "MarketSimulation",
    "Order",
    "OrderBook",
    "ProviderAgent",
    "ResourceClass",
    "Side",
    "SpeculatorAgent",
    "Trade",
    "clearing_price",
    "demand_at",
    "supply_at",
]
