"""Market-backed capacity procurement: the exchange meets the scheduler.

The paper (§III.F): the exchange enables "trading of resources between
sites and users, providers and consumers" and "a true commoditization of
workflows". This module closes the loop between the federation and the
market: sites offer their *idle* capacity as asks, and a
:class:`CapacityProcurer` turns a job backlog into bids, acquiring
device-hours at market prices instead of a fixed on-demand rate.

The headline comparison: procurement cost at market vs the single
provider's posted on-demand price — the "more liquid" market of the paper
should price work at (or near) the marginal provider's cost rather than
the posted premium.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, MarketError
from repro.core.rng import RandomSource
from repro.federation.site import Site
from repro.market.exchange import ComputeExchange, ResourceClass
from repro.market.orderbook import OrderBook
from repro.market.orders import Order, Side, Trade


@dataclass
class CapacityOffer:
    """A site's idle capacity offered on the exchange.

    ``idle_fraction`` of the site's devices of the named model are listed
    per round at ``floor_price`` (the site's marginal cost).
    """

    site: Site
    device_name: str
    idle_fraction: float
    floor_price: float

    def __post_init__(self) -> None:
        if not 0.0 < self.idle_fraction <= 1.0:
            raise ConfigurationError("idle_fraction must be in (0, 1]")
        if self.floor_price <= 0:
            raise ConfigurationError("floor_price must be positive")

    def device_hours_per_round(self) -> float:
        count = sum(
            installed
            for device, installed in self.site.devices.items()
            if device.name == self.device_name
        )
        return count * self.idle_fraction


@dataclass(frozen=True)
class ProcurementResult:
    """Outcome of procuring a demand through the market."""

    requested_hours: float
    acquired_hours: float
    total_cost: float
    trades: Tuple[Trade, ...]

    @property
    def fill_rate(self) -> float:
        if self.requested_hours == 0:
            return 1.0
        return self.acquired_hours / self.requested_hours

    @property
    def average_price(self) -> float:
        if self.acquired_hours == 0:
            raise MarketError("nothing was acquired")
        return self.total_cost / self.acquired_hours


class CapacityProcurer:
    """Buys device-hours on an exchange for a job backlog.

    Parameters
    ----------
    exchange:
        The exchange; a resource class per device model is created lazily.
    buyer_id:
        Settlement account for purchases (registered as a passive agent).
    max_price:
        Bid ceiling in $/device-hour (the consumer's valuation — typically
        the posted on-demand price, above which buying makes no sense).
    """

    def __init__(
        self,
        exchange: ComputeExchange,
        buyer_id: str,
        max_price: float,
    ) -> None:
        if max_price <= 0:
            raise ConfigurationError("max_price must be positive")
        self.exchange = exchange
        self.buyer_id = buyer_id
        self.max_price = max_price

    def list_offers(
        self, offers: Sequence[CapacityOffer], now: float = 0.0
    ) -> None:
        """Place each site's idle capacity as asks on the matching book."""
        for offer in offers:
            symbol = f"{offer.device_name}-hour"
            if symbol not in self.exchange.resources:
                raise MarketError(
                    f"exchange has no resource class {symbol!r}; "
                    "create the exchange with one class per device model"
                )
            seller_id = f"{offer.site.name}/{offer.device_name}"
            if seller_id not in self.exchange.agents:
                raise MarketError(f"seller {seller_id!r} not registered")
            self.exchange.submit(
                Order(
                    side=Side.ASK,
                    price=offer.floor_price,
                    quantity=offer.device_hours_per_round(),
                    agent_id=seller_id,
                    resource=symbol,
                ),
                now=now,
            )

    def procure(
        self, device_name: str, device_hours: float, now: float = 0.0
    ) -> ProcurementResult:
        """Buy up to ``device_hours`` at or below ``max_price``."""
        if device_hours <= 0:
            raise ConfigurationError("device_hours must be positive")
        symbol = f"{device_name}-hour"
        trades = self.exchange.submit(
            Order(
                side=Side.BID,
                price=self.max_price,
                quantity=device_hours,
                agent_id=self.buyer_id,
                resource=symbol,
            ),
            now=now,
        )
        # Cancel any resting remainder: procurement is immediate-or-cancel.
        book = self.exchange.book(symbol)
        book.cancel_agent_orders(self.buyer_id)
        acquired = sum(t.quantity for t in trades)
        cost = sum(t.notional for t in trades)
        return ProcurementResult(
            requested_hours=device_hours,
            acquired_hours=acquired,
            total_cost=cost,
            trades=tuple(trades),
        )


def on_demand_cost(device_hours: float, posted_price: float) -> float:
    """The fixed-provider baseline: everything at the posted rate."""
    if device_hours < 0 or posted_price < 0:
        raise ConfigurationError("invalid on-demand parameters")
    return device_hours * posted_price


def market_savings(result: ProcurementResult, posted_price: float) -> float:
    """Relative saving of market procurement vs the posted on-demand rate
    for the hours actually acquired."""
    baseline = on_demand_cost(result.acquired_hours, posted_price)
    if baseline == 0:
        return 0.0
    return 1.0 - result.total_cost / baseline
