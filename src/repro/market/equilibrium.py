"""Theoretical supply/demand equilibrium for validating the simulated market.

Given provider cost floors (each supplying its capacity when price >= cost)
and consumer valuations (each demanding its quantity when price <= value),
the competitive equilibrium price is where aggregate supply meets aggregate
demand. The C10 experiment checks that the agent-based simulation's
clearing price converges near this value — the paper's "the market is
always right" equilibrium.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.errors import MarketError

#: (threshold_price, quantity) pairs: a supplier sells ``quantity`` at any
#: price >= threshold; a consumer buys ``quantity`` at any price <= threshold.
Curve = Sequence[Tuple[float, float]]


def supply_at(price: float, suppliers: Curve) -> float:
    """Aggregate quantity supplied at a price."""
    if price < 0:
        raise MarketError("price must be non-negative")
    return sum(quantity for cost, quantity in suppliers if price >= cost)


def demand_at(price: float, consumers: Curve) -> float:
    """Aggregate quantity demanded at a price."""
    if price < 0:
        raise MarketError("price must be non-negative")
    return sum(quantity for valuation, quantity in consumers if price <= valuation)


def clearing_price(
    suppliers: Curve, consumers: Curve, unit: float = 1.0
) -> Tuple[float, float]:
    """The competitive equilibrium ``(price, quantity)``.

    Uses the standard double-auction breakeven construction: expand both
    curves into ``unit``-sized steps, sort supply ascending by cost and
    demand descending by valuation, and find the largest quantity ``q*``
    where the q-th buyer still values the unit at or above the q-th
    seller's cost. The equilibrium price is the midpoint of the breakeven
    interval ``[cost(q*), valuation(q*)]`` — with step curves the
    equilibrium is an interval and any point in it clears the market.
    """
    if not suppliers or not consumers:
        raise MarketError("need at least one supplier and one consumer")
    if unit <= 0:
        raise MarketError("unit must be positive")
    asks: List[float] = []
    for cost, quantity in suppliers:
        asks.extend([cost] * int(round(quantity / unit)))
    bids: List[float] = []
    for valuation, quantity in consumers:
        bids.extend([valuation] * int(round(quantity / unit)))
    asks.sort()
    bids.sort(reverse=True)
    matched = 0
    for ask, bid in zip(asks, bids):
        if bid >= ask:
            matched += 1
        else:
            break
    if matched == 0:
        # No gains from trade: price settles between the best ask and bid.
        price = (asks[0] + bids[0]) / 2.0
        return price, 0.0
    lower = asks[matched - 1]
    upper = bids[matched - 1]
    # Competition from the first excluded traders tightens the interval.
    if matched < len(asks):
        upper = min(upper, max(asks[matched], lower))
    if matched < len(bids):
        lower = max(lower, min(bids[matched], upper))
    price = (lower + upper) / 2.0
    return price, matched * unit


def allocative_efficiency(
    traded_quantity: float, suppliers: Curve, consumers: Curve
) -> float:
    """Traded volume over the equilibrium volume (1.0 = fully efficient).

    Values can exceed 1 when speculation churns volume beyond fundamentals.
    """
    if traded_quantity < 0:
        raise MarketError("traded_quantity must be non-negative")
    _, equilibrium_quantity = clearing_price(suppliers, consumers)
    if equilibrium_quantity == 0:
        return 0.0
    return traded_quantity / equilibrium_quantity
