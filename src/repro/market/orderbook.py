"""A price-time-priority limit order book with continuous matching.

Bids are kept best (highest) first, asks best (lowest) first; an incoming
order crosses the book while prices overlap, executing at the resting
order's price — the standard continuous double auction used by the
commodity exchanges the paper invokes ("similar to existing commodity
exchange, e.g., the Chicago Mercantile", §III.F).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.core.errors import MarketError
from repro.market.orders import Order, Side, Trade


class OrderBook:
    """One resource class's resting orders and trade tape."""

    def __init__(self, resource: str) -> None:
        self.resource = resource
        self._bids: List[Order] = []  # sorted descending by (price, -time)
        self._asks: List[Order] = []  # sorted ascending by (price, time)
        self.trades: List[Trade] = []

    # --- views ------------------------------------------------------------------

    @property
    def best_bid(self) -> Optional[float]:
        return self._bids[0].price if self._bids else None

    @property
    def best_ask(self) -> Optional[float]:
        return self._asks[0].price if self._asks else None

    @property
    def spread(self) -> Optional[float]:
        if self._bids and self._asks:
            return self._asks[0].price - self._bids[0].price
        return None

    @property
    def mid_price(self) -> Optional[float]:
        if self._bids and self._asks:
            return (self._asks[0].price + self._bids[0].price) / 2.0
        return None

    def last_trade_price(self) -> Optional[float]:
        return self.trades[-1].price if self.trades else None

    def depth(self, side: Side) -> float:
        """Total resting quantity on a side."""
        book = self._bids if side is Side.BID else self._asks
        return sum(order.quantity for order in book)

    def resting_orders(self, side: Side) -> List[Order]:
        return list(self._bids if side is Side.BID else self._asks)

    # --- matching -------------------------------------------------------------------

    def submit(self, order: Order, now: float = 0.0) -> List[Trade]:
        """Match an incoming order against the book; rest any remainder.

        Returns the trades executed. Raises for wrong-resource orders.
        """
        if order.resource != self.resource:
            raise MarketError(
                f"order for {order.resource!r} submitted to {self.resource!r} book"
            )
        order.timestamp = now
        executed: List[Trade] = []
        if order.side is Side.BID:
            executed = self._match(order, self._asks, now)
            if not order.is_filled:
                self._insert_bid(order)
        else:
            executed = self._match(order, self._bids, now)
            if not order.is_filled:
                self._insert_ask(order)
        self.trades.extend(executed)
        return executed

    def _match(self, incoming: Order, book: List[Order], now: float) -> List[Trade]:
        trades: List[Trade] = []
        while book and not incoming.is_filled:
            resting = book[0]
            crosses = (
                incoming.price >= resting.price
                if incoming.side is Side.BID
                else incoming.price <= resting.price
            )
            if not crosses:
                break
            quantity = min(incoming.quantity, resting.quantity)
            buyer = incoming if incoming.side is Side.BID else resting
            seller = resting if incoming.side is Side.BID else incoming
            trades.append(
                Trade(
                    resource=self.resource,
                    price=resting.price,
                    quantity=quantity,
                    buyer_id=buyer.agent_id,
                    seller_id=seller.agent_id,
                    timestamp=now,
                )
            )
            incoming.quantity -= quantity
            resting.quantity -= quantity
            if resting.is_filled:
                book.pop(0)
        return trades

    def _insert_bid(self, order: Order) -> None:
        keys = [(-o.price, o.timestamp, o.order_id) for o in self._bids]
        bisect.insort(keys, (-order.price, order.timestamp, order.order_id))
        index = keys.index((-order.price, order.timestamp, order.order_id))
        self._bids.insert(index, order)

    def _insert_ask(self, order: Order) -> None:
        keys = [(o.price, o.timestamp, o.order_id) for o in self._asks]
        bisect.insort(keys, (order.price, order.timestamp, order.order_id))
        index = keys.index((order.price, order.timestamp, order.order_id))
        self._asks.insert(index, order)

    # --- maintenance ------------------------------------------------------------------

    def cancel(self, order_id: int) -> bool:
        """Remove a resting order by id; returns whether it was found."""
        for book in (self._bids, self._asks):
            for index, order in enumerate(book):
                if order.order_id == order_id:
                    book.pop(index)
                    return True
        return False

    def cancel_agent_orders(self, agent_id: str) -> int:
        """Cancel all resting orders of an agent; returns the count."""
        removed = 0
        for book in (self._bids, self._asks):
            keep = [o for o in book if o.agent_id != agent_id]
            removed += len(book) - len(keep)
            book[:] = keep
        return removed

    def is_crossed(self) -> bool:
        """A healthy book is never crossed after matching."""
        if self._bids and self._asks:
            return self._bids[0].price >= self._asks[0].price
        return False
