"""Base device abstraction shared by all processor and accelerator models.

A :class:`Device` answers, for a kernel described by a
:class:`KernelProfile`, how long it takes and how much energy it burns.
The default implementation is a derated roofline; specialised accelerators
(systolic arrays, analog engines, ...) override :meth:`Device.time_for` to
capture their structural behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.core.errors import ConfigurationError
from repro.hardware.precision import Precision
from repro.hardware.roofline import RooflineModel

_device_ids = itertools.count()


class DeviceKind(Enum):
    """Broad device classes used by schedulers and catalogs."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    SYSTOLIC = "systolic"
    WAFER_SCALE = "wafer_scale"
    ANALOG = "analog"
    OPTICAL = "optical"
    EDGE_INFERENCE = "edge_inference"


@dataclass(frozen=True)
class KernelProfile:
    """A device-independent description of one computational kernel.

    Attributes
    ----------
    flops:
        Total floating-point (or MAC-equivalent) operations.
    bytes_moved:
        Bytes transferred to/from device memory.
    precision:
        Numeric format the kernel requests.
    mvm_dimension:
        For matrix-vector-multiply-shaped kernels, the vector length N.
        Analog and optical engines use this to apply their O(N) cost model;
        ``None`` means "not an MVM kernel".
    parallel_fraction:
        Fraction of work that parallelises across the device (Amdahl term).
    """

    flops: float
    bytes_moved: float
    precision: Precision = Precision.FP32
    mvm_dimension: Optional[int] = None
    parallel_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ConfigurationError("flops and bytes_moved must be non-negative")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ConfigurationError(
                f"parallel_fraction must be in [0, 1]: {self.parallel_fraction}"
            )
        if self.mvm_dimension is not None and self.mvm_dimension <= 0:
            raise ConfigurationError(
                f"mvm_dimension must be positive: {self.mvm_dimension}"
            )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte; infinite-intensity kernels report a large number."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device's capability and cost envelope.

    Attributes
    ----------
    name:
        Human-readable model name (unique within a catalog).
    kind:
        Broad device class.
    peak_flops:
        Peak throughput per precision, FLOP/s. Missing precisions are
        unsupported natively (the device model may emulate via a wider one).
    memory_bandwidth:
        Device memory bandwidth, bytes/s.
    memory_capacity:
        Device memory capacity, bytes.
    tdp:
        Thermal design power, watts (power at full load).
    idle_power:
        Power when idle, watts.
    efficiency:
        Sustained fraction of peak achievable on real kernels (derating).
    unit_cost:
        Acquisition cost in dollars (used by economics and market models).
    """

    name: str
    kind: DeviceKind
    peak_flops: Dict[Precision, float]
    memory_bandwidth: float
    memory_capacity: float
    tdp: float
    idle_power: float = 0.0
    efficiency: float = 0.7
    unit_cost: float = 10_000.0

    def __post_init__(self) -> None:
        if not self.peak_flops:
            raise ConfigurationError(f"{self.name}: peak_flops must not be empty")
        if any(v <= 0 for v in self.peak_flops.values()):
            raise ConfigurationError(f"{self.name}: peak_flops entries must be positive")
        if self.memory_bandwidth <= 0 or self.memory_capacity <= 0:
            raise ConfigurationError(f"{self.name}: memory parameters must be positive")
        if self.tdp <= 0 or self.idle_power < 0 or self.idle_power > self.tdp:
            raise ConfigurationError(
                f"{self.name}: require 0 <= idle_power <= tdp, tdp > 0"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: efficiency must be in (0, 1]")

    def supports(self, precision: Precision) -> bool:
        """Whether the device natively executes this precision."""
        return precision in self.peak_flops


class Device:
    """Executable device model built from a :class:`DeviceSpec`.

    The base model is a derated roofline per supported precision. Subclasses
    refine timing (utilisation, conversion overheads, O(N) analog physics)
    by overriding :meth:`time_for`.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.device_id = next(_device_ids)
        self._rooflines = {
            precision: RooflineModel(
                peak_flops=peak * spec.efficiency,
                memory_bandwidth=spec.memory_bandwidth,
            )
            for precision, peak in spec.peak_flops.items()
        }

    # --- capability -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> DeviceKind:
        return self.spec.kind

    def supports(self, precision: Precision) -> bool:
        return self.spec.supports(precision)

    def roofline(self, precision: Precision) -> RooflineModel:
        """The derated roofline for a supported precision."""
        try:
            return self._rooflines[precision]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} does not support {precision}"
            ) from None

    def sustained_flops(self, precision: Precision) -> float:
        """Derated peak throughput at a precision."""
        return self.roofline(precision).peak_flops

    # --- execution model ---------------------------------------------------

    def time_for(self, kernel: KernelProfile) -> float:
        """Execution time in seconds for a kernel on this device.

        The base model applies the roofline bound then an Amdahl correction
        for the kernel's serial fraction (serial work runs at 2% of peak —
        a single lane of a wide device).
        """
        roofline = self.roofline(kernel.precision)
        parallel_time = roofline.time_for(
            kernel.flops * kernel.parallel_fraction, kernel.bytes_moved
        )
        serial_flops = kernel.flops * (1.0 - kernel.parallel_fraction)
        serial_time = serial_flops / (roofline.peak_flops * 0.02) if serial_flops else 0.0
        return parallel_time + serial_time

    def energy_for(self, kernel: KernelProfile) -> float:
        """Energy in joules: TDP while busy (simple full-power model)."""
        return self.time_for(kernel) * self.spec.tdp

    def throughput_for(self, kernel: KernelProfile) -> float:
        """Achieved FLOP/s on the kernel (0 for zero-flop kernels)."""
        elapsed = self.time_for(kernel)
        if elapsed == 0:
            return 0.0
        return kernel.flops / elapsed

    def energy_efficiency(self, kernel: KernelProfile) -> float:
        """FLOPs per joule on the kernel."""
        energy = self.energy_for(kernel)
        if energy == 0:
            return 0.0
        return kernel.flops / energy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
