"""Wafer-scale engine model.

The paper (§III.B): "Some ambitious designs (like Cerebras) even take
advantage of wafer-scale integration to further reduce the communication
overhead, by widening the chiplet-to-chiplet paths that a notebook-sized
piece of silicon enables."

Model
-----
A wafer of ``tiles`` compute tiles connected by an on-wafer mesh whose
bisection bandwidth is one to two orders of magnitude above off-package
links. The structural effect captured here is *communication locality*: for
model-parallel workloads, the inter-tile traffic that a GPU cluster would
push through NICs stays on-wafer. The model exposes a ``fits_on_wafer``
predicate (SRAM-only capacity is the hard constraint Cerebras-class parts
have) and a weak-scaling efficiency estimate versus an off-wafer cluster.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile


class WaferScaleEngine(Device):
    """A wafer-scale AI accelerator.

    Parameters
    ----------
    spec:
        Device spec (kind must be ``WAFER_SCALE``). ``memory_capacity`` is
        the *on-wafer SRAM* (small — the defining constraint),
        ``memory_bandwidth`` the aggregate SRAM bandwidth (huge).
    tiles:
        Number of compute tiles on the wafer.
    fabric_bandwidth:
        Aggregate on-wafer interconnect bandwidth, bytes/s.
    tile_hop_latency:
        Per-hop latency of the on-wafer mesh, seconds.
    yield_fraction:
        Fraction of tiles usable after defect harvesting (wafer-scale parts
        route around bad tiles).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        tiles: int = 400_000,
        fabric_bandwidth: float = 100e12,
        tile_hop_latency: float = 5e-9,
        yield_fraction: float = 0.98,
    ) -> None:
        if spec.kind is not DeviceKind.WAFER_SCALE:
            raise ValueError(
                f"wafer-scale model requires WAFER_SCALE spec, got {spec.kind}"
            )
        super().__init__(spec)
        if tiles <= 0 or fabric_bandwidth <= 0 or tile_hop_latency <= 0:
            raise ConfigurationError("wafer parameters must be positive")
        if not 0.0 < yield_fraction <= 1.0:
            raise ConfigurationError("yield_fraction must be in (0, 1]")
        self.tiles = tiles
        self.fabric_bandwidth = fabric_bandwidth
        self.tile_hop_latency = tile_hop_latency
        self.yield_fraction = yield_fraction

    @property
    def usable_tiles(self) -> int:
        """Tiles remaining after defect harvesting."""
        return int(self.tiles * self.yield_fraction)

    def fits_on_wafer(self, model_bytes: float) -> bool:
        """Whether a model's working set fits in on-wafer SRAM."""
        if model_bytes < 0:
            raise ValueError("model_bytes must be non-negative")
        return model_bytes <= self.spec.memory_capacity

    def mesh_diameter_latency(self) -> float:
        """Corner-to-corner latency of the on-wafer mesh."""
        side = math.ceil(math.sqrt(self.usable_tiles))
        return 2.0 * side * self.tile_hop_latency

    def communication_time(self, traffic_bytes: float) -> float:
        """Time to move model-parallel traffic across the on-wafer fabric."""
        if traffic_bytes < 0:
            raise ValueError("traffic_bytes must be non-negative")
        return self.mesh_diameter_latency() + traffic_bytes / self.fabric_bandwidth

    def time_for(self, kernel: KernelProfile) -> float:
        # On-wafer SRAM means the memory term of the roofline is rarely the
        # bound; the base model handles it. The structural adjustment is for
        # working sets that do NOT fit: off-wafer streaming collapses the
        # bandwidth to the (comparatively tiny) I/O bandwidth, modelled as a
        # 50x derate.
        if kernel.bytes_moved > self.spec.memory_capacity:
            spill = kernel.bytes_moved - self.spec.memory_capacity
            spill_time = spill / (self.spec.memory_bandwidth / 50.0)
            resident_kernel = KernelProfile(
                flops=kernel.flops,
                bytes_moved=self.spec.memory_capacity,
                precision=kernel.precision,
                mvm_dimension=kernel.mvm_dimension,
                parallel_fraction=kernel.parallel_fraction,
            )
            return super().time_for(resident_kernel) + spill_time
        return super().time_for(kernel)
