"""Hardware models: processors, accelerators, power and cooling.

This subpackage models the "diversifying heterogeneity" of compute silicon
the paper describes (§III.B): conventional CPUs and GPUs, first-wave
PCIe-attached accelerators, second-wave standalone training systems
(TPU-like systolic arrays, wafer-scale engines), edge inference parts, and
"neuromorphic" analog/optical dot-product engines that turn an O(N^2)
matrix-vector multiply into an O(N) operation.

Every device derives from :class:`~repro.hardware.device.Device` and answers
two questions for a kernel described by (flops, bytes, precision):

* how long does it take? (:meth:`~repro.hardware.device.Device.time_for`)
* how much energy does it burn? (:meth:`~repro.hardware.device.Device.energy_for`)

The analytical backbone is the roofline model in
:mod:`repro.hardware.roofline`; specialised devices refine it with
utilisation, precision and conversion-overhead terms.
"""

from repro.hardware.analog import AnalogDotProductEngine
from repro.hardware.catalog import DeviceCatalog, default_catalog
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile
from repro.hardware.edge import EdgeInferenceAccelerator
from repro.hardware.optical import OpticalMVMEngine
from repro.hardware.power import (
    CoolingTechnology,
    DatacenterPowerModel,
    RackPowerModel,
)
from repro.hardware.precision import Precision
from repro.hardware.processors import CPU, GPU, FPGA
from repro.hardware.reliability import (
    DEVICE_TECHNOLOGY,
    TECHNOLOGIES,
    MemoryReliabilitySpec,
    device_upset_rate,
    reliability_for,
)
from repro.hardware.roofline import RooflineModel
from repro.hardware.systolic import SystolicArrayAccelerator
from repro.hardware.technology import (
    GENERAL_PURPOSE,
    SPECIALIZED,
    ArchitectureModel,
    ProcessNode,
    default_roadmap,
    dennard_break_year,
)
from repro.hardware.wafer_scale import WaferScaleEngine

__all__ = [
    "AnalogDotProductEngine",
    "ArchitectureModel",
    "CPU",
    "GENERAL_PURPOSE",
    "ProcessNode",
    "SPECIALIZED",
    "CoolingTechnology",
    "DatacenterPowerModel",
    "Device",
    "DeviceCatalog",
    "DeviceKind",
    "DeviceSpec",
    "EdgeInferenceAccelerator",
    "FPGA",
    "GPU",
    "KernelProfile",
    "DEVICE_TECHNOLOGY",
    "TECHNOLOGIES",
    "MemoryReliabilitySpec",
    "device_upset_rate",
    "reliability_for",
    "OpticalMVMEngine",
    "Precision",
    "RackPowerModel",
    "RooflineModel",
    "SystolicArrayAccelerator",
    "WaferScaleEngine",
    "default_catalog",
    "default_roadmap",
    "dennard_break_year",
]
