"""Memory-reliability catalog: FIT rates per device memory technology.

The paper's sustainability and resiliency arguments (denser pooled
memory, tighter power envelopes) imply memory itself is a failure
domain, not just nodes and links.  This module gives every catalog
device a :class:`MemoryReliabilitySpec` — the soft-error envelope of its
memory technology expressed in FIT (Failures In Time, upsets per 10^9
device-hours) per GiB — so :mod:`repro.resilience.memerrors` can derive
upset rates from a device's :attr:`~repro.hardware.device.DeviceSpec.memory_capacity`
instead of hand-set MTBFs.

Numbers are order-of-magnitude realistic for the paper's 2021 timeframe
(field studies put DRAM at 10^4-10^5 FIT/Mbit of *raw* upsets; what
matters for every experiment here is the relative shape across
technologies, not vendor-exact rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.core.errors import ConfigurationError

GIB = 1024.0 ** 3

#: Seconds in 10^9 hours — the FIT denominator.
FIT_HOURS = 1e9
SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class MemoryReliabilitySpec:
    """The soft-error envelope of one memory technology.

    Attributes
    ----------
    technology:
        Memory technology label ("dram", "hbm", "sram", "lpddr").
    fit_per_gib:
        Raw upset rate in FIT per GiB of capacity (corrected + DUE +
        silent together; the ECC policy decides the split).
    mbu_fraction:
        Fraction of upsets that are clustered multi-bit upsets rather
        than single-bit flips.
    mbu_cluster_mean:
        Mean bits per MBU cluster (minimum cluster is 2 bits; the excess
        over 2 is geometric).
    accumulation_time:
        Phenomenological time constant for correctable-error
        accumulation: a correctable upset escalates to uncorrectable
        with probability ``interval / (interval + accumulation_time)``
        under a patrol scrub of period ``interval`` (no scrubbing
        escalates with certainty in the limit).  See
        :class:`repro.resilience.memerrors.ScrubPolicy`.
    """

    technology: str
    fit_per_gib: float
    mbu_fraction: float = 0.03
    mbu_cluster_mean: float = 3.0
    accumulation_time: float = 14_400.0

    def __post_init__(self) -> None:
        if self.fit_per_gib <= 0:
            raise ConfigurationError(
                f"{self.technology}: fit_per_gib must be positive"
            )
        if not 0.0 <= self.mbu_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.technology}: mbu_fraction must be in [0, 1]"
            )
        if self.mbu_cluster_mean < 2.0:
            raise ConfigurationError(
                f"{self.technology}: mbu_cluster_mean must be >= 2 "
                f"(clusters have at least two bits): {self.mbu_cluster_mean}"
            )
        if self.accumulation_time <= 0:
            raise ConfigurationError(
                f"{self.technology}: accumulation_time must be positive"
            )

    def upset_rate(self, capacity_bytes: float) -> float:
        """Raw upsets per second across ``capacity_bytes`` of this memory."""
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive: {capacity_bytes}"
            )
        gib = capacity_bytes / GIB
        return self.fit_per_gib * gib / (FIT_HOURS * SECONDS_PER_HOUR)


#: Technology envelopes.  HBM stacks run hotter and denser than DDR
#: DIMMs (higher raw FIT, larger clusters); on-wafer/on-chip SRAM is the
#: most upset-prone per bit; LPDDR edge parts trade density for a lower
#: envelope.
TECHNOLOGIES: Dict[str, MemoryReliabilitySpec] = {
    "dram": MemoryReliabilitySpec(
        "dram", fit_per_gib=6_000.0, mbu_fraction=0.03,
        mbu_cluster_mean=3.0, accumulation_time=14_400.0,
    ),
    "hbm": MemoryReliabilitySpec(
        "hbm", fit_per_gib=15_000.0, mbu_fraction=0.06,
        mbu_cluster_mean=4.0, accumulation_time=10_800.0,
    ),
    "sram": MemoryReliabilitySpec(
        "sram", fit_per_gib=40_000.0, mbu_fraction=0.10,
        mbu_cluster_mean=4.0, accumulation_time=7_200.0,
    ),
    "lpddr": MemoryReliabilitySpec(
        "lpddr", fit_per_gib=4_000.0, mbu_fraction=0.02,
        mbu_cluster_mean=3.0, accumulation_time=21_600.0,
    ),
}

#: Which technology each default-catalog device carries.
DEVICE_TECHNOLOGY: Dict[str, str] = {
    "epyc-class-cpu": "dram",
    "hpc-gpu": "hbm",
    "tpu-like": "hbm",
    "wafer-scale-engine": "sram",
    "datacenter-fpga": "dram",
    "analog-dpe": "sram",
    "optical-mvm": "sram",
    "edge-npu": "lpddr",
}


def reliability_for(device: Union[str, object]) -> MemoryReliabilitySpec:
    """The :class:`MemoryReliabilitySpec` for a catalog device.

    Accepts a device name, a :class:`~repro.hardware.device.Device` or a
    :class:`~repro.hardware.device.DeviceSpec`.  Unknown devices get a
    helpful error naming what the catalog knows.
    """
    name = device if isinstance(device, str) else getattr(device, "name", None)
    if not isinstance(name, str):
        raise ConfigurationError(
            f"cannot derive a device name from {device!r}"
        )
    try:
        technology = DEVICE_TECHNOLOGY[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_TECHNOLOGY))
        raise ConfigurationError(
            f"no memory-reliability entry for device {name!r}; "
            f"catalog covers: {known}"
        ) from None
    return TECHNOLOGIES[technology]


def device_upset_rate(device: Union[str, object],
                      capacity_bytes: float) -> float:
    """Raw upsets per second for ``capacity_bytes`` on a catalog device."""
    return reliability_for(device).upset_rate(capacity_bytes)
