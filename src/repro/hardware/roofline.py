"""The roofline performance model.

The paper calls out "arithmetic intensity rooflines" as one of the
established HPC rules of thumb (§III.B). The roofline model bounds attainable
throughput by ``min(peak_flops, memory_bandwidth * arithmetic_intensity)``
where arithmetic intensity is FLOPs per byte moved from memory.

:class:`RooflineModel` is the analytical backbone of every digital device
model in :mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class RooflineModel:
    """A single-level roofline: compute ceiling plus one bandwidth slope.

    Parameters
    ----------
    peak_flops:
        Compute ceiling in FLOP/s.
    memory_bandwidth:
        Sustained memory bandwidth in bytes/s.
    """

    peak_flops: float
    memory_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigurationError(f"peak_flops must be positive: {self.peak_flops}")
        if self.memory_bandwidth <= 0:
            raise ConfigurationError(
                f"memory_bandwidth must be positive: {self.memory_bandwidth}"
            )

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOP/byte) where the model turns compute bound."""
        return self.peak_flops / self.memory_bandwidth

    def attainable_flops(self, arithmetic_intensity: float) -> float:
        """Attainable throughput (FLOP/s) at a given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise ValueError(
                f"arithmetic intensity must be non-negative: {arithmetic_intensity}"
            )
        if arithmetic_intensity == 0:
            return 0.0
        return min(self.peak_flops, self.memory_bandwidth * arithmetic_intensity)

    def is_compute_bound(self, arithmetic_intensity: float) -> bool:
        """Whether a kernel at this intensity hits the compute ceiling."""
        return arithmetic_intensity >= self.ridge_point

    def time_for(self, flops: float, bytes_moved: float) -> float:
        """Execution time lower bound for a kernel.

        The kernel needs ``flops`` operations and moves ``bytes_moved`` bytes;
        the roofline time is the max of the compute time and the memory time
        (perfect overlap assumption).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        compute_time = flops / self.peak_flops
        memory_time = bytes_moved / self.memory_bandwidth
        return max(compute_time, memory_time)

    def scaled(self, flops_factor: float = 1.0, bandwidth_factor: float = 1.0) -> "RooflineModel":
        """A new roofline with scaled ceilings (e.g. for derated utilisation)."""
        return RooflineModel(
            peak_flops=self.peak_flops * flops_factor,
            memory_bandwidth=self.memory_bandwidth * bandwidth_factor,
        )
