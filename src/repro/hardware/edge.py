"""Edge inference accelerator model.

The paper (§III.B): "At the facility edge, new accelerators (for inference)
will need to be lighter, power optimized, in some cases tightly integrated
with sensors and instruments themselves, and designed to operate in
'hostile' environments across very aggressive temperature ranges, and even
radiation in some cases."

The model adds two edge-specific effects to the roofline base:

* **thermal derating** — sustained throughput drops with ambient
  temperature above a nominal point (passively cooled parts throttle),
* **radiation-induced error rate** — an upset probability per second of
  operation that grows with the environment's radiation level; upsets force
  recomputation, inflating expected latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile


@dataclass(frozen=True)
class EdgeEnvironment:
    """Operating conditions at an instrumentation edge site.

    Attributes
    ----------
    ambient_celsius:
        Ambient temperature around the device.
    radiation_factor:
        Multiplier over the sea-level neutron flux (1.0 = benign lab,
        10-100 = accelerator tunnels / space-adjacent).
    """

    ambient_celsius: float = 25.0
    radiation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.radiation_factor < 0:
            raise ConfigurationError("radiation_factor must be non-negative")


class EdgeInferenceAccelerator(Device):
    """A low-power inference part deployed next to an instrument.

    Parameters
    ----------
    spec:
        Device spec (kind must be ``EDGE_INFERENCE``); TDP is typically
        single-digit watts.
    nominal_celsius:
        Temperature at which full throughput is sustained.
    throttle_celsius:
        Temperature at which throughput has fallen to ``throttle_floor``.
    throttle_floor:
        Minimum fraction of peak retained at/above ``throttle_celsius``.
    base_upset_rate:
        Soft-error upsets per second at radiation factor 1.0.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        nominal_celsius: float = 45.0,
        throttle_celsius: float = 85.0,
        throttle_floor: float = 0.4,
        base_upset_rate: float = 1e-7,
    ) -> None:
        if spec.kind is not DeviceKind.EDGE_INFERENCE:
            raise ValueError(
                f"edge model requires EDGE_INFERENCE spec, got {spec.kind}"
            )
        super().__init__(spec)
        if throttle_celsius <= nominal_celsius:
            raise ConfigurationError("throttle_celsius must exceed nominal_celsius")
        if not 0.0 < throttle_floor <= 1.0:
            raise ConfigurationError("throttle_floor must be in (0, 1]")
        if base_upset_rate < 0:
            raise ConfigurationError("base_upset_rate must be non-negative")
        self.nominal_celsius = nominal_celsius
        self.throttle_celsius = throttle_celsius
        self.throttle_floor = throttle_floor
        self.base_upset_rate = base_upset_rate

    def thermal_derate(self, ambient_celsius: float) -> float:
        """Sustained fraction of peak at an ambient temperature.

        Linear ramp from 1.0 at ``nominal_celsius`` down to
        ``throttle_floor`` at ``throttle_celsius``; clamped beyond.
        """
        if ambient_celsius <= self.nominal_celsius:
            return 1.0
        if ambient_celsius >= self.throttle_celsius:
            return self.throttle_floor
        span = self.throttle_celsius - self.nominal_celsius
        slope = (1.0 - self.throttle_floor) / span
        return 1.0 - slope * (ambient_celsius - self.nominal_celsius)

    def upset_rate(self, environment: EdgeEnvironment) -> float:
        """Expected soft-error upsets per second in an environment."""
        return self.base_upset_rate * environment.radiation_factor

    def time_for_in_environment(
        self, kernel: KernelProfile, environment: EdgeEnvironment
    ) -> float:
        """Expected kernel time including throttling and upset-driven retries.

        With upset rate λ and nominal time t, the expected number of retries
        of an all-or-nothing kernel is ``1 / (1 - λt)`` for ``λt < 1``
        (geometric retry model); an environment harsh enough that ``λt >= 1``
        cannot complete the kernel and raises.
        """
        derate = self.thermal_derate(environment.ambient_celsius)
        nominal = super().time_for(kernel) / derate
        failure_probability = self.upset_rate(environment) * nominal
        if failure_probability >= 1.0:
            raise ConfigurationError(
                f"{self.name}: upset rate too high to complete kernel "
                f"(lambda*t = {failure_probability:.2f} >= 1)"
            )
        return nominal / (1.0 - failure_probability)
