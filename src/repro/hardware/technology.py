"""Semiconductor technology scaling: the paper's opening premise.

§I: "After decades of steady gains driven by semiconductor process
improvements, we have run out of the traditional means of increasing
computational capacity." §II.A dates the end of Dennard scaling to roughly
2005, after which general-purpose performance-per-watt gains collapsed and
specialisation became the only lever.

The model tracks, per process node:

* transistor density (still improving, slower post-2020 — Moore's law
  decelerating, not dead in the paper's timeframe),
* frequency (flat after Dennard's end: voltage stopped scaling),
* power density (rising once Dennard ended → dark silicon),
* the usable ("lit") fraction of the die at a fixed power budget,

and derives the general-purpose throughput trajectory versus what a
specialised architecture extracts from the same transistor budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessNode:
    """One semiconductor process generation.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``'28nm'``.
    year:
        Approximate volume year.
    density:
        Transistor density relative to the 2005 reference node.
    frequency:
        Achievable clock relative to the reference.
    volts:
        Supply voltage, V.
    """

    name: str
    year: int
    density: float
    frequency: float
    volts: float

    def __post_init__(self) -> None:
        if min(self.density, self.frequency, self.volts) <= 0:
            raise ConfigurationError(f"{self.name}: scaling factors must be positive")

    def power_density(self) -> float:
        """Relative power density: C V^2 f per unit area.

        Capacitance per transistor falls as 1/linear-dimension ~
        1/sqrt(density); density transistors per area multiply back in.
        Under Dennard scaling V and f conspire to keep this flat; once V
        stalls it rises.
        """
        capacitance_per_transistor = 1.0 / self.density**0.5
        return (
            self.density
            * capacitance_per_transistor
            * self.volts**2
            * self.frequency
        )

    def lit_fraction(self, power_budget: float = 1.0) -> float:
        """Fraction of the die that can switch within the power budget.

        The budget is expressed relative to the reference node's full-die
        power. Below 1.0 the die is partially **dark** — the dark-silicon
        regime that makes specialisation free in area terms.
        """
        if power_budget <= 0:
            raise ConfigurationError("power_budget must be positive")
        reference_power_density = 1.0  # by construction of the reference node
        return min(1.0, power_budget * reference_power_density / self.power_density())


def default_roadmap() -> List[ProcessNode]:
    """A stylised 2005-2025 roadmap.

    Density keeps doubling-ish per generation (slowing after 2017);
    frequency and voltage freeze shortly after 2005 — the end of Dennard.
    Voltages are expressed relative to the reference node (1.20 V), so the
    reference power density is exactly 1.0.
    """
    reference_volts = 1.20
    raw = [
        ("90nm", 2005, 1.0, 1.00, 1.20),
        ("65nm", 2007, 1.9, 1.15, 1.10),
        ("45nm", 2009, 3.6, 1.25, 1.00),
        ("32nm", 2011, 6.7, 1.32, 0.97),
        ("22nm", 2013, 12.2, 1.37, 0.92),
        ("14nm", 2015, 21.9, 1.41, 0.88),
        ("10nm", 2017, 37.9, 1.44, 0.85),
        ("7nm", 2019, 60.8, 1.46, 0.82),
        ("5nm", 2021, 91.8, 1.47, 0.80),
        ("3nm", 2024, 128.0, 1.48, 0.78),
    ]
    return [
        ProcessNode(name, year, density=density, frequency=frequency,
                    volts=volts / reference_volts)
        for name, year, density, frequency, volts in raw
    ]


@dataclass(frozen=True)
class ArchitectureModel:
    """How an architecture converts lit transistors into throughput.

    ``transistor_efficiency`` is relative throughput per lit transistor per
    clock: general-purpose cores burn most transistors on control
    (out-of-order machinery, coherence, caches); a domain-specific
    dataflow/systolic design spends them on arithmetic. The ratio between
    the two is the specialisation gain the paper builds its thesis on
    (10-100x is the commonly cited range; 40x default here).
    """

    name: str
    transistor_efficiency: float

    def __post_init__(self) -> None:
        if self.transistor_efficiency <= 0:
            raise ConfigurationError("transistor_efficiency must be positive")

    def throughput(self, node: ProcessNode, power_budget: float = 1.0) -> float:
        """Relative throughput at a node under a fixed power budget."""
        lit = node.lit_fraction(power_budget)
        return (
            node.density * lit * node.frequency * self.transistor_efficiency
        )

    def throughput_per_watt(self, node: ProcessNode, power_budget: float = 1.0) -> float:
        """Relative energy efficiency at the node."""
        return self.throughput(node, power_budget) / power_budget


GENERAL_PURPOSE = ArchitectureModel("general-purpose", transistor_efficiency=1.0)
SPECIALIZED = ArchitectureModel("specialized-accelerator", transistor_efficiency=40.0)


def dennard_break_year(roadmap: List[ProcessNode] = None) -> int:
    """First year power density exceeds the reference by >= 25%.

    The paper puts this "roughly 2005"; with the default roadmap the model
    crosses in the late 2000s as voltage scaling stalls.
    """
    nodes = roadmap if roadmap is not None else default_roadmap()
    for node in nodes:
        if node.power_density() > 1.25:
            return node.year
    return nodes[-1].year
