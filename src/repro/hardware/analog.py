"""Analog (memristor crossbar) dot-product engine.

The paper (§III.B): analog "dot-product engines" exploit a combination of
Ohm's and Kirchhoff's laws in memory arrays to implement a dot product,
changing "an O(N^2) problem to an O(N) problem" in power and time.

Model
-----
A matrix-vector multiply ``W @ x`` with an ``N x N`` weight matrix mapped
onto a crossbar executes in time *independent of the matrix size* (one
analog settle per crossbar pass): the inputs are applied as voltages on N
rows simultaneously and the column currents sum in parallel. What *does*
scale with N is the digital periphery:

* DACs drive N input rows → O(N) conversion energy,
* ADCs read N output columns → O(N) conversion energy and, with a limited
  number of ADCs shared across columns, O(N / adc_count) readout time.

Matrices larger than one crossbar are tiled; weights must be programmed
into the crossbar before use (slow writes), so the engine favours
inference-style workloads with static weights — matching the paper's claim
that these are "formidable candidates for AI inference at the edge".
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile
from repro.hardware.precision import Precision


class AnalogDotProductEngine(Device):
    """A crossbar-based matrix-vector multiply engine.

    Parameters
    ----------
    spec:
        Device spec (kind must be ``ANALOG``); ``peak_flops`` should contain
        the ``Precision.ANALOG`` equivalent-throughput entry used for
        non-MVM kernels offloaded to the digital periphery.
    crossbar_size:
        Rows/columns of one crossbar tile.
    settle_time:
        Analog settle time of one crossbar pass, seconds (size independent —
        this is the O(1) core of the O(N) claim).
    adc_count:
        ADCs shared across the columns of one crossbar.
    adc_rate:
        Conversions per second per ADC.
    conversion_energy:
        Joules per DAC or ADC conversion.
    write_time_per_cell:
        Seconds to program one crossbar cell (weight load).
    effective_bits:
        Equivalent digital precision after analog noise; requests for wider
        precision are refused.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        crossbar_size: int = 256,
        settle_time: float = 100e-9,
        adc_count: int = 8,
        adc_rate: float = 1e9,
        conversion_energy: float = 2e-12,
        write_time_per_cell: float = 100e-9,
        effective_bits: int = 8,
    ) -> None:
        if spec.kind is not DeviceKind.ANALOG:
            raise ValueError(f"analog model requires ANALOG spec, got {spec.kind}")
        super().__init__(spec)
        if crossbar_size <= 0 or settle_time <= 0 or adc_count <= 0 or adc_rate <= 0:
            raise ConfigurationError("crossbar parameters must be positive")
        self.crossbar_size = crossbar_size
        self.settle_time = settle_time
        self.adc_count = adc_count
        self.adc_rate = adc_rate
        self.conversion_energy = conversion_energy
        self.write_time_per_cell = write_time_per_cell
        self.effective_bits = effective_bits

    # --- capability ---------------------------------------------------------

    def supports_precision_bits(self, bits: int) -> bool:
        """Whether the analog noise floor admits this equivalent precision."""
        return bits <= self.effective_bits

    # --- structural timing ---------------------------------------------------

    def tiles_for(self, n: int) -> int:
        """Number of crossbar tiles needed for an ``n x n`` matrix."""
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        per_side = math.ceil(n / self.crossbar_size)
        return per_side * per_side

    def mvm_time(self, n: int) -> float:
        """Time for one ``n x n`` matrix-vector multiply (weights resident).

        PUMA-class tiling assumptions: every crossbar tile carries its own
        DAC/ADC array, all tiles settle and convert **in parallel**, and
        partial sums along a tile-row are accumulated in the analog domain
        (chained crossbars), so no O(N * tiles) digital merge exists. The
        remaining size-dependent term is streaming the n input symbols
        through the (shared) tile-row drivers — O(N) — on top of the O(1)
        settle and per-tile conversion time. This is the structural content
        of the paper's O(N^2) -> O(N) claim.
        """
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        settle = self.settle_time
        per_tile_conversion = self.crossbar_size / (self.adc_count * self.adc_rate)
        input_streaming = n / (self.adc_count * self.adc_rate)
        return settle + per_tile_conversion + input_streaming

    def mvm_energy(self, n: int) -> float:
        """Energy for one ``n x n`` MVM: O(N) boundary conversions dominate.

        With analog partial-sum accumulation only the n inputs (DAC) and n
        final outputs (ADC) are converted; the analog core's power over the
        pass is charged via the idle-power floor.
        """
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        conversions = 2.0 * n
        analog_core = self.spec.idle_power * self.mvm_time(n)
        return conversions * self.conversion_energy + analog_core

    def weight_programming_time(self, n: int) -> float:
        """Time to (re)program an ``n x n`` weight matrix into crossbars."""
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        return n * n * self.write_time_per_cell

    # --- Device interface -----------------------------------------------------

    def time_for(self, kernel: KernelProfile) -> float:
        if kernel.precision.bits > self.effective_bits and kernel.precision is not Precision.ANALOG:
            raise ConfigurationError(
                f"{self.name}: analog noise floor limits precision to "
                f"{self.effective_bits} bits, kernel requested {kernel.precision}"
            )
        if kernel.mvm_dimension is not None:
            n = kernel.mvm_dimension
            # Number of MVM passes implied by the kernel's total FLOPs.
            flops_per_mvm = 2.0 * n * n
            passes = max(1, round(kernel.flops / flops_per_mvm))
            return self.mvm_time(n) * passes
        # Non-MVM work falls back to the (weak) digital periphery roofline.
        analog_kernel = KernelProfile(
            flops=kernel.flops,
            bytes_moved=kernel.bytes_moved,
            precision=Precision.ANALOG,
            parallel_fraction=kernel.parallel_fraction,
        )
        return super().time_for(analog_kernel)

    def energy_for(self, kernel: KernelProfile) -> float:
        if kernel.mvm_dimension is not None:
            n = kernel.mvm_dimension
            flops_per_mvm = 2.0 * n * n
            passes = max(1, round(kernel.flops / flops_per_mvm))
            return self.mvm_energy(n) * passes
        return super().energy_for(kernel)
