"""Power and cooling models for racks and datacenters.

The paper (§II.C): "the exascale supercomputing generation is expected to
require a 30-40 MW datacenter with aggressive liquid cooling and very
high-density racks, up to 400 kW per rack." These models let experiments
check whether a proposed machine fits a site's power envelope, compare
cooling technologies, and charge energy to jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List

from repro.core.errors import CapacityError, ConfigurationError
from repro.hardware.device import DeviceSpec


class CoolingTechnology(Enum):
    """Rack cooling options with their practical per-rack power ceilings."""

    AIR = "air"
    REAR_DOOR_HEAT_EXCHANGER = "rear_door"
    DIRECT_LIQUID = "direct_liquid"
    IMMERSION = "immersion"

    @property
    def max_rack_power(self) -> float:
        """Practical per-rack ceiling in watts for the technology."""
        ceilings = {
            CoolingTechnology.AIR: 20_000.0,
            CoolingTechnology.REAR_DOOR_HEAT_EXCHANGER: 60_000.0,
            CoolingTechnology.DIRECT_LIQUID: 400_000.0,  # paper's 400 kW/rack
            CoolingTechnology.IMMERSION: 250_000.0,
        }
        return ceilings[self]

    @property
    def partial_pue(self) -> float:
        """Cooling-only PUE contribution (overhead per IT watt)."""
        overheads = {
            CoolingTechnology.AIR: 1.5,
            CoolingTechnology.REAR_DOOR_HEAT_EXCHANGER: 1.25,
            CoolingTechnology.DIRECT_LIQUID: 1.08,
            CoolingTechnology.IMMERSION: 1.05,
        }
        return overheads[self]


@dataclass
class RackPowerModel:
    """A rack with a cooling technology and a set of installed devices."""

    cooling: CoolingTechnology
    devices: List[DeviceSpec]
    overhead_power: float = 500.0  # fans, BMC, switches in-rack

    def __post_init__(self) -> None:
        if self.overhead_power < 0:
            raise ConfigurationError("overhead_power must be non-negative")
        if self.peak_power > self.cooling.max_rack_power:
            raise CapacityError(
                f"rack draws {self.peak_power / 1e3:.1f} kW at peak but "
                f"{self.cooling.value} cooling supports only "
                f"{self.cooling.max_rack_power / 1e3:.1f} kW"
            )

    @property
    def peak_power(self) -> float:
        """Worst-case rack draw (all devices at TDP) in watts."""
        return sum(spec.tdp for spec in self.devices) + self.overhead_power

    @property
    def idle_power(self) -> float:
        """Rack draw with all devices idle, watts."""
        return sum(spec.idle_power for spec in self.devices) + self.overhead_power

    def headroom(self) -> float:
        """Watts of cooling capacity left at peak."""
        return self.cooling.max_rack_power - self.peak_power

    def can_add(self, spec: DeviceSpec) -> bool:
        """Whether one more device of this spec fits the cooling envelope."""
        return spec.tdp <= self.headroom()


@dataclass
class DatacenterPowerModel:
    """A facility power envelope hosting many racks.

    Attributes
    ----------
    facility_limit:
        Total facility power available, watts (paper: 30-40 MW for
        exascale).
    electricity_price:
        Dollars per kWh, used for energy accounting.
    """

    facility_limit: float = 35e6
    electricity_price: float = 0.08
    racks: List[RackPowerModel] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.facility_limit <= 0:
            raise ConfigurationError("facility_limit must be positive")
        if self.racks is None:
            self.racks = []
        self._check_envelope()

    def _check_envelope(self) -> None:
        if self.total_facility_power() > self.facility_limit:
            raise CapacityError(
                f"facility draw {self.total_facility_power() / 1e6:.1f} MW "
                f"exceeds limit {self.facility_limit / 1e6:.1f} MW"
            )

    def add_rack(self, rack: RackPowerModel) -> None:
        """Install a rack, enforcing the facility envelope."""
        self.racks.append(rack)
        try:
            self._check_envelope()
        except CapacityError:
            self.racks.pop()
            raise

    def it_power(self) -> float:
        """Peak IT (compute) power across all racks, watts."""
        return sum(rack.peak_power for rack in self.racks)

    def total_facility_power(self) -> float:
        """Peak facility power including cooling overhead (PUE), watts."""
        return sum(rack.peak_power * rack.cooling.partial_pue for rack in self.racks)

    def pue(self) -> float:
        """Facility power usage effectiveness (1.0 = no overhead)."""
        it = self.it_power()
        if it == 0:
            return 1.0
        return self.total_facility_power() / it

    def max_racks_supported(self, rack: RackPowerModel) -> int:
        """How many racks of a given build fit the remaining envelope."""
        per_rack = rack.peak_power * rack.cooling.partial_pue
        remaining = self.facility_limit - self.total_facility_power()
        return int(remaining // per_rack)

    def energy_cost(self, joules: float) -> float:
        """Dollar cost of an energy quantity at the facility tariff."""
        if joules < 0:
            raise ValueError("joules must be non-negative")
        kwh = joules / 3.6e6
        return kwh * self.electricity_price


def densest_feasible_rack(
    spec: DeviceSpec, cooling_options: Iterable[CoolingTechnology] = tuple(CoolingTechnology)
) -> "tuple[CoolingTechnology, int]":
    """The cooling choice and device count maximising devices per rack.

    Reproduces the paper's point that high-density racks *require*
    aggressive liquid cooling: with air cooling only a handful of
    accelerators fit a rack.
    """
    best: "tuple[CoolingTechnology, int]" = (CoolingTechnology.AIR, 0)
    for cooling in cooling_options:
        count = int((cooling.max_rack_power - 500.0) // spec.tdp)
        if count > best[1]:
            best = (cooling, count)
    return best
