"""A catalog of named device models with plausible 2021-era parameters.

The catalog instantiates the paper's "Cambrian explosion" of compute silicon
(§III.E) as a set of ready-to-use device models. Numbers are order-of-
magnitude realistic for the paper's timeframe (not vendor-exact — the point
of every experiment is relative shape, not absolute throughput).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.hardware.analog import AnalogDotProductEngine
from repro.hardware.device import Device, DeviceKind, DeviceSpec
from repro.hardware.edge import EdgeInferenceAccelerator
from repro.hardware.optical import OpticalMVMEngine
from repro.hardware.precision import Precision
from repro.hardware.processors import CPU, FPGA, GPU, make_cpu_spec
from repro.hardware.systolic import SystolicArrayAccelerator
from repro.hardware.wafer_scale import WaferScaleEngine


class DeviceCatalog:
    """A name-indexed collection of device models."""

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}

    def add(self, device: Device) -> Device:
        """Register a device; names must be unique."""
        if device.name in self._devices:
            raise ValueError(f"duplicate device name: {device.name}")
        self._devices[device.name] = device
        return device

    def get(self, name: str) -> Device:
        """Look up a device by name (KeyError with a helpful message)."""
        try:
            return self._devices[name]
        except KeyError:
            known = ", ".join(sorted(self._devices))
            raise KeyError(f"unknown device {name!r}; catalog has: {known}") from None

    def by_kind(self, kind: DeviceKind) -> List[Device]:
        """All devices of a given kind."""
        return [d for d in self._devices.values() if d.kind is kind]

    def supporting(self, precision: Precision) -> List[Device]:
        """All devices natively supporting a precision."""
        return [d for d in self._devices.values() if d.supports(precision)]

    def names(self) -> List[str]:
        return sorted(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices


def default_catalog(seed: Optional[int] = None) -> DeviceCatalog:
    """The standard heterogeneous device mix used by examples and benches.

    Contains one representative of every class the paper names: server CPU,
    HPC GPU, systolic training part, wafer-scale engine, FPGA, analog DPE,
    optical engine, and an edge inference accelerator.
    """
    catalog = DeviceCatalog()

    catalog.add(CPU(make_cpu_spec(
        name="epyc-class-cpu",
        cores=64,
        ghz=2.25,
        flops_per_cycle=16,
        memory_bandwidth=200e9,
        memory_capacity=512e9,
        tdp=280.0,
        unit_cost=8_000.0,
    )))

    catalog.add(GPU(DeviceSpec(
        name="hpc-gpu",
        kind=DeviceKind.GPU,
        peak_flops={
            Precision.FP64: 9.7e12,
            Precision.FP32: 19.5e12,
            Precision.TF32: 156e12,
            Precision.BF16: 312e12,
            Precision.FP16: 312e12,
            Precision.INT8: 624e12,
        },
        memory_bandwidth=1.6e12,
        memory_capacity=40e9,
        tdp=400.0,
        idle_power=60.0,
        efficiency=0.6,
        unit_cost=12_000.0,
    )))

    catalog.add(SystolicArrayAccelerator(
        DeviceSpec(
            name="tpu-like",
            kind=DeviceKind.SYSTOLIC,
            peak_flops={
                Precision.BF16: 123e12,
                Precision.INT8: 275e12,
                Precision.FP32: 15e12,
            },
            memory_bandwidth=900e9,
            memory_capacity=32e9,
            tdp=175.0,
            idle_power=30.0,
            efficiency=0.75,
            unit_cost=9_000.0,
        ),
        array_rows=128,
        array_cols=128,
        clock_hz=940e6,
    ))

    catalog.add(WaferScaleEngine(
        DeviceSpec(
            name="wafer-scale-engine",
            kind=DeviceKind.WAFER_SCALE,
            peak_flops={
                Precision.FP16: 2.5e15,
                Precision.FP32: 0.6e15,
            },
            memory_bandwidth=20e12,   # aggregate on-wafer SRAM bandwidth
            memory_capacity=40e9,     # on-wafer SRAM only
            tdp=20_000.0,
            idle_power=4_000.0,
            efficiency=0.5,
            unit_cost=2_000_000.0,
        ),
        tiles=400_000,
        fabric_bandwidth=100e12,
    ))

    catalog.add(FPGA(DeviceSpec(
        name="datacenter-fpga",
        kind=DeviceKind.FPGA,
        peak_flops={
            Precision.FP32: 1.5e12,
            Precision.INT8: 33e12,
            Precision.INT4: 66e12,
        },
        memory_bandwidth=460e9,
        memory_capacity=16e9,
        tdp=225.0,
        idle_power=40.0,
        efficiency=0.85,
        unit_cost=7_000.0,
    )))

    catalog.add(AnalogDotProductEngine(
        DeviceSpec(
            name="analog-dpe",
            kind=DeviceKind.ANALOG,
            peak_flops={Precision.ANALOG: 4e12},  # digital-periphery fallback
            memory_bandwidth=100e9,
            memory_capacity=1e9,
            tdp=15.0,
            idle_power=2.0,
            efficiency=0.9,
            unit_cost=1_500.0,
        ),
        crossbar_size=256,
        settle_time=100e-9,
        adc_count=16,
        adc_rate=1.2e9,
    ))

    catalog.add(OpticalMVMEngine(
        DeviceSpec(
            name="optical-mvm",
            kind=DeviceKind.OPTICAL,
            peak_flops={Precision.ANALOG: 8e12},
            memory_bandwidth=200e9,
            memory_capacity=2e9,
            tdp=60.0,
            idle_power=25.0,  # laser + thermal tuning floor
            efficiency=0.9,
            unit_cost=20_000.0,
        ),
        mesh_size=64,
        modulation_rate=10e9,
    ))

    catalog.add(EdgeInferenceAccelerator(DeviceSpec(
        name="edge-npu",
        kind=DeviceKind.EDGE_INFERENCE,
        peak_flops={
            Precision.INT8: 26e12,
            Precision.FP16: 13e12,
        },
        memory_bandwidth=60e9,
        memory_capacity=8e9,
        tdp=15.0,
        idle_power=2.0,
        efficiency=0.7,
        unit_cost=500.0,
    )))

    return catalog
