"""Coherent-photonics matrix-multiply engine.

The paper (§III.B): "optical engines exploit properties of coherent
photonics to implement a matrix multiplication", the second "neuromorphic"
class alongside analog crossbars, also turning O(N^2) MACs into an O(N)
operation.

Model
-----
A Mach-Zehnder-interferometer (MZI) mesh of size ``N x N`` applies a unitary
transform to N wavelength channels *at the speed of light through the mesh*:
per-pass latency is the optical propagation delay (picoseconds, essentially
size independent at chip scale) plus O(N) electro-optic modulation and
photodetection at the boundary. Static power is high (lasers and thermal
phase tuning run continuously) but marginal energy per MAC is tiny, so the
engine wins at high utilisation and large N — and loses badly when idle.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile
from repro.hardware.precision import Precision


class OpticalMVMEngine(Device):
    """A photonic MVM engine built from an MZI mesh.

    Parameters
    ----------
    spec:
        Device spec (kind must be ``OPTICAL``). ``idle_power`` should model
        the laser + thermal-tuning floor, which dominates total power.
    mesh_size:
        Ports of the MZI mesh (one tile handles a ``mesh_size`` vector).
    modulation_rate:
        Electro-optic modulator symbol rate, symbols/s (sets the O(N)
        boundary-conversion throughput).
    propagation_delay:
        Light transit time through the mesh, seconds.
    detection_energy:
        Joules per modulated/detected symbol.
    effective_bits:
        Equivalent digital precision limited by shot noise and crosstalk.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        mesh_size: int = 64,
        modulation_rate: float = 10e9,
        propagation_delay: float = 50e-12,
        detection_energy: float = 0.5e-12,
        effective_bits: int = 8,
    ) -> None:
        if spec.kind is not DeviceKind.OPTICAL:
            raise ValueError(f"optical model requires OPTICAL spec, got {spec.kind}")
        super().__init__(spec)
        if mesh_size <= 0 or modulation_rate <= 0 or propagation_delay <= 0:
            raise ConfigurationError("mesh parameters must be positive")
        self.mesh_size = mesh_size
        self.modulation_rate = modulation_rate
        self.propagation_delay = propagation_delay
        self.detection_energy = detection_energy
        self.effective_bits = effective_bits

    def tiles_for(self, n: int) -> int:
        """MZI mesh tiles needed to cover an ``n x n`` operator."""
        if n <= 0:
            raise ValueError("dimension must be positive")
        per_side = math.ceil(n / self.mesh_size)
        return per_side * per_side

    def mvm_time(self, n: int) -> float:
        """One ``n x n`` MVM: O(N) boundary conversion + O(1) propagation.

        Each input symbol is modulated once and fanned out across tile-rows
        optically (beam splitting costs no time); each output is detected
        once. Only propagation grows (weakly) with the tile count.
        """
        if n <= 0:
            raise ValueError("dimension must be positive")
        per_side = math.ceil(n / self.mesh_size)
        modulation = n / self.modulation_rate
        detection = n / self.modulation_rate
        return modulation + detection + self.propagation_delay * per_side

    def mvm_energy(self, n: int) -> float:
        """Marginal energy (O(N) conversions) + static laser floor."""
        if n <= 0:
            raise ValueError("dimension must be positive")
        conversions = 2.0 * n
        static = self.spec.idle_power * self.mvm_time(n)
        return conversions * self.detection_energy + static

    def time_for(self, kernel: KernelProfile) -> float:
        if kernel.precision.bits > self.effective_bits and kernel.precision is not Precision.ANALOG:
            raise ConfigurationError(
                f"{self.name}: photonic noise floor limits precision to "
                f"{self.effective_bits} bits, kernel requested {kernel.precision}"
            )
        if kernel.mvm_dimension is not None:
            n = kernel.mvm_dimension
            flops_per_mvm = 2.0 * n * n
            passes = max(1, round(kernel.flops / flops_per_mvm))
            return self.mvm_time(n) * passes
        analog_kernel = KernelProfile(
            flops=kernel.flops,
            bytes_moved=kernel.bytes_moved,
            precision=Precision.ANALOG,
            parallel_fraction=kernel.parallel_fraction,
        )
        return super().time_for(analog_kernel)

    def energy_for(self, kernel: KernelProfile) -> float:
        if kernel.mvm_dimension is not None:
            n = kernel.mvm_dimension
            flops_per_mvm = 2.0 * n * n
            passes = max(1, round(kernel.flops / flops_per_mvm))
            return self.mvm_energy(n) * passes
        return super().energy_for(kernel)
