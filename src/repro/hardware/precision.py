"""Numeric precision ladder used across device models.

The paper notes that digital accelerators "squeeze the inefficiencies away
from deep learning algorithms ... by reducing bit precision" and that
"specialized reduced precision floating point formats and tensor cores" are
becoming mainstream (§III.B). Devices therefore advertise a per-precision
peak throughput; workloads request a precision and the device model reports
whether (and how fast) it can run.
"""

from __future__ import annotations

from enum import Enum


class Precision(Enum):
    """Numeric formats a device may support.

    Values are ``(label, bits)`` pairs rather than bare bit widths: several
    distinct formats share a width (BF16/FP16 are both 16-bit, ANALOG's
    equivalent precision matches INT8), and Python enums silently alias
    members with equal values — BF16 and FP16 must stay distinct formats.
    """

    FP64 = ("fp64", 64)
    FP32 = ("fp32", 32)
    TF32 = ("tf32", 19)
    BF16 = ("bf16", 16)
    FP16 = ("fp16", 16)
    INT8 = ("int8", 8)
    INT4 = ("int4", 4)
    #: Analog computation: effective precision is set by device noise, not a
    #: digital word width; 8 bits is the commonly-reported equivalent.
    ANALOG = ("analog", 8)

    def __init__(self, label: str, bits: int) -> None:
        self.label = label
        self._bits = bits

    @property
    def bits(self) -> int:
        """Storage width in bits."""
        return self._bits

    @property
    def bytes(self) -> float:
        """Storage width in bytes (may be fractional for sub-byte formats)."""
        return self._bits / 8.0

    @property
    def is_floating_point(self) -> bool:
        """Whether the format is a floating-point (vs integer/analog) type."""
        return self in (
            Precision.FP64,
            Precision.FP32,
            Precision.TF32,
            Precision.BF16,
            Precision.FP16,
        )

    def __str__(self) -> str:
        return self.name.lower()


#: Precisions ordered from widest to narrowest; used when a scheduler
#: degrades precision to fit a device ("model compilation to reduced
#: precision arithmetic" per §III.D).
PRECISION_LADDER = (
    Precision.FP64,
    Precision.FP32,
    Precision.TF32,
    Precision.BF16,
    Precision.FP16,
    Precision.INT8,
    Precision.INT4,
)


def narrower_precisions(precision: Precision) -> tuple:
    """All ladder entries strictly narrower than ``precision``.

    ANALOG is treated as INT8-equivalent for ladder placement.
    """
    reference = Precision.INT8 if precision is Precision.ANALOG else precision
    if reference not in PRECISION_LADDER:
        raise ValueError(f"{precision} is not on the precision ladder")
    index = PRECISION_LADDER.index(reference)
    return PRECISION_LADDER[index + 1:]
