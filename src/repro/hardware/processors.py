"""Conventional processor models: CPU, GPU and FPGA.

These are "general purpose" (CPU) and "first wave" (PCIe-attached GPU/FPGA)
devices in the paper's taxonomy (§III.B). They reuse the roofline base model
with modest structural refinements:

* CPUs suffer no offload overhead but have low peak throughput.
* GPUs add a host-to-device offload latency and need enough work to fill
  the machine (occupancy ramp).
* FPGAs trade lower clocked throughput for high efficiency at narrow
  precisions and near-zero control overhead once configured.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile
from repro.hardware.precision import Precision


class CPU(Device):
    """A multicore server CPU.

    The base roofline already captures CPU behaviour well; the only
    refinement is that CPUs execute *any* requested precision at the FP64 or
    FP32 rate (scalar units do not speed up much below FP32).
    """

    def __init__(self, spec: DeviceSpec) -> None:
        if spec.kind is not DeviceKind.CPU:
            raise ValueError(f"CPU model requires a CPU spec, got {spec.kind}")
        super().__init__(spec)

    def time_for(self, kernel: KernelProfile) -> float:
        if not self.supports(kernel.precision):
            # Narrow formats run at the narrowest supported rate; wide
            # formats are unsupported outright.
            fallback = self._narrowest_supported()
            kernel = KernelProfile(
                flops=kernel.flops,
                bytes_moved=kernel.bytes_moved,
                precision=fallback,
                mvm_dimension=kernel.mvm_dimension,
                parallel_fraction=kernel.parallel_fraction,
            )
        return super().time_for(kernel)

    def _narrowest_supported(self) -> Precision:
        return min(self.spec.peak_flops, key=lambda p: p.bits)


class GPU(Device):
    """A discrete GPU attached over a host interface.

    Adds two effects on top of the roofline:

    * a fixed offload latency per kernel (driver + PCIe round trip),
    * an occupancy ramp: kernels with too little work cannot fill the
      machine, so achieved throughput scales with ``work / saturation_work``.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        offload_latency: float = 10e-6,
        saturation_flops: float = 1e9,
    ) -> None:
        if spec.kind is not DeviceKind.GPU:
            raise ValueError(f"GPU model requires a GPU spec, got {spec.kind}")
        super().__init__(spec)
        if offload_latency < 0 or saturation_flops <= 0:
            raise ValueError("offload_latency >= 0 and saturation_flops > 0 required")
        self.offload_latency = offload_latency
        self.saturation_flops = saturation_flops

    def time_for(self, kernel: KernelProfile) -> float:
        base = super().time_for(kernel)
        if 0 < kernel.flops < self.saturation_flops:
            # Under-occupied: the device is only partially filled, so the
            # effective rate degrades linearly with fill fraction.
            fill = kernel.flops / self.saturation_flops
            base = base / max(fill, 1e-6)
        return self.offload_latency + base


class FPGA(Device):
    """A reconfigurable accelerator.

    FPGAs are modelled with a one-off configuration latency amortised over a
    deployment, excellent efficiency at integer precisions, and a throughput
    penalty at floating point (soft logic).
    """

    def __init__(self, spec: DeviceSpec, reconfiguration_time: float = 1.0) -> None:
        if spec.kind is not DeviceKind.FPGA:
            raise ValueError(f"FPGA model requires an FPGA spec, got {spec.kind}")
        super().__init__(spec)
        if reconfiguration_time < 0:
            raise ValueError("reconfiguration_time must be non-negative")
        self.reconfiguration_time = reconfiguration_time
        self._configured_for: Optional[Precision] = None

    def time_for(self, kernel: KernelProfile) -> float:
        reconfig = 0.0
        if self._configured_for is not kernel.precision:
            reconfig = self.reconfiguration_time
            self._configured_for = kernel.precision
        return reconfig + super().time_for(kernel)

    def reset_configuration(self) -> None:
        """Forget the loaded bitstream (next kernel pays reconfiguration)."""
        self._configured_for = None


def make_cpu_spec(
    name: str,
    cores: int,
    ghz: float,
    flops_per_cycle: int = 16,
    memory_bandwidth: float = 200e9,
    memory_capacity: float = 256e9,
    tdp: float = 250.0,
    unit_cost: float = 8_000.0,
) -> DeviceSpec:
    """Build a CPU spec from microarchitectural parameters.

    ``flops_per_cycle`` is per core at FP64 (e.g. 16 for 2x AVX-512 FMA);
    FP32 doubles it.
    """
    fp64 = cores * ghz * 1e9 * flops_per_cycle
    peak: Dict[Precision, float] = {
        Precision.FP64: fp64,
        Precision.FP32: fp64 * 2,
        Precision.INT8: fp64 * 4,
    }
    return DeviceSpec(
        name=name,
        kind=DeviceKind.CPU,
        peak_flops=peak,
        memory_bandwidth=memory_bandwidth,
        memory_capacity=memory_capacity,
        tdp=tdp,
        idle_power=tdp * 0.3,
        efficiency=0.8,
        unit_cost=unit_cost,
    )
