"""TPU-like systolic-array accelerator model.

The paper cites Google's TPU as the canonical example of "removing
fetch-decode-execute overheads through dataflow and/or systolic computation"
(§III.B). The structural behaviour a roofline misses is *tile utilisation*:
a systolic array of shape ``rows x cols`` executes matrix multiplies in
tiles, and matrices whose dimensions are not multiples of the tile shape
waste lanes. Small matrices also pay a pipeline fill/drain latency.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.hardware.device import Device, DeviceKind, DeviceSpec, KernelProfile
from repro.hardware.precision import Precision


class SystolicArrayAccelerator(Device):
    """A matrix engine built around an ``array_rows x array_cols`` MAC grid.

    Parameters
    ----------
    spec:
        Device spec (kind must be ``SYSTOLIC``). ``peak_flops`` should give
        the full-array MAC throughput at each supported precision.
    array_rows, array_cols:
        Systolic array dimensions (e.g. 128 x 128 for TPU v1-like parts).
    clock_hz:
        Array clock; sets the pipeline fill/drain latency.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        array_rows: int = 128,
        array_cols: int = 128,
        clock_hz: float = 1e9,
    ) -> None:
        if spec.kind is not DeviceKind.SYSTOLIC:
            raise ValueError(f"systolic model requires SYSTOLIC spec, got {spec.kind}")
        super().__init__(spec)
        if array_rows <= 0 or array_cols <= 0 or clock_hz <= 0:
            raise ConfigurationError("array dimensions and clock must be positive")
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.clock_hz = clock_hz

    def tile_utilization(self, rows: int, cols: int) -> float:
        """Fraction of MAC lanes doing useful work for a ``rows x cols`` tile job.

        Both dimensions are padded up to the array shape; utilisation is the
        product of the per-dimension fill fractions of the *last* tile,
        averaged over all tiles.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        row_tiles = math.ceil(rows / self.array_rows)
        col_tiles = math.ceil(cols / self.array_cols)
        padded = row_tiles * self.array_rows * col_tiles * self.array_cols
        return (rows * cols) / padded

    def pipeline_latency(self) -> float:
        """Fill + drain latency of the array, seconds."""
        return (self.array_rows + self.array_cols) / self.clock_hz

    def time_for(self, kernel: KernelProfile) -> float:
        base = super().time_for(kernel)
        if kernel.mvm_dimension is not None:
            # Matrix-vector: only one column of the array is driven unless
            # vectors are batched; model as square-tile utilisation on an
            # N x N weight matrix streamed through the array.
            utilisation = self.tile_utilization(
                kernel.mvm_dimension, kernel.mvm_dimension
            )
            base = base / max(utilisation, 1e-3)
        return self.pipeline_latency() + base

    def matmul_time(
        self,
        m: int,
        n: int,
        k: int,
        precision: Precision = Precision.BF16,
        batched: Optional[int] = None,
    ) -> float:
        """Time for a (possibly batched) dense ``m x k @ k x n`` matmul.

        This is the native operation of the array; utilisation is applied
        along the (m, n) output tile dimensions.
        """
        if min(m, n, k) <= 0:
            raise ValueError("matrix dimensions must be positive")
        batch = batched if batched else 1
        flops = 2.0 * m * n * k * batch
        bytes_moved = precision.bytes * (m * k + k * n + m * n) * batch
        roofline = self.roofline(precision)
        utilisation = self.tile_utilization(m, n)
        compute_time = flops / (roofline.peak_flops * utilisation)
        memory_time = bytes_moved / roofline.memory_bandwidth
        return self.pipeline_latency() + max(compute_time, memory_time)
