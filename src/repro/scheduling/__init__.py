"""Scheduling: runtime prediction, cluster queueing and the meta-scheduler.

The paper (§III.F): "Users will have their workloads run across a breadth
of silicon options, ideally with a meta-scheduler that selects the best
available for the job, but in a completely transparent manner to the
applications."

Layers:

* :mod:`repro.scheduling.runtime` — analytical runtime/energy prediction of
  a job on a device at a site (compute + communication + noise).
* :mod:`repro.scheduling.noise` — the OS/interference noise model behind
  the paper's "the slowest component dictates performance" claim (§II.C).
* :mod:`repro.scheduling.cluster` — an event-driven single-site cluster
  with pluggable queue policies (FCFS, SJF, EASY backfilling).
* :mod:`repro.scheduling.metascheduler` — federation-wide placement:
  best-silicon selection with data gravity, against static/random
  baselines.
"""

from repro.scheduling.checkpointing import (
    CheckpointedExecution,
    CheckpointTarget,
    FailureModel,
    fabric_pm_target,
    local_ssd_target,
    parallel_filesystem_target,
    young_daly_interval,
)
from repro.scheduling.cluster import ClusterSimulator, JobRecord
from repro.scheduling.metascheduler import (
    MetaScheduler,
    PlacementDecision,
    PlacementPolicy,
)
from repro.scheduling.noise import NoiseModel, bsp_slowdown, expected_max_of_normals
from repro.scheduling.policies import (
    EasyBackfillPolicy,
    FcfsPolicy,
    PriorityPolicy,
    QueuePolicy,
    SjfPolicy,
)
from repro.scheduling.runtime import RuntimeEstimate, estimate_job
from repro.scheduling.taskgraph import (
    DataTask,
    Mapper,
    Region,
    TaskGraph,
    TaskGraphExecutor,
)

__all__ = [
    "CheckpointTarget",
    "CheckpointedExecution",
    "ClusterSimulator",
    "DataTask",
    "FailureModel",
    "fabric_pm_target",
    "local_ssd_target",
    "parallel_filesystem_target",
    "young_daly_interval",
    "EasyBackfillPolicy",
    "FcfsPolicy",
    "JobRecord",
    "Mapper",
    "MetaScheduler",
    "PriorityPolicy",
    "Region",
    "TaskGraph",
    "TaskGraphExecutor",
    "NoiseModel",
    "PlacementDecision",
    "PlacementPolicy",
    "QueuePolicy",
    "RuntimeEstimate",
    "SjfPolicy",
    "bsp_slowdown",
    "estimate_job",
    "expected_max_of_normals",
]
