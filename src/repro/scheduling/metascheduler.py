"""The federation-wide meta-scheduler.

The paper (§III.F): "Users will have their workloads run across a breadth
of silicon options, ideally with a meta-scheduler that selects the best
available for the job, but in a completely transparent manner to the
applications."

:class:`MetaScheduler` owns one queue (a :class:`ClusterSimulator`) per
(site, device-model) pool, all sharing one simulation clock. At each job's
arrival it scores every feasible pool:

    ``score = staging_time * gravity_weight + queue_wait + runtime``

and submits to the argmin. :class:`PlacementPolicy` provides the baselines
the experiment compares against: static affinity (the "GPU jobs go to the
GPU cluster" convention), random, home-site-only, and compute-only (data
gravity ignored).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import SchedulingError
from repro.core.events import Simulation
from repro.core.rng import RandomSource
from repro.federation.bursting import BurstingPolicy
from repro.federation.federation import Federation
from repro.federation.gravity import transfer_cost
from repro.federation.site import Site, SiteKind
from repro.hardware.device import Device, DeviceKind
from repro.observability.probes import CATEGORY_FAULT, CATEGORY_WAN, Telemetry
from repro.scheduling.cluster import ClusterSimulator, JobRecord
from repro.scheduling.policies import QueuePolicy
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import Job, JobClass


class PlacementPolicy(Enum):
    """Placement strategies for the C8/C9 experiments."""

    BEST_SILICON = "best_silicon"       # full model: silicon + queue + gravity
    COMPUTE_ONLY = "compute_only"       # ignores data transfer (C9 baseline)
    STATIC_AFFINITY = "static_affinity" # job class -> fixed device kind
    RANDOM = "random"                   # uniform over feasible pools
    HOME_ONLY = "home_only"             # first site only (no federation)
    COST_OPTIMIZED = "cost_optimized"   # cheapest $ placement (deadline aware)
    ENERGY_OPTIMIZED = "energy_optimized"  # fewest joules (deadline aware)


#: Static-affinity convention: which device kind each class "should" use.
_AFFINITY = {
    JobClass.SIMULATION: DeviceKind.CPU,
    JobClass.ANALYTICS: DeviceKind.CPU,
    JobClass.ML_TRAINING: DeviceKind.GPU,
    JobClass.ML_INFERENCE: DeviceKind.GPU,
    JobClass.HYBRID: DeviceKind.GPU,
}


@dataclass(frozen=True)
class PlacementDecision:
    """Where a job was placed and the predicted cost components."""

    job: Job
    site: Site
    device: Device
    runtime: float
    queue_wait_estimate: float
    staging_time: float
    energy: float
    dollar_cost: float = 0.0

    @property
    def predicted_completion(self) -> float:
        return self.staging_time + self.queue_wait_estimate + self.runtime


class MetaScheduler:
    """Places a job trace over a federation and simulates execution."""

    def __init__(
        self,
        federation: Federation,
        policy: PlacementPolicy = PlacementPolicy.BEST_SILICON,
        gravity_weight: float = 1.0,
        queue_policy: Optional[QueuePolicy] = None,
        rng: Optional[RandomSource] = None,
        home_site: Optional[Site] = None,
        telemetry: Optional[Telemetry] = None,
        failover: Optional[BurstingPolicy] = None,
    ) -> None:
        if gravity_weight < 0:
            raise ValueError("gravity_weight must be non-negative")
        self.federation = federation
        self.policy = policy
        self.gravity_weight = gravity_weight
        self.rng = rng or RandomSource(seed=5, name="metascheduler")
        self.simulation = Simulation()
        self.telemetry = telemetry
        if telemetry is not None:
            # One telemetry object covers the kernel, the scheduler, every
            # pool and the federation's WAN.
            telemetry.bind_simulation(self.simulation)
            federation.attach_telemetry(telemetry)
        self.home_site = home_site or federation.sites[0]
        self.pools: Dict[Tuple[str, str], ClusterSimulator] = {}
        for site in federation.sites:
            for device in site.devices:
                self.pools[(site.name, device.name)] = ClusterSimulator(
                    site=site,
                    device=device,
                    policy=queue_policy,
                    simulation=self.simulation,
                    telemetry=telemetry,
                )
        self.decisions: List[PlacementDecision] = []
        self.rejected: List[Job] = []
        #: Site-outage failover (see :meth:`fail_site`): cloud candidates
        #: for displaced jobs must pass this bursting policy, if set.
        self.failover = failover
        self.down_sites: Set[str] = set()
        #: Jobs displaced by an outage with no surviving placement; they
        #: retry automatically when a site is restored.
        self.stranded: List[Job] = []

    # --- candidate scoring ------------------------------------------------------

    def _candidates(self, job: Job) -> List[PlacementDecision]:
        """All feasible placements with their predicted cost components."""
        candidates: List[PlacementDecision] = []
        for (site_name, device_name), pool in self.pools.items():
            if site_name in self.down_sites:
                continue
            site = self.federation.site(site_name)
            device = pool.device
            if job.ranks > pool.capacity:
                continue
            estimate = estimate_job(job, device, site)
            if not estimate.feasible:
                continue
            staging = transfer_cost(job, site, self.federation.catalog)
            rental = (estimate.time / 3600.0) * job.ranks * site.hourly_price(device)
            candidates.append(
                PlacementDecision(
                    job=job,
                    site=site,
                    device=device,
                    runtime=estimate.time,
                    queue_wait_estimate=pool.estimated_queue_wait,
                    staging_time=staging,
                    energy=estimate.energy,
                    dollar_cost=rental,
                )
            )
        return candidates

    def _choose(
        self,
        job: Job,
        candidates: Optional[List[PlacementDecision]] = None,
    ) -> Optional[PlacementDecision]:
        if candidates is None:
            candidates = self._candidates(job)
        if not candidates:
            return None

        if self.policy is PlacementPolicy.HOME_ONLY:
            candidates = [c for c in candidates if c.site is self.home_site]
            if not candidates:
                return None

        if self.policy is PlacementPolicy.RANDOM:
            return self.rng.choice(candidates)

        if self.policy is PlacementPolicy.STATIC_AFFINITY:
            wanted = _AFFINITY.get(job.job_class, DeviceKind.CPU)
            matching = [c for c in candidates if c.device.kind is wanted]
            pool = matching or candidates
            return min(pool, key=lambda c: c.queue_wait_estimate)

        if self.policy is PlacementPolicy.COMPUTE_ONLY:
            return min(candidates, key=lambda c: c.queue_wait_estimate + c.runtime)

        if self.policy in (
            PlacementPolicy.COST_OPTIMIZED,
            PlacementPolicy.ENERGY_OPTIMIZED,
        ):
            # Cheapest (in dollars or joules) placement that still meets
            # the job's deadline, if any; falls back to cheapest overall.
            deadline = job.deadline
            if deadline is not None:
                timely = [c for c in candidates if c.predicted_completion <= deadline]
                if timely:
                    candidates = timely
            if self.policy is PlacementPolicy.COST_OPTIMIZED:
                return min(candidates, key=lambda c: c.dollar_cost)
            return min(candidates, key=lambda c: c.energy)

        # BEST_SILICON: end-to-end completion including weighted staging.
        return min(
            candidates,
            key=lambda c: (
                c.staging_time * self.gravity_weight
                + c.queue_wait_estimate
                + c.runtime
            ),
        )

    # --- execution ---------------------------------------------------------------

    def run(self, jobs: List[Job]) -> List[JobRecord]:
        """Place and simulate a whole trace; returns finished job records."""
        for job in sorted(jobs, key=lambda j: j.arrival_time):
            self.simulation.schedule_at(job.arrival_time, self._make_placer(job))
        self.simulation.run()
        records: List[JobRecord] = []
        for pool in self.pools.values():
            for record in pool.records:
                if record.finish_time is None:
                    if record.dead:
                        continue  # accounted on the pool's dead-job ledger
                    raise SchedulingError(f"{record.job.name} never finished")
                records.append(record)
        return records

    def _make_placer(self, job: Job):
        def place() -> None:
            decision = self._choose(job)
            if decision is None:
                self.rejected.append(job)
                if self.telemetry is not None:
                    self.telemetry.counter("scheduler.rejected").inc()
                return
            self.decisions.append(decision)
            if self.telemetry is not None:
                self._record_placement(decision)
            pool = self.pools[(decision.site.name, decision.device.name)]
            pool.submit(job, transfer_time=decision.staging_time)

        return place

    # --- site outages and failover ------------------------------------------------

    def fail_site(self, name: str) -> List[Job]:
        """Take a whole site down and fail its jobs over to survivors.

        Every pool at the site is evacuated; displaced jobs are rescored
        over the surviving sites (cloud candidates gated by the
        ``failover`` bursting policy, when one is set) and resubmitted.
        Jobs with no surviving placement are ``stranded`` until a
        :meth:`restore_site`. Returns the displaced jobs. No-op if the
        site is already down.
        """
        if name in self.down_sites:
            return []
        self.federation.site(name)  # unknown site names raise here
        self.down_sites.add(name)
        displaced: List[Job] = []
        for (site_name, _), pool in self.pools.items():
            if site_name == name:
                displaced.extend(pool.evacuate())
        if self.telemetry is not None:
            self.telemetry.counter("federation.site_outages").inc(site=name)
            self.telemetry.tracer.instant(
                "site_outage", CATEGORY_FAULT, self.simulation.now,
                site=name, displaced=len(displaced),
            )
        for job in displaced:
            self._failover(job)
        return displaced

    def restore_site(self, name: str) -> None:
        """Bring a failed site back and re-place any stranded jobs."""
        if name not in self.down_sites:
            return
        self.down_sites.discard(name)
        for (site_name, _), pool in self.pools.items():
            if site_name == name:
                pool.restore()
        if self.telemetry is not None:
            self.telemetry.counter("federation.site_restored").inc(site=name)
            self.telemetry.tracer.instant(
                "site_restore", CATEGORY_FAULT, self.simulation.now, site=name
            )
        stranded, self.stranded = self.stranded, []
        for job in stranded:
            self._failover(job)

    def _failover(self, job: Job) -> None:
        """Re-place one displaced job on the surviving sites."""
        candidates = self._candidates(job)
        if self.failover is not None:
            # One bursting decision per job, shared by its cloud candidates:
            # the policy's budget counts jobs, not candidate pools.
            cloud_ok: Optional[bool] = None
            allowed: List[PlacementDecision] = []
            for candidate in candidates:
                if candidate.site.kind is SiteKind.CLOUD:
                    if cloud_ok is None:
                        cloud_ok = self.failover.should_burst(job, float("inf"))
                    if not cloud_ok:
                        continue
                allowed.append(candidate)
            candidates = allowed
        decision = self._choose(job, candidates) if candidates else None
        if decision is None:
            self.stranded.append(job)
            if self.telemetry is not None:
                self.telemetry.counter("federation.failover.stranded").inc()
            return
        self.decisions.append(decision)
        if self.telemetry is not None:
            self.telemetry.counter("federation.failover.resubmitted").inc(
                site=decision.site.name
            )
            self._record_placement(decision)
        pool = self.pools[(decision.site.name, decision.device.name)]
        pool.submit(job, transfer_time=decision.staging_time)

    def _record_placement(self, decision: PlacementDecision) -> None:
        """Account a committed placement: counters plus actual staging."""
        telemetry = self.telemetry
        job = decision.job
        telemetry.counter("scheduler.placements").inc(
            site=decision.site.name, device=decision.device.name
        )
        if decision.site is not self.home_site:
            telemetry.counter("federation.cross_site_placements").inc()
        if decision.staging_time <= 0:
            return
        catalog = self.federation.catalog
        now = self.simulation.now
        if job.input_dataset is not None and job.input_dataset in catalog:
            dataset = catalog.get(job.input_dataset)
            source = catalog.closest_replica(job.input_dataset, decision.site)
            self.federation.wan.record_transfer(
                source, decision.site, dataset.size_bytes, at_time=now
            )
        else:
            # No catalogued dataset: account the fallback staging estimate.
            telemetry.counter("federation.staging_bytes").inc(
                job.input_bytes, site=decision.site.name
            )
            telemetry.tracer.complete(
                f"stage:{job.job_class.value}", CATEGORY_WAN,
                now, now + decision.staging_time,
                job=job.name, site=decision.site.name,
            )

    # --- metrics -------------------------------------------------------------------

    def mean_completion_time(self) -> float:
        records = [
            r for p in self.pools.values() for r in p.records
            if r.finish_time is not None
        ]
        if not records:
            return 0.0
        return sum(r.completion_time for r in records) / len(records)

    def makespan(self) -> float:
        return max((p.makespan() for p in self.pools.values()), default=0.0)

    def total_energy(self) -> float:
        """Total predicted energy over all placements, joules."""
        return sum(d.energy for d in self.decisions)

    def total_dollar_cost(self) -> float:
        """Total predicted rental cost over all placements, dollars."""
        return sum(d.dollar_cost for d in self.decisions)

    def placements_by_site(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.site.name] = counts.get(decision.site.name, 0) + 1
        return counts

    def placements_by_device_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for decision in self.decisions:
            kind = decision.device.kind.value
            counts[kind] = counts.get(kind, 0) + 1
        return counts
