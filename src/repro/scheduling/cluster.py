"""Event-driven single-site cluster simulator.

Simulates one site's job queue on the :class:`~repro.core.events.Simulation`
kernel: jobs arrive, a :class:`~repro.scheduling.policies.QueuePolicy`
orders the queue, and devices are held for each job's predicted runtime.
Per-job :class:`JobRecord` outcomes feed utilisation/wait/makespan metrics
for the scheduling and federation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.events import Event, Simulation
from repro.federation.site import Site
from repro.hardware.device import Device
from repro.observability.probes import CATEGORY_JOB, CATEGORY_QUEUE, Telemetry
from repro.scheduling.policies import FcfsPolicy, QueuePolicy
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import Job


@dataclass
class JobRecord:
    """Lifecycle record of one job through a cluster.

    ``ready_time`` is when the job last entered the queue (arrival plus
    staging, or the preemption instant for a requeued job);
    ``preemptions`` counts how many times it was kicked off its devices.
    """

    job: Job
    device: Device
    submit_time: float
    predicted_runtime: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    transfer_time: float = 0.0
    ready_time: Optional[float] = None
    preemptions: int = 0

    @property
    def queue_wait(self) -> float:
        if self.start_time is None:
            raise SchedulingError(f"{self.job.name} never started")
        return self.start_time - self.submit_time

    @property
    def completion_time(self) -> float:
        """Submission-to-finish time (includes queue wait and staging)."""
        if self.finish_time is None:
            raise SchedulingError(f"{self.job.name} never finished")
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Bounded slowdown: completion over max(runtime, 10 s)."""
        return self.completion_time / max(self.predicted_runtime, 10.0)


@dataclass
class _RunningJob:
    """Bookkeeping for a job currently holding devices."""

    record: JobRecord
    runtime: float
    needed: int
    finish_time: float
    finish_event: Event


class ClusterSimulator:
    """One site's queue and devices under a queue policy.

    Parameters
    ----------
    site:
        The site providing devices and noise characteristics.
    device:
        The device pool jobs run on. The cluster schedules over this single
        homogeneous pool; heterogeneous placement happens a level up in the
        meta-scheduler, which owns the choice of pool per job.
    policy:
        Queue ordering policy (default FCFS).
    simulation:
        An external simulation clock to share (a fresh one by default).
    telemetry:
        Optional :class:`~repro.observability.probes.Telemetry`; when set,
        the cluster records wait/service spans, job counters and
        preemptions. ``None`` (the default) costs one ``is not None``
        test per lifecycle step.
    """

    def __init__(
        self,
        site: Site,
        device: Device,
        policy: Optional[QueuePolicy] = None,
        simulation: Optional[Simulation] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if site.count(device) < 1:
            raise ConfigurationError(f"{site.name} has no {device.name}")
        self.site = site
        self.device = device
        self.policy = policy or FcfsPolicy()
        self.simulation = simulation or Simulation()
        self.telemetry = telemetry
        self.capacity = site.count(device)
        self._free = self.capacity
        self._queue: List[Tuple[JobRecord, float, int]] = []
        self._running: Dict[int, _RunningJob] = {}
        self.records: List[JobRecord] = []
        self._busy_device_seconds = 0.0

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return len(self._queue)

    @property
    def free_devices(self) -> int:
        """Devices not held by a running job."""
        return self._free

    # --- submission -----------------------------------------------------------

    def submit(self, job: Job, transfer_time: float = 0.0) -> JobRecord:
        """Queue a job at its arrival time (plus any staging delay)."""
        estimate = estimate_job(job, self.device, self.site)
        if not estimate.feasible:
            raise SchedulingError(
                f"{job.name} infeasible on {self.device.name}: "
                f"{estimate.infeasible_reason}"
            )
        if job.ranks > self.capacity:
            raise SchedulingError(
                f"{job.name} needs {job.ranks} x {self.device.name}, "
                f"cluster has {self.capacity}"
            )
        record = JobRecord(
            job=job,
            device=self.device,
            submit_time=job.arrival_time,
            predicted_runtime=estimate.time,
            transfer_time=transfer_time,
        )
        self.records.append(record)
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.submitted").inc(
                site=self.site.name, device=self.device.name
            )
        ready_time = job.arrival_time + transfer_time
        delay = max(0.0, ready_time - self.simulation.now)
        self.simulation.schedule(delay, lambda: self._enqueue(record))
        return record

    def _enqueue(self, record: JobRecord) -> None:
        record.ready_time = self.simulation.now
        self._queue.append((record, record.predicted_runtime, record.job.ranks))
        self._dispatch()

    # --- dispatch loop -----------------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            running = [(r.finish_time, r.needed) for r in self._running.values()]
            index = self.policy.select(
                self._queue, self._free, running, self.simulation.now
            )
            if index is None:
                return
            record, runtime, needed = self._queue.pop(index)
            self._start(record, runtime, needed)

    def _start(self, record: JobRecord, runtime: float, needed: int) -> None:
        record.start_time = self.simulation.now
        self._free -= needed
        self._busy_device_seconds += runtime * needed
        finish = self.simulation.now + runtime
        finish_event = self.simulation.schedule(
            runtime, lambda: self._finish(record, needed)
        )
        self._running[record.job.job_id] = _RunningJob(
            record=record, runtime=runtime, needed=needed,
            finish_time=finish, finish_event=finish_event,
        )
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.started").inc(
                site=self.site.name, device=self.device.name
            )
            ready = record.ready_time
            if ready is not None and record.start_time > ready:
                self.telemetry.tracer.complete(
                    f"wait:{record.job.job_class.value}", CATEGORY_QUEUE,
                    ready, record.start_time,
                    job=record.job.name, site=self.site.name,
                )

    def _finish(self, record: JobRecord, needed: int) -> None:
        record.finish_time = self.simulation.now
        self._free += needed
        del self._running[record.job.job_id]
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.finished").inc(
                site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.complete(
                f"run:{record.job.job_class.value}", CATEGORY_JOB,
                record.start_time, record.finish_time,
                job=record.job.name, site=self.site.name,
                device=self.device.name, ranks=needed,
            )
        self._dispatch()

    # --- preemption --------------------------------------------------------------

    def preempt(self, job_id: int) -> JobRecord:
        """Kick a running job off its devices and put it back in the queue.

        The job's finish event is cancelled (exercising the kernel's O(1)
        cancel path) and the *remaining* runtime is requeued, so a later
        restart only repeats the unfinished work. Raises
        :class:`SchedulingError` if the job is not currently running.
        """
        running = self._running.pop(job_id, None)
        if running is None:
            raise SchedulingError(f"job {job_id} is not running; cannot preempt")
        now = self.simulation.now
        self.simulation.cancel(running.finish_event)
        remaining = max(0.0, running.finish_time - now)
        self._free += running.needed
        self._busy_device_seconds -= remaining * running.needed
        record = running.record
        record.preemptions += 1
        if self.telemetry is not None:
            self.telemetry.counter("cluster.preemptions").inc(
                site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.complete(
                f"run:{record.job.job_class.value}", CATEGORY_JOB,
                record.start_time, now,
                job=record.job.name, site=self.site.name,
                device=self.device.name, preempted=True,
            )
            self.telemetry.tracer.instant(
                "preempt", CATEGORY_JOB, now, job=record.job.name
            )
        record.start_time = None
        record.ready_time = now
        self._queue.append((record, remaining, running.needed))
        self._dispatch()
        return record

    # --- runs and metrics -----------------------------------------------------------

    def run(self) -> List[JobRecord]:
        """Run the simulation to completion and return all records."""
        self.simulation.run()
        unfinished = [r for r in self.records if r.finish_time is None]
        if unfinished:
            names = ", ".join(r.job.name for r in unfinished[:5])
            raise SchedulingError(f"jobs never finished: {names}")
        return self.records

    @property
    def estimated_queue_wait(self) -> float:
        """Crude wait estimate: queued + running work over capacity.

        Used by bursting policies to decide overflow before running.
        """
        backlog = sum(runtime * needed for _, runtime, needed in self._queue)
        for running in self._running.values():
            backlog += (
                max(0.0, running.finish_time - self.simulation.now) * running.needed
            )
        return backlog / self.capacity

    def makespan(self) -> float:
        """Finish time of the last job."""
        if not self.records:
            return 0.0
        return max(r.finish_time for r in self.records if r.finish_time is not None)

    def mean_queue_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queue_wait for r in self.records) / len(self.records)

    def utilization(self) -> float:
        """Busy device-seconds over capacity x makespan."""
        span = self.makespan()
        if span == 0:
            return 0.0
        return self._busy_device_seconds / (self.capacity * span)
