"""Event-driven single-site cluster simulator.

Simulates one site's job queue on the :class:`~repro.core.events.Simulation`
kernel: jobs arrive, a :class:`~repro.scheduling.policies.QueuePolicy`
orders the queue, and devices are held for each job's predicted runtime.
Per-job :class:`JobRecord` outcomes feed utilisation/wait/makespan metrics
for the scheduling and federation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.events import Simulation
from repro.federation.site import Site
from repro.hardware.device import Device
from repro.scheduling.policies import FcfsPolicy, QueuePolicy
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import Job


@dataclass
class JobRecord:
    """Lifecycle record of one job through a cluster."""

    job: Job
    device: Device
    submit_time: float
    predicted_runtime: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    transfer_time: float = 0.0

    @property
    def queue_wait(self) -> float:
        if self.start_time is None:
            raise SchedulingError(f"{self.job.name} never started")
        return self.start_time - self.submit_time

    @property
    def completion_time(self) -> float:
        """Submission-to-finish time (includes queue wait and staging)."""
        if self.finish_time is None:
            raise SchedulingError(f"{self.job.name} never finished")
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Bounded slowdown: completion over max(runtime, 10 s)."""
        return self.completion_time / max(self.predicted_runtime, 10.0)


class ClusterSimulator:
    """One site's queue and devices under a queue policy.

    Parameters
    ----------
    site:
        The site providing devices and noise characteristics.
    device:
        The device pool jobs run on. The cluster schedules over this single
        homogeneous pool; heterogeneous placement happens a level up in the
        meta-scheduler, which owns the choice of pool per job.
    policy:
        Queue ordering policy (default FCFS).
    simulation:
        An external simulation clock to share (a fresh one by default).
    """

    def __init__(
        self,
        site: Site,
        device: Device,
        policy: Optional[QueuePolicy] = None,
        simulation: Optional[Simulation] = None,
    ) -> None:
        if site.count(device) < 1:
            raise ConfigurationError(f"{site.name} has no {device.name}")
        self.site = site
        self.device = device
        self.policy = policy or FcfsPolicy()
        self.simulation = simulation or Simulation()
        self.capacity = site.count(device)
        self._free = self.capacity
        self._queue: List[Tuple[JobRecord, float, int]] = []
        self._running: Dict[int, Tuple[float, int]] = {}  # job_id -> (finish, devices)
        self.records: List[JobRecord] = []
        self._busy_device_seconds = 0.0

    # --- submission -----------------------------------------------------------

    def submit(self, job: Job, transfer_time: float = 0.0) -> JobRecord:
        """Queue a job at its arrival time (plus any staging delay)."""
        estimate = estimate_job(job, self.device, self.site)
        if not estimate.feasible:
            raise SchedulingError(
                f"{job.name} infeasible on {self.device.name}: "
                f"{estimate.infeasible_reason}"
            )
        if job.ranks > self.capacity:
            raise SchedulingError(
                f"{job.name} needs {job.ranks} x {self.device.name}, "
                f"cluster has {self.capacity}"
            )
        record = JobRecord(
            job=job,
            device=self.device,
            submit_time=job.arrival_time,
            predicted_runtime=estimate.time,
            transfer_time=transfer_time,
        )
        self.records.append(record)
        ready_time = job.arrival_time + transfer_time
        delay = max(0.0, ready_time - self.simulation.now)
        self.simulation.schedule(delay, lambda: self._enqueue(record))
        return record

    def _enqueue(self, record: JobRecord) -> None:
        self._queue.append((record, record.predicted_runtime, record.job.ranks))
        self._dispatch()

    # --- dispatch loop -----------------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            running = list(self._running.values())
            index = self.policy.select(
                self._queue, self._free, running, self.simulation.now
            )
            if index is None:
                return
            record, runtime, needed = self._queue.pop(index)
            self._start(record, runtime, needed)

    def _start(self, record: JobRecord, runtime: float, needed: int) -> None:
        record.start_time = self.simulation.now
        self._free -= needed
        self._busy_device_seconds += runtime * needed
        finish = self.simulation.now + runtime
        self._running[record.job.job_id] = (finish, needed)
        self.simulation.schedule(runtime, lambda: self._finish(record, needed))

    def _finish(self, record: JobRecord, needed: int) -> None:
        record.finish_time = self.simulation.now
        self._free += needed
        del self._running[record.job.job_id]
        self._dispatch()

    # --- runs and metrics -----------------------------------------------------------

    def run(self) -> List[JobRecord]:
        """Run the simulation to completion and return all records."""
        self.simulation.run()
        unfinished = [r for r in self.records if r.finish_time is None]
        if unfinished:
            names = ", ".join(r.job.name for r in unfinished[:5])
            raise SchedulingError(f"jobs never finished: {names}")
        return self.records

    @property
    def estimated_queue_wait(self) -> float:
        """Crude wait estimate: queued + running work over capacity.

        Used by bursting policies to decide overflow before running.
        """
        backlog = sum(runtime * needed for _, runtime, needed in self._queue)
        for finish, needed in self._running.values():
            backlog += max(0.0, finish - self.simulation.now) * needed
        return backlog / self.capacity

    def makespan(self) -> float:
        """Finish time of the last job."""
        if not self.records:
            return 0.0
        return max(r.finish_time for r in self.records if r.finish_time is not None)

    def mean_queue_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queue_wait for r in self.records) / len(self.records)

    def utilization(self) -> float:
        """Busy device-seconds over capacity x makespan."""
        span = self.makespan()
        if span == 0:
            return 0.0
        return self._busy_device_seconds / (self.capacity * span)
