"""Event-driven single-site cluster simulator.

Simulates one site's job queue on the :class:`~repro.core.events.Simulation`
kernel: jobs arrive, a :class:`~repro.scheduling.policies.QueuePolicy`
orders the queue, and devices are held for each job's predicted runtime.
Per-job :class:`JobRecord` outcomes feed utilisation/wait/makespan metrics
for the scheduling and federation experiments.

Resilience (see :mod:`repro.resilience`): the cluster reacts to injected
faults. :meth:`ClusterSimulator.fail_node` takes a device out (killing a
victim job if none are idle), :meth:`ClusterSimulator.fail_job` kills one
job and requeues it under the optional retry policy — resuming from the
last checkpoint when a checkpoint plan is configured — and
:meth:`ClusterSimulator.evacuate` / :meth:`ClusterSimulator.restore`
implement whole-site outages for metascheduler failover. Job conservation
(submitted = completed + dead + in-flight + evacuated) holds at every
instant; :func:`repro.resilience.metrics.check_conservation` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.core.events import Event, Simulation
from repro.core.rng import RandomSource
from repro.federation.site import Site
from repro.hardware.device import Device
from repro.observability.probes import (
    CATEGORY_FAULT,
    CATEGORY_JOB,
    CATEGORY_QUEUE,
    Telemetry,
)
from repro.scheduling.policies import FcfsPolicy, QueuePolicy
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import Job


@dataclass
class JobRecord:
    """Lifecycle record of one job through a cluster.

    ``ready_time`` is when the job last entered the queue (arrival plus
    staging, or the preemption instant for a requeued job);
    ``preemptions`` counts how many times it was kicked off its devices.

    Resilience fields: ``failures`` counts fault-induced kills,
    ``retries`` counts requeues after a kill, ``wasted_time`` accumulates
    per-kill lost seconds (elapsed minus checkpoint-saved progress), and
    ``dead`` marks jobs that exhausted their retry budget (they appear on
    the cluster's ``dead_jobs`` ledger and never finish).
    """

    job: Job
    device: Device
    submit_time: float
    predicted_runtime: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    transfer_time: float = 0.0
    ready_time: Optional[float] = None
    preemptions: int = 0
    failures: int = 0
    retries: int = 0
    wasted_time: float = 0.0
    dead: bool = False
    killed_at: Optional[float] = None

    @property
    def queue_wait(self) -> float:
        if self.start_time is None:
            raise SchedulingError(f"{self.job.name} never started")
        return self.start_time - self.submit_time

    @property
    def completion_time(self) -> float:
        """Submission-to-finish time (includes queue wait and staging)."""
        if self.finish_time is None:
            raise SchedulingError(f"{self.job.name} never finished")
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Bounded slowdown: completion over max(runtime, 10 s)."""
        return self.completion_time / max(self.predicted_runtime, 10.0)


@dataclass
class _RunningJob:
    """Bookkeeping for a job currently holding devices.

    ``work`` is the intrinsic compute this attempt covers and
    ``restart_overhead`` the recovery prefix charged before it — the two
    components checkpoint arithmetic needs on a kill (``runtime`` also
    includes checkpoint-write time).
    """

    record: JobRecord
    runtime: float
    needed: int
    finish_time: float
    finish_event: Event
    work: float = 0.0
    restart_overhead: float = 0.0


class ClusterSimulator:
    """One site's queue and devices under a queue policy.

    Parameters
    ----------
    site:
        The site providing devices and noise characteristics.
    device:
        The device pool jobs run on. The cluster schedules over this single
        homogeneous pool; heterogeneous placement happens a level up in the
        meta-scheduler, which owns the choice of pool per job.
    policy:
        Queue ordering policy (default FCFS).
    simulation:
        An external simulation clock to share (a fresh one by default).
    telemetry:
        Optional :class:`~repro.observability.probes.Telemetry`; when set,
        the cluster records wait/service spans, job counters and
        preemptions. ``None`` (the default) costs one ``is not None``
        test per lifecycle step.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` (duck-typed:
        ``max_retries`` and ``backoff(attempt, rng)``) governing how
        killed jobs requeue. ``None`` retries immediately and without
        bound — every kill requeues with zero backoff.
    checkpoint:
        Optional :class:`~repro.resilience.recovery.CheckpointPlan`
        (duck-typed: ``attempt_runtime``/``saved_work``/``restart_time``).
        When set, attempts pay checkpoint-write overhead and kills resume
        from the last completed checkpoint instead of from scratch.
    rng:
        Optional :class:`~repro.core.rng.RandomSource` for backoff jitter
        and victim selection on node failures; fork it from the run seed
        so campaigns compose with the sweep engine's determinism contract.
        ``None`` keeps both deterministic (no jitter; lowest-id victim).
    """

    def __init__(
        self,
        site: Site,
        device: Device,
        policy: Optional[QueuePolicy] = None,
        simulation: Optional[Simulation] = None,
        telemetry: Optional[Telemetry] = None,
        *,
        retry_policy: Optional["RetryPolicy"] = None,
        checkpoint: Optional["CheckpointPlan"] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if site.count(device) < 1:
            raise ConfigurationError(f"{site.name} has no {device.name}")
        self.site = site
        self.device = device
        self.policy = policy or FcfsPolicy()
        self.simulation = simulation or Simulation()
        self.telemetry = telemetry
        self.retry_policy = retry_policy
        self.checkpoint = checkpoint
        self.rng = rng
        self.capacity = site.count(device)
        #: Healthy-cluster size; ``capacity`` shrinks while nodes are down.
        self.nominal_capacity = self.capacity
        self._free = self.capacity
        self._queue: List[Tuple[JobRecord, float, int]] = []
        self._running: Dict[int, _RunningJob] = {}
        self.records: List[JobRecord] = []
        self._busy_device_seconds = 0.0
        # --- resilience state ---
        self.failed_nodes = 0
        self.down = False
        self.dead_jobs: List[JobRecord] = []
        self.kill_times: List[float] = []
        self.evacuated_records: List[JobRecord] = []
        self._useful_device_seconds = 0.0
        self._wasted_device_seconds = 0.0
        #: job_id -> (scheduled enqueue event, record): submissions still
        #: staging in plus kills waiting out their backoff.
        self._pending_enqueues: Dict[int, Tuple[Event, JobRecord]] = {}
        #: job_id -> intrinsic work not yet durably completed.
        self._remaining_work: Dict[int, float] = {}
        #: job_id -> restart overhead the next attempt must pay.
        self._restart_prefix: Dict[int, float] = {}
        #: job_id -> (work, restart_overhead) for the queued attempt.
        self._attempt_meta: Dict[int, Tuple[float, float]] = {}

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return len(self._queue)

    @property
    def free_devices(self) -> int:
        """Devices not held by a running job."""
        return self._free

    def running_jobs(self) -> List[Tuple[int, int]]:
        """``(job_id, devices held)`` for every running job, id-sorted.

        The stable, public view fault bindings use to pick kill victims
        (e.g. memory DUEs in :func:`repro.resilience.memerrors.bind_memory`).
        """
        return [
            (job_id, self._running[job_id].needed)
            for job_id in sorted(self._running)
        ]

    @property
    def pending_requeues(self) -> int:
        """Jobs scheduled to (re)enter the queue: staging in or backing off."""
        return len(self._pending_enqueues)

    @property
    def useful_device_seconds(self) -> float:
        """Intrinsic work of completed jobs, in device-seconds."""
        return self._useful_device_seconds

    @property
    def wasted_device_seconds(self) -> float:
        """Device-seconds burned on killed attempts beyond saved progress."""
        return self._wasted_device_seconds

    # --- submission -----------------------------------------------------------

    def submit(self, job: Job, transfer_time: float = 0.0) -> JobRecord:
        """Queue a job at its arrival time (plus any staging delay)."""
        estimate = estimate_job(job, self.device, self.site)
        if not estimate.feasible:
            raise SchedulingError(
                f"{job.name} infeasible on {self.device.name}: "
                f"{estimate.infeasible_reason}"
            )
        if job.ranks > self.nominal_capacity:
            raise SchedulingError(
                f"{job.name} needs {job.ranks} x {self.device.name}, "
                f"cluster has {self.nominal_capacity}"
            )
        record = JobRecord(
            job=job,
            device=self.device,
            submit_time=job.arrival_time,
            predicted_runtime=estimate.time,
            transfer_time=transfer_time,
        )
        self.records.append(record)
        self._remaining_work[job.job_id] = estimate.time
        self._restart_prefix[job.job_id] = 0.0
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.submitted").inc(
                site=self.site.name, device=self.device.name
            )
        ready_time = job.arrival_time + transfer_time
        delay = max(0.0, ready_time - self.simulation.now)
        self._schedule_enqueue(record, delay)
        return record

    def _schedule_enqueue(self, record: JobRecord, delay: float) -> None:
        event = self.simulation.schedule(delay, lambda: self._enqueue(record))
        self._pending_enqueues[record.job.job_id] = (event, record)

    def _enqueue(self, record: JobRecord) -> None:
        job_id = record.job.job_id
        self._pending_enqueues.pop(job_id, None)
        record.ready_time = self.simulation.now
        work = self._remaining_work.get(job_id, record.predicted_runtime)
        prefix = self._restart_prefix.get(job_id, 0.0)
        runtime = prefix + (
            self.checkpoint.attempt_runtime(work)
            if self.checkpoint is not None else work
        )
        self._attempt_meta[job_id] = (work, prefix)
        self._queue.append((record, runtime, record.job.ranks))
        self._dispatch()

    # --- dispatch loop -----------------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            if self.down:
                return
            running = [(r.finish_time, r.needed) for r in self._running.values()]
            index = self.policy.select(
                self._queue, self._free, running, self.simulation.now
            )
            if index is None:
                return
            record, runtime, needed = self._queue.pop(index)
            self._start(record, runtime, needed)

    def _start(self, record: JobRecord, runtime: float, needed: int) -> None:
        record.start_time = self.simulation.now
        self._free -= needed
        self._busy_device_seconds += runtime * needed
        finish = self.simulation.now + runtime
        finish_event = self.simulation.schedule(
            runtime, lambda: self._finish(record, needed)
        )
        work, prefix = self._attempt_meta.pop(
            record.job.job_id, (runtime, 0.0)
        )
        self._running[record.job.job_id] = _RunningJob(
            record=record, runtime=runtime, needed=needed,
            finish_time=finish, finish_event=finish_event,
            work=work, restart_overhead=prefix,
        )
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.started").inc(
                site=self.site.name, device=self.device.name
            )
            ready = record.ready_time
            if ready is not None and record.start_time > ready:
                self.telemetry.tracer.complete(
                    f"wait:{record.job.job_class.value}", CATEGORY_QUEUE,
                    ready, record.start_time,
                    job=record.job.name, site=self.site.name,
                )
            if record.killed_at is not None:
                # Recovery latency: kill instant to restart instant.
                self.telemetry.tracer.complete(
                    f"recover:{record.job.job_class.value}", CATEGORY_FAULT,
                    record.killed_at, record.start_time,
                    job=record.job.name, site=self.site.name,
                    attempt=record.failures,
                )
        record.killed_at = None

    def _finish(self, record: JobRecord, needed: int) -> None:
        record.finish_time = self.simulation.now
        self._free += needed
        del self._running[record.job.job_id]
        job_id = record.job.job_id
        self._useful_device_seconds += record.predicted_runtime * needed
        self._remaining_work.pop(job_id, None)
        self._restart_prefix.pop(job_id, None)
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.finished").inc(
                site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.complete(
                f"run:{record.job.job_class.value}", CATEGORY_JOB,
                record.start_time, record.finish_time,
                job=record.job.name, site=self.site.name,
                device=self.device.name, ranks=needed,
            )
        self._dispatch()

    # --- preemption --------------------------------------------------------------

    def preempt(self, job_id: int) -> JobRecord:
        """Kick a running job off its devices and put it back in the queue.

        The job's finish event is cancelled (exercising the kernel's O(1)
        cancel path) and the *remaining* runtime is requeued, so a later
        restart only repeats the unfinished work. Raises
        :class:`SchedulingError` if the job is not currently running.
        """
        running = self._running.pop(job_id, None)
        if running is None:
            raise SchedulingError(f"job {job_id} is not running; cannot preempt")
        now = self.simulation.now
        self.simulation.cancel(running.finish_event)
        remaining = max(0.0, running.finish_time - now)
        self._free += running.needed
        self._busy_device_seconds -= remaining * running.needed
        record = running.record
        record.preemptions += 1
        if self.telemetry is not None:
            self.telemetry.counter("cluster.preemptions").inc(
                site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.complete(
                f"run:{record.job.job_class.value}", CATEGORY_JOB,
                record.start_time, now,
                job=record.job.name, site=self.site.name,
                device=self.device.name, preempted=True,
            )
            self.telemetry.tracer.instant(
                "preempt", CATEGORY_JOB, now, job=record.job.name
            )
        record.start_time = None
        record.ready_time = now
        # A preempted job keeps its progress: the requeued attempt is the
        # unfinished remainder, with no restart prefix to pay.
        self._attempt_meta[job_id] = (remaining, 0.0)
        self._queue.append((record, remaining, running.needed))
        self._dispatch()
        return record

    # --- fault handling -----------------------------------------------------------

    def fail_job(self, job_id: int) -> JobRecord:
        """Kill a running job: a fault takes its devices mid-attempt.

        Unlike :meth:`preempt`, progress since the last completed
        checkpoint is lost. The job requeues after the retry policy's
        backoff (immediately without one) unless its retry budget is
        exhausted, in which case it joins the dead-job ledger. Raises
        :class:`SchedulingError` if the job is not currently running.
        """
        running = self._running.pop(job_id, None)
        if running is None:
            raise SchedulingError(f"job {job_id} is not running; cannot kill")
        now = self.simulation.now
        self.simulation.cancel(running.finish_event)
        elapsed = now - running.record.start_time
        remaining_sched = max(0.0, running.finish_time - now)
        self._free += running.needed
        self._busy_device_seconds -= remaining_sched * running.needed
        record = running.record
        record.failures += 1
        record.killed_at = now
        self.kill_times.append(now)
        saved = 0.0
        if self.checkpoint is not None:
            saved = min(
                self.checkpoint.saved_work(elapsed, running.restart_overhead),
                running.work,
            )
        wasted = max(0.0, elapsed - saved)
        record.wasted_time += wasted
        self._wasted_device_seconds += wasted * running.needed
        self._remaining_work[job_id] = max(0.0, running.work - saved)
        self._restart_prefix[job_id] = (
            self.checkpoint.restart_time if self.checkpoint is not None else 0.0
        )
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.killed").inc(
                site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.complete(
                f"run:{record.job.job_class.value}", CATEGORY_JOB,
                record.start_time, now,
                job=record.job.name, site=self.site.name,
                device=self.device.name, killed=True,
            )
        record.start_time = None
        policy = self.retry_policy
        if policy is not None and record.failures > policy.max_retries:
            record.dead = True
            self.dead_jobs.append(record)
            self._remaining_work.pop(job_id, None)
            self._restart_prefix.pop(job_id, None)
            if self.telemetry is not None:
                self.telemetry.counter("cluster.jobs.dead").inc(
                    site=self.site.name, device=self.device.name
                )
            self._dispatch()
            return record
        record.retries += 1
        delay = (
            policy.backoff(record.failures - 1, rng=self.rng)
            if policy is not None else 0.0
        )
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.retried").inc(
                site=self.site.name, device=self.device.name
            )
        self._schedule_enqueue(record, delay)
        self._dispatch()
        return record

    def fail_node(self) -> Optional[JobRecord]:
        """Take one device out of service (a node fault).

        An idle device is preferred; with none free, a victim among the
        running jobs is killed — weighted by footprint when an ``rng`` is
        configured (wider jobs occupy more nodes), the lowest job id
        otherwise. Returns the killed job's record, or ``None`` when no
        job died. No-op when every node has already failed.
        """
        if self.capacity <= 0:
            return None
        self.capacity -= 1
        self.failed_nodes += 1
        if self.telemetry is not None:
            self.telemetry.counter("cluster.nodes.failed").inc(
                site=self.site.name, device=self.device.name
            )
        if self._free > 0:
            self._free -= 1
            return None
        ids = sorted(self._running)
        if self.rng is not None:
            victim_id = self.rng.choice(
                ids, weights=[self._running[i].needed for i in ids]
            )
        else:
            victim_id = ids[0]
        # The dead node eats one of the devices the kill frees.
        self._free -= 1
        return self.fail_job(victim_id)

    def repair_node(self) -> None:
        """Return one failed device to service and resume dispatching."""
        if self.failed_nodes == 0:
            return
        self.failed_nodes -= 1
        self.capacity += 1
        self._free += 1
        if self.telemetry is not None:
            self.telemetry.counter("cluster.nodes.repaired").inc(
                site=self.site.name, device=self.device.name
            )
        self._dispatch()

    def evacuate(self) -> List[Job]:
        """Site outage: stop dispatching and displace every job here.

        Running jobs are killed (their progress wasted — checkpoints at a
        dead site are unreachable), queued and staging jobs are recalled,
        and all displaced jobs' records move to ``evacuated_records`` so
        per-cluster conservation still balances. Returns the displaced
        jobs for resubmission elsewhere (metascheduler failover).
        """
        self.down = True
        now = self.simulation.now
        displaced: List[Job] = []

        def displace(record: JobRecord) -> None:
            job_id = record.job.job_id
            self._remaining_work.pop(job_id, None)
            self._restart_prefix.pop(job_id, None)
            self._attempt_meta.pop(job_id, None)
            self.records.remove(record)
            self.evacuated_records.append(record)
            displaced.append(record.job)

        for job_id in sorted(self._running):
            running = self._running.pop(job_id)
            self.simulation.cancel(running.finish_event)
            elapsed = now - running.record.start_time
            remaining_sched = max(0.0, running.finish_time - now)
            self._free += running.needed
            self._busy_device_seconds -= remaining_sched * running.needed
            self._wasted_device_seconds += elapsed * running.needed
            running.record.wasted_time += elapsed
            running.record.start_time = None
            displace(running.record)
        for record, _, _ in self._queue:
            displace(record)
        self._queue.clear()
        for event, record in list(self._pending_enqueues.values()):
            self.simulation.cancel(event)
            displace(record)
        self._pending_enqueues.clear()
        if self.telemetry is not None:
            self.telemetry.counter("cluster.jobs.evacuated").inc(
                len(displaced), site=self.site.name, device=self.device.name
            )
            self.telemetry.tracer.instant(
                "evacuate", CATEGORY_FAULT, now,
                site=self.site.name, displaced=len(displaced),
            )
        return displaced

    def restore(self) -> None:
        """End a site outage: resume dispatching queued work."""
        if not self.down:
            return
        self.down = False
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "restore", CATEGORY_FAULT, self.simulation.now,
                site=self.site.name,
            )
        self._dispatch()

    # --- runs and metrics -----------------------------------------------------------

    def run(self) -> List[JobRecord]:
        """Run the simulation to completion and return all records.

        Jobs on the dead-job ledger are an accounted outcome, not an
        error; anything else unfinished raises :class:`SchedulingError`.
        """
        self.simulation.run()
        unfinished = [
            r for r in self.records if r.finish_time is None and not r.dead
        ]
        if unfinished:
            names = ", ".join(r.job.name for r in unfinished[:5])
            raise SchedulingError(f"jobs never finished: {names}")
        return self.records

    @property
    def estimated_queue_wait(self) -> float:
        """Crude wait estimate: queued + running work over capacity.

        Used by bursting policies to decide overflow before running.
        """
        backlog = sum(runtime * needed for _, runtime, needed in self._queue)
        for running in self._running.values():
            backlog += (
                max(0.0, running.finish_time - self.simulation.now) * running.needed
            )
        return backlog / max(self.capacity, 1)

    def makespan(self) -> float:
        """Finish time of the last job."""
        return max(
            (r.finish_time for r in self.records if r.finish_time is not None),
            default=0.0,
        )

    def mean_queue_wait(self) -> float:
        finished = [r for r in self.records if r.start_time is not None]
        if not finished:
            return 0.0
        return sum(r.queue_wait for r in finished) / len(finished)

    def utilization(self) -> float:
        """Busy device-seconds over healthy capacity x makespan."""
        span = self.makespan()
        if span == 0:
            return 0.0
        return self._busy_device_seconds / (self.nominal_capacity * span)

    def goodput(self) -> float:
        """Useful device-seconds over healthy capacity x makespan.

        Counts each completed job's intrinsic work once — checkpoint
        writes, restart overheads and rolled-back progress are excluded —
        so ``goodput() <= utilization()`` always.
        """
        span = self.makespan()
        if span == 0:
            return 0.0
        return self._useful_device_seconds / (self.nominal_capacity * span)
