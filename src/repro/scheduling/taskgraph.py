"""A data-centric task-graph runtime (Legion-like) for heterogeneous nodes.

The paper (§III.D): "Especially well-suited for distributed heterogeneous
architectures, data-centric runtime environments like Legion are also
rapidly emerging. They enable the programmer to embed the data structure to
facilitate the extraction of task and data parallelism, and to map more
easily to complex, multi-level, memory hierarchies."

The model:

* a :class:`Region` is a logical chunk of data with a size and a current
  placement (some device's memory, or host),
* a :class:`DataTask` reads and writes regions and carries a
  device-independent :class:`~repro.hardware.device.KernelProfile`,
* a :class:`TaskGraph` derives dependencies from region access (RAW, WAR,
  WAW) in program order,
* a :class:`Mapper` assigns tasks to devices; the provided strategies are
  ``data-aware`` (minimise predicted finish = data movement + queue +
  compute — the Legion philosophy), ``compute-greedy`` (fastest device,
  blind to data location) and ``round-robin``,
* :class:`TaskGraphExecutor` simulates execution: per-device timelines,
  host-interconnect transfers whenever a task's inputs live elsewhere.

The C14 experiment shows the data-aware mapper beating data-blind mapping
on movement-heavy graphs — the reason data-centric runtimes exist.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.hardware.device import Device, KernelProfile

_region_ids = itertools.count()
_task_ids = itertools.count()

#: Placement name for data still in host memory.
HOST = "host"


@dataclass
class Region:
    """A logical data region.

    Attributes
    ----------
    name:
        Human-readable identifier (unique within a graph).
    size_bytes:
        Region size.
    placement:
        Where the current valid copy lives: ``HOST`` or a device name.
    """

    name: str
    size_bytes: float
    placement: str = HOST
    region_id: int = field(default_factory=lambda: next(_region_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError(f"{self.name}: size must be non-negative")


@dataclass
class DataTask:
    """A task reading/writing regions and running a kernel.

    Attributes
    ----------
    name:
        Identifier.
    kernel:
        Device-independent cost description.
    reads / writes:
        Regions accessed. A region in both is read-modify-write.
    """

    name: str
    kernel: KernelProfile
    reads: Tuple[Region, ...] = ()
    writes: Tuple[Region, ...] = ()
    task_id: int = field(default_factory=lambda: next(_task_ids))

    @property
    def accessed(self) -> Tuple[Region, ...]:
        seen = {}
        for region in self.reads + self.writes:
            seen.setdefault(region.region_id, region)
        return tuple(seen.values())

    def input_bytes(self) -> float:
        return sum(region.size_bytes for region in self.reads)


class TaskGraph:
    """Tasks in program order with dependencies derived from data access."""

    def __init__(self) -> None:
        self._tasks: List[DataTask] = []
        self._dependencies: Dict[int, List[int]] = {}

    def add(self, task: DataTask) -> DataTask:
        """Append a task; dependencies on earlier tasks are derived from
        RAW / WAR / WAW conflicts over shared regions."""
        deps: List[int] = []
        read_ids = {r.region_id for r in task.reads}
        write_ids = {r.region_id for r in task.writes}
        for earlier in self._tasks:
            earlier_writes = {r.region_id for r in earlier.writes}
            earlier_reads = {r.region_id for r in earlier.reads}
            raw = earlier_writes & read_ids
            war = earlier_reads & write_ids
            waw = earlier_writes & write_ids
            if raw or war or waw:
                deps.append(earlier.task_id)
        self._tasks.append(task)
        self._dependencies[task.task_id] = deps
        return task

    @property
    def tasks(self) -> List[DataTask]:
        return list(self._tasks)

    def dependencies(self, task: DataTask) -> List[int]:
        return list(self._dependencies[task.task_id])

    def independent_pairs(self) -> int:
        """Count of task pairs with no (transitive) ordering — the
        parallelism the data structure exposes."""
        closure: Dict[int, set] = {}
        for task in self._tasks:
            ancestors = set(self._dependencies[task.task_id])
            for dep in list(ancestors):
                ancestors |= closure.get(dep, set())
            closure[task.task_id] = ancestors
        independent = 0
        ids = [t.task_id for t in self._tasks]
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if b not in closure.get(a, set()) and a not in closure.get(b, set()):
                    independent += 1
        return independent


class Mapper:
    """Task-to-device mapping strategies."""

    STRATEGIES = ("data-aware", "compute-greedy", "round-robin")

    def __init__(self, strategy: str = "data-aware") -> None:
        if strategy not in self.STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        self.strategy = strategy
        self._round_robin_index = 0

    def choose(
        self,
        task: DataTask,
        devices: Sequence[Device],
        device_free_at: Dict[str, float],
        transfer_time,
    ) -> Device:
        """Pick a device for a task.

        ``transfer_time(task, device)`` prices moving the task's remote
        inputs to the device.
        """
        feasible = [d for d in devices if d.supports(task.kernel.precision)]
        if not feasible:
            raise SchedulingError(
                f"no device supports {task.kernel.precision} for {task.name}"
            )
        if self.strategy == "round-robin":
            device = feasible[self._round_robin_index % len(feasible)]
            self._round_robin_index += 1
            return device
        if self.strategy == "compute-greedy":
            return min(feasible, key=lambda d: d.time_for(task.kernel))

        # data-aware: minimise predicted finish time end to end.
        def predicted_finish(device: Device) -> float:
            return (
                device_free_at.get(device.name, 0.0)
                + transfer_time(task, device)
                + device.time_for(task.kernel)
            )

        return min(feasible, key=predicted_finish)


@dataclass(frozen=True)
class TaskExecution:
    """One task's simulated execution."""

    task: DataTask
    device_name: str
    start: float
    transfer_time: float
    compute_time: float

    @property
    def finish(self) -> float:
        return self.start + self.transfer_time + self.compute_time


class TaskGraphExecutor:
    """Simulates a task graph over a node's heterogeneous devices.

    Parameters
    ----------
    devices:
        The node's devices (one queue each).
    interconnect_bandwidth:
        Device-to-device / host-to-device transfer bandwidth, bytes/s
        (a CXL-class link by default).
    interconnect_latency:
        Per-transfer latency, seconds.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        mapper: Optional[Mapper] = None,
        interconnect_bandwidth: float = 64e9,
        interconnect_latency: float = 1e-6,
    ) -> None:
        if not devices:
            raise ConfigurationError("executor needs at least one device")
        if interconnect_bandwidth <= 0 or interconnect_latency < 0:
            raise ConfigurationError("invalid interconnect parameters")
        self.devices = list(devices)
        self.mapper = mapper or Mapper()
        self.interconnect_bandwidth = interconnect_bandwidth
        self.interconnect_latency = interconnect_latency

    def _transfer_time(self, task: DataTask, device: Device) -> float:
        remote_bytes = sum(
            region.size_bytes
            for region in task.reads
            if region.placement != device.name
        )
        if remote_bytes == 0:
            return 0.0
        return self.interconnect_latency + remote_bytes / self.interconnect_bandwidth

    def run(self, graph: TaskGraph) -> List[TaskExecution]:
        """Execute the graph; returns per-task executions in program order.

        Regions move: after a task runs, every region it accessed lives in
        its device's memory (valid-copy migration, Legion-style).
        """
        device_free_at: Dict[str, float] = {d.name: 0.0 for d in self.devices}
        finish_of: Dict[int, float] = {}
        executions: List[TaskExecution] = []
        for task in graph.tasks:
            ready = max(
                (finish_of[dep] for dep in graph.dependencies(task)), default=0.0
            )
            device = self.mapper.choose(
                task, self.devices, device_free_at, self._transfer_time
            )
            transfer = self._transfer_time(task, device)
            compute = device.time_for(task.kernel)
            start = max(ready, device_free_at[device.name])
            execution = TaskExecution(
                task=task,
                device_name=device.name,
                start=start,
                transfer_time=transfer,
                compute_time=compute,
            )
            executions.append(execution)
            device_free_at[device.name] = execution.finish
            finish_of[task.task_id] = execution.finish
            for region in task.accessed:
                region.placement = device.name
        return executions

    @staticmethod
    def makespan(executions: Sequence[TaskExecution]) -> float:
        """Completion time of the whole graph."""
        if not executions:
            return 0.0
        return max(e.finish for e in executions)

    @staticmethod
    def total_transfer_time(executions: Sequence[TaskExecution]) -> float:
        return sum(e.transfer_time for e in executions)
