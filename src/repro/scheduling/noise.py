"""OS and interference noise: why clouds break barrier-synchronised codes.

The paper (§II.C): "the interference of other applications running over the
same interconnect, storage network and compute ... creates noise and makes
barrier-based synchronizations ineffective (the slowest component dictates
performance)."

Model
-----
In a BSP superstep, P ranks each compute for a nominally equal time ``t``,
then synchronise at a barrier. With multiplicative noise, rank i takes
``t * (1 + X_i)`` with ``X_i ~ N(0, cv^2)``; the superstep takes the
*maximum* over ranks. The expected maximum of P iid normals grows like
``cv * sqrt(2 ln P)``, so the slowdown

    ``E[superstep] / t  ≈  1 + cv * sqrt(2 ln P)``

grows without bound in P — tiny per-node noise (cv ~ 0.3%) is harmless at
any scale, cloud-level noise (cv ~ 8%) halves efficiency at a few thousand
ranks. This order-statistics effect is exactly the paper's claim, and the
C7 experiment sweeps it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource


def expected_max_of_normals(count: int, std: float) -> float:
    """Expected maximum of ``count`` iid N(0, std^2) variables.

    Uses the asymptotic ``std * sqrt(2 ln n)`` with the standard
    second-order correction; exact small-n values for n <= 2.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0 or count == 1:
        return 0.0
    if count == 2:
        return std / math.sqrt(math.pi)
    log_n = math.log(count)
    primary = math.sqrt(2.0 * log_n)
    correction = (math.log(log_n) + math.log(4.0 * math.pi)) / (2.0 * primary)
    return std * max(primary - correction, 0.0)


def bsp_slowdown(ranks: int, noise_cv: float) -> float:
    """Expected BSP superstep slowdown at ``ranks`` with noise ``noise_cv``.

    Returns ``E[max_i (1 + X_i)] >= 1``; deterministic closed form used by
    runtime prediction (the sampling model below is for validation).
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if noise_cv < 0:
        raise ValueError("noise_cv must be non-negative")
    return 1.0 + expected_max_of_normals(ranks, noise_cv)


@dataclass
class NoiseModel:
    """A samplable noise model for validation and stochastic simulation.

    Attributes
    ----------
    noise_cv:
        Coefficient of variation of per-rank compute time.
    heavy_tail_probability / heavy_tail_magnitude:
        With this probability a rank additionally suffers a straggler event
        (e.g. page migration, daemon wakeup) multiplying its time by the
        magnitude — clouds have fatter tails than dedicated systems.
    """

    noise_cv: float
    heavy_tail_probability: float = 0.0
    heavy_tail_magnitude: float = 3.0

    def __post_init__(self) -> None:
        if self.noise_cv < 0:
            raise ConfigurationError("noise_cv must be non-negative")
        if not 0.0 <= self.heavy_tail_probability <= 1.0:
            raise ConfigurationError("heavy_tail_probability must be in [0, 1]")
        if self.heavy_tail_magnitude < 1.0:
            raise ConfigurationError("heavy_tail_magnitude must be >= 1")

    def sample_superstep(
        self, ranks: int, nominal_time: float, rng: RandomSource
    ) -> float:
        """One sampled superstep duration (max over noisy ranks)."""
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        if nominal_time < 0:
            raise ValueError("nominal_time must be non-negative")
        if ranks == 1 and self.heavy_tail_probability == 0:
            return nominal_time * max(0.0, 1.0 + rng.normal(0.0, self.noise_cv))
        worst = 0.0
        draws = rng.numpy.normal(0.0, self.noise_cv, size=ranks)
        for noise in draws:
            factor = max(0.0, 1.0 + float(noise))
            if self.heavy_tail_probability and rng.bernoulli(self.heavy_tail_probability):
                factor *= self.heavy_tail_magnitude
            worst = max(worst, factor)
        return nominal_time * worst

    def expected_slowdown(self, ranks: int) -> float:
        """Closed-form expected slowdown (ignores the heavy tail term)."""
        base = bsp_slowdown(ranks, self.noise_cv)
        # A rank straggling with probability p inflates the expected max by
        # roughly p * ranks capped at 1 occurrences of the magnitude.
        if self.heavy_tail_probability > 0 and ranks > 1:
            expected_stragglers = min(1.0, self.heavy_tail_probability * ranks)
            base += expected_stragglers * (self.heavy_tail_magnitude - 1.0)
        return base
