"""Analytical runtime and energy prediction for a job on a device at a site.

This is the model the meta-scheduler uses to "select the best available
silicon for the job" (§III.F): it combines

* the device model for compute phases (roofline + structural refinements),
* the site's interconnect for communication phases,
* the site's noise level for barrier-synchronised phases (§II.C),
* precision compatibility (jobs degrade along the precision ladder when a
  device lacks their format natively — §III.D "model compilation to
  reduced precision arithmetic"; FP64 simulation never degrades).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.federation.site import Site
from repro.hardware.device import Device, KernelProfile
from repro.hardware.precision import Precision, narrower_precisions
from repro.scheduling.noise import bsp_slowdown
from repro.workloads.base import Job, JobClass, Phase, PhaseKind


@dataclass(frozen=True)
class RuntimeEstimate:
    """Predicted execution of a job on (device, site).

    ``feasible`` is False when the device cannot run the job at all (e.g.
    an FP64 simulation on an INT8-only edge part).
    """

    feasible: bool
    time: float = float("inf")
    energy: float = float("inf")
    devices_used: int = 0
    effective_precision: Optional[Precision] = None
    infeasible_reason: str = ""

    def __post_init__(self) -> None:
        if self.feasible and (self.time < 0 or self.energy < 0):
            raise ConfigurationError("feasible estimate needs non-negative cost")


#: Job classes whose numerics tolerate precision degradation. Classical
#: simulation demands its requested precision; AI and analytics tolerate
#: narrowing (quantisation).
_DEGRADABLE = (JobClass.ML_TRAINING, JobClass.ML_INFERENCE, JobClass.ANALYTICS, JobClass.HYBRID)


def resolve_precision(job: Job, device: Device) -> Optional[Precision]:
    """The precision the job would execute at on the device, or None.

    Native support wins; degradable job classes walk down the ladder; the
    ANALOG pseudo-precision accepts any degradable job whose ladder reaches
    INT8.
    """
    if device.supports(job.precision):
        return job.precision
    if job.job_class not in _DEGRADABLE:
        return None
    for candidate in narrower_precisions(job.precision):
        if device.supports(candidate):
            return candidate
    if device.supports(Precision.ANALOG) and job.precision.bits <= 32:
        return Precision.ANALOG
    return None


def _phase_time(
    phase: Phase,
    job: Job,
    device: Device,
    site: Site,
    precision: Precision,
) -> float:
    """Time of one phase for one rank-group iteration."""
    if phase.kind is PhaseKind.COMPUTE:
        assert phase.kernel is not None
        kernel = KernelProfile(
            flops=phase.kernel.flops,
            bytes_moved=phase.kernel.bytes_moved,
            precision=precision,
            mvm_dimension=phase.kernel.mvm_dimension,
            parallel_fraction=phase.kernel.parallel_fraction,
        )
        return device.time_for(kernel)
    if phase.kind is PhaseKind.COMMUNICATION:
        return site.interconnect_latency + phase.comm_bytes / site.interconnect_bandwidth
    if phase.kind is PhaseKind.BARRIER:
        return site.interconnect_latency * 2.0
    if phase.kind is PhaseKind.IO:
        return phase.io_bytes / site.interconnect_bandwidth
    raise ConfigurationError(f"unknown phase kind: {phase.kind}")


def estimate_job(job: Job, device: Device, site: Site) -> RuntimeEstimate:
    """Predict time/energy for ``job`` on ``device`` at ``site``.

    The job's ranks map one-to-one onto devices; if the site has fewer free
    devices the caller decides whether to queue (this function prices the
    execution itself). Barrier-closed phases are inflated by the site's
    noise slowdown at the job's width.
    """
    precision = resolve_precision(job, device)
    if precision is None:
        return RuntimeEstimate(
            feasible=False,
            infeasible_reason=(
                f"{device.name} supports neither {job.precision} nor a "
                f"degradable alternative for {job.job_class.value}"
            ),
        )

    noise_factor = bsp_slowdown(job.ranks, site.noise_level or 0.0)
    total_time = 0.0
    total_energy = 0.0
    try:
        for task in job.tasks:
            task_time = 0.0
            has_barrier = any(phase.sync for phase in task.phases)
            for phase in task.phases:
                phase_time = _phase_time(phase, job, device, site, precision)
                task_time += phase_time
                if phase.kind is PhaseKind.COMPUTE:
                    total_energy += phase_time * device.spec.tdp * task.ranks
                else:
                    total_energy += phase_time * device.spec.idle_power * task.ranks
            # A barrier-closed superstep runs at the pace of the slowest
            # rank: the whole iteration inflates by the expected max over
            # per-rank noise (SII.C — "the slowest component dictates
            # performance"), not just the synchronising phase itself.
            if has_barrier and task.ranks > 1:
                task_time *= noise_factor
            total_time += task_time
    except ConfigurationError as error:
        return RuntimeEstimate(feasible=False, infeasible_reason=str(error))

    total_time *= job.iterations
    total_energy *= job.iterations
    return RuntimeEstimate(
        feasible=True,
        time=total_time,
        energy=total_energy,
        devices_used=job.ranks,
        effective_precision=precision,
    )


def best_device_at_site(job: Job, site: Site) -> Optional[Device]:
    """The installed device minimising predicted time (None if none fits)."""
    best: Optional[Device] = None
    best_time = float("inf")
    for device in site.devices:
        if site.count(device) < job.ranks:
            continue
        estimate = estimate_job(job, device, site)
        if estimate.feasible and estimate.time < best_time:
            best_time = estimate.time
            best = device
    return best
