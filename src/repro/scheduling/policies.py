"""Queue ordering policies for the cluster simulator.

Three standard policies bracket the design space:

* :class:`FcfsPolicy` — strict arrival order (fair, poor packing),
* :class:`SjfPolicy` — shortest predicted job first (good mean wait,
  starves elephants),
* :class:`EasyBackfillPolicy` — FCFS head with conservative backfilling:
  a shorter job may jump the queue if it does not delay the head job's
  earliest possible start (the de-facto standard in production HPC).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple

#: (job_record, predicted_runtime, required_devices)
QueueEntry = Tuple[object, float, int]


class QueuePolicy(ABC):
    """Strategy deciding which queued job starts next."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        queue: Sequence[QueueEntry],
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        """Index into ``queue`` of the next job to start, or None.

        ``running_completions`` is a list of ``(finish_time, devices)`` for
        currently running jobs, used by backfilling to compute shadow times.
        """


class FcfsPolicy(QueuePolicy):
    """First come, first served: start the head if it fits, else wait."""

    name = "fcfs"

    def select(
        self,
        queue: Sequence[QueueEntry],
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        if not queue:
            return None
        _, _, needed = queue[0]
        if needed <= free_devices:
            return 0
        return None


class SjfPolicy(QueuePolicy):
    """Shortest (predicted) job first among those that fit now."""

    name = "sjf"

    def select(
        self,
        queue: Sequence[QueueEntry],
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        best_index: Optional[int] = None
        best_runtime = float("inf")
        for index, (_, runtime, needed) in enumerate(queue):
            if needed <= free_devices and runtime < best_runtime:
                best_runtime = runtime
                best_index = index
        return best_index


class PriorityPolicy(QueuePolicy):
    """QoS-weighted priority with ageing.

    Jobs are ordered by ``qos_weight / (1 + age)``-style score: higher QoS
    classes (see :class:`repro.federation.sla.QoSClass`) start first among
    those that fit, with an ageing term preventing starvation of
    best-effort work. The weight is read from the queue entry's record via
    ``record.job.qos_weight`` when present (defaults to 1.0).
    """

    name = "priority"

    def __init__(self, ageing_halflife: float = 3_600.0) -> None:
        if ageing_halflife <= 0:
            raise ValueError("ageing_halflife must be positive")
        self.ageing_halflife = ageing_halflife

    @staticmethod
    def _weight(record: object) -> float:
        job = getattr(record, "job", None)
        weight = getattr(job, "qos_weight", None)
        return float(weight) if weight is not None else 1.0

    @staticmethod
    def _submit_time(record: object) -> float:
        return float(getattr(record, "submit_time", 0.0))

    def select(
        self,
        queue: Sequence[QueueEntry],
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        best_index: Optional[int] = None
        best_score = -float("inf")
        for index, (record, _, needed) in enumerate(queue):
            if needed > free_devices:
                continue
            age = max(0.0, now - self._submit_time(record))
            score = self._weight(record) * (1.0 + age / self.ageing_halflife)
            if score > best_score:
                best_score = score
                best_index = index
        return best_index


class EasyBackfillPolicy(QueuePolicy):
    """EASY backfilling: FCFS head reservation plus opportunistic fill.

    If the head job fits, start it. Otherwise compute the head's *shadow
    time* (when enough running jobs finish to free its devices) and start
    any later job that (a) fits now and (b) is predicted to finish before
    the shadow time or uses only devices the head will not need.
    """

    name = "easy-backfill"

    def select(
        self,
        queue: Sequence[QueueEntry],
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Optional[int]:
        if not queue:
            return None
        _, head_runtime, head_needed = queue[0]
        if head_needed <= free_devices:
            return 0

        shadow_time, spare_at_shadow = self._shadow(
            head_needed, free_devices, running_completions, now
        )
        for index in range(1, len(queue)):
            _, runtime, needed = queue[index]
            if needed > free_devices:
                continue
            finishes_before_shadow = now + runtime <= shadow_time
            fits_in_spare = needed <= spare_at_shadow
            if finishes_before_shadow or fits_in_spare:
                return index
        return None

    @staticmethod
    def _shadow(
        head_needed: int,
        free_devices: int,
        running_completions: Sequence[Tuple[float, int]],
        now: float,
    ) -> Tuple[float, int]:
        """Earliest time the head job could start, and spare devices then."""
        available = free_devices
        for finish_time, devices in sorted(running_completions):
            available += devices
            if available >= head_needed:
                return max(finish_time, now), available - head_needed
        # Head can never start (needs more than the machine has) — treat the
        # shadow as infinitely far so anything may backfill.
        return float("inf"), free_devices
