"""Checkpoint/restart resilience with fabric-attached persistent memory.

The paper (§III.C): "The design separates persistent memory, the first
storage tier, from processing. It ensures global accessibility for
resilience and capacity, while maintaining low latency for local access."

At exascale, node counts push the system mean-time-between-failures (MTBF)
into hours, so long jobs must checkpoint. The classical trade-off is the
Young/Daly optimum: checkpoint too often and overhead dominates, too rarely
and rework after failures dominates. Fabric-attached persistent memory
(Gen-Z/CXL tier) changes the constants — checkpoints stream at memory-class
bandwidth instead of parallel-filesystem bandwidth — which is exactly the
resilience argument the paper makes for separating the persistence tier.

Model
-----
* :class:`FailureModel` — per-node exponential failures; system MTBF =
  node MTBF / nodes.
* :class:`CheckpointTarget` — where checkpoints go (bandwidth + latency);
  presets for a parallel filesystem, node-local SSD and fabric PM.
* :func:`young_daly_interval` — the first-order optimal interval
  ``sqrt(2 * MTBF * checkpoint_cost)``.
* :class:`CheckpointedExecution` — expected wall-clock and efficiency of a
  job under failures with periodic checkpointing (first-order Daly model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class FailureModel:
    """Exponential node failures aggregated to system level.

    Attributes
    ----------
    node_mtbf:
        Mean time between failures of one node, seconds (typical: years).
    nodes:
        Nodes in the allocation.
    """

    node_mtbf: float
    nodes: int

    def __post_init__(self) -> None:
        if self.node_mtbf <= 0:
            raise ConfigurationError("node_mtbf must be positive")
        if self.nodes < 1:
            raise ConfigurationError("nodes must be >= 1")

    @property
    def system_mtbf(self) -> float:
        """MTBF of the allocation: first failure among independent nodes."""
        return self.node_mtbf / self.nodes


@dataclass(frozen=True)
class CheckpointTarget:
    """Where checkpoint data is written.

    Attributes
    ----------
    name:
        Label for reports.
    bandwidth:
        Per-node sustained checkpoint bandwidth, bytes/s.
    latency:
        Fixed per-checkpoint overhead (coordination, metadata), seconds.
    survives_node_loss:
        Whether the checkpoint is readable after the writing node dies.
        Node-local SSD fails this; restart must fall back to an older
        global checkpoint, modelled as a restart-cost multiplier.
    """

    name: str
    bandwidth: float
    latency: float = 1.0
    survives_node_loss: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ConfigurationError("invalid checkpoint target parameters")

    def checkpoint_time(self, bytes_per_node: float) -> float:
        """Time to write one checkpoint."""
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        return self.latency + bytes_per_node / self.bandwidth


def parallel_filesystem_target() -> CheckpointTarget:
    """A Lustre-class PFS: ~1 GB/s per node effective under contention."""
    return CheckpointTarget("parallel-fs", bandwidth=1e9, latency=5.0)


def local_ssd_target() -> CheckpointTarget:
    """Node-local NVMe: fast but lost with the node."""
    return CheckpointTarget(
        "local-ssd", bandwidth=5e9, latency=0.5, survives_node_loss=False
    )


def fabric_pm_target() -> CheckpointTarget:
    """Fabric-attached persistent memory (the paper's first storage tier):
    memory-class bandwidth, globally accessible after node loss."""
    return CheckpointTarget("fabric-pm", bandwidth=40e9, latency=0.1)


def young_daly_interval(system_mtbf: float, checkpoint_cost: float) -> float:
    """The Young/Daly first-order optimal checkpoint interval, seconds."""
    if system_mtbf <= 0 or checkpoint_cost < 0:
        raise ConfigurationError("invalid Young-Daly inputs")
    if checkpoint_cost == 0:
        return float("inf")
    return math.sqrt(2.0 * system_mtbf * checkpoint_cost)


@dataclass(frozen=True)
class CheckpointedExecution:
    """Expected execution of a job under failures with checkpointing.

    Attributes
    ----------
    work_time:
        Failure-free compute time of the job, seconds.
    checkpoint_bytes_per_node:
        Checkpoint footprint per node.
    failures:
        The failure model.
    target:
        Checkpoint destination.
    restart_time:
        Time to restart and reload a checkpoint after a failure.
    """

    work_time: float
    checkpoint_bytes_per_node: float
    failures: FailureModel
    target: CheckpointTarget
    restart_time: float = 120.0

    def __post_init__(self) -> None:
        if self.work_time <= 0:
            raise ConfigurationError("work_time must be positive")
        if self.checkpoint_bytes_per_node < 0 or self.restart_time < 0:
            raise ConfigurationError("invalid execution parameters")

    @property
    def checkpoint_cost(self) -> float:
        return self.target.checkpoint_time(self.checkpoint_bytes_per_node)

    @property
    def optimal_interval(self) -> float:
        return young_daly_interval(self.failures.system_mtbf, self.checkpoint_cost)

    def effective_restart_time(self) -> float:
        """Restart cost, tripled when the checkpoint died with the node
        (fall back to an older global checkpoint and redo more work)."""
        if self.target.survives_node_loss:
            return self.restart_time
        return 3.0 * self.restart_time

    def expected_time(self, interval: float = 0.0) -> float:
        """Expected wall-clock under the first-order Daly model.

        ``interval`` of 0 uses the Young/Daly optimum. The model charges,
        per interval: the checkpoint cost, plus (probability of a failure
        in the interval) x (half an interval of rework + restart).
        """
        mtbf = self.failures.system_mtbf
        tau = interval if interval > 0 else self.optimal_interval
        if math.isinf(tau):
            return self.work_time
        cost = self.checkpoint_cost
        segments = self.work_time / tau
        per_segment = tau + cost
        failure_probability = 1.0 - math.exp(-per_segment / mtbf)
        rework = failure_probability * (per_segment / 2.0 + self.effective_restart_time())
        return segments * (per_segment + rework)

    def efficiency(self, interval: float = 0.0) -> float:
        """Useful work over expected wall-clock (1.0 = failure-free ideal)."""
        return self.work_time / self.expected_time(interval)
