"""Metadata catalog with governance labels.

"Actionable metadata" (§III.A): entries carry schema hints, free-form tags
and a governance label that the federation layer consults before moving
data across administrative domains ("cross-institutional and geographical
hurdles (such as security and data governance)", §III.G).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set

from repro.core.errors import ConfigurationError


class GovernanceLabel(Enum):
    """Data-governance classes restricting where data may move."""

    PUBLIC = "public"            # may move anywhere
    INSTITUTIONAL = "institutional"  # may move within the federation
    RESTRICTED = "restricted"    # may not leave its home site

    @property
    def may_cross_sites(self) -> bool:
        return self is not GovernanceLabel.RESTRICTED

    @property
    def may_leave_federation(self) -> bool:
        return self is GovernanceLabel.PUBLIC


@dataclass
class DataEntry:
    """One catalogued dataset's metadata.

    Attributes
    ----------
    name:
        Unique catalog key (matches the federation dataset name).
    size_bytes:
        Dataset size.
    schema:
        Column name -> type-string mapping (actionable metadata).
    tags:
        Free-form search tags.
    governance:
        Movement restrictions.
    home_site:
        Administrative owner site.
    created_at:
        Registration wall-clock timestamp (provenance anchor).
    """

    name: str
    size_bytes: float
    schema: Dict[str, str] = field(default_factory=dict)
    tags: Set[str] = field(default_factory=set)
    governance: GovernanceLabel = GovernanceLabel.INSTITUTIONAL
    home_site: Optional[str] = None
    created_at: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError(f"{self.name}: size must be non-negative")

    def matches(self, tag_query: Sequence[str]) -> bool:
        """Whether the entry carries every queried tag."""
        return all(tag in self.tags for tag in tag_query)


class MetadataCatalog:
    """Register, search and govern data entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, DataEntry] = {}

    def register(self, entry: DataEntry) -> DataEntry:
        if entry.name in self._entries:
            raise ConfigurationError(f"duplicate entry: {entry.name}")
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> DataEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"unknown data entry {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def search(self, *tags: str) -> List[DataEntry]:
        """All entries carrying every given tag, sorted by name."""
        found = [e for e in self._entries.values() if e.matches(tags)]
        return sorted(found, key=lambda e: e.name)

    def may_move(self, name: str, from_site: str, to_site: str) -> bool:
        """Whether governance allows moving an entry between sites."""
        entry = self.get(name)
        if from_site == to_site:
            return True
        return entry.governance.may_cross_sites

    def total_bytes(self) -> float:
        return sum(e.size_bytes for e in self._entries.values())

    def schema_fields(self, name: str) -> List[str]:
        """Column names of an entry (empty for schemaless data)."""
        return sorted(self.get(name).schema)
