"""The common data foundation: metadata, lineage and transfer planning.

The paper (§III.A): "the creation of a common data foundation for AI will
be the glue that ties together the intelligent HPC infrastructure of
tomorrow. Well-defined foundational data protocols can accelerate
innovation by providing actionable metadata and preserving important
aspects such as lineage and provenance."

Components:

* :mod:`repro.datafoundation.metadata` — a searchable metadata catalog with
  schemas, tags and governance labels,
* :mod:`repro.datafoundation.lineage` — a provenance DAG recording every
  transformation ("keeps track of the workflow and the various data
  transformation steps", §III.B),
* :mod:`repro.datafoundation.transfer` — a replica-aware transfer planner
  over the federation WAN.
"""

from repro.datafoundation.lineage import LineageGraph, Transformation
from repro.datafoundation.metadata import (
    DataEntry,
    GovernanceLabel,
    MetadataCatalog,
)
from repro.datafoundation.transfer import TransferPlan, TransferPlanner

__all__ = [
    "DataEntry",
    "GovernanceLabel",
    "LineageGraph",
    "MetadataCatalog",
    "TransferPlan",
    "TransferPlanner",
    "Transformation",
]
