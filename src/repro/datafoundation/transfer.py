"""Replica-aware transfer planning over the federation WAN.

When a workflow step needs datasets that live elsewhere, the planner picks,
for each dataset, the replica minimising transfer time (or egress dollars),
respecting governance labels from the metadata catalog. The resulting
:class:`TransferPlan` prices the data movement a placement implies —
the quantitative core of the paper's "data gravity" argument (§III.F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.datafoundation.metadata import MetadataCatalog
from repro.federation.datasets import DatasetCatalog
from repro.federation.site import Site


@dataclass(frozen=True)
class TransferItem:
    """One dataset's planned movement."""

    dataset: str
    source_site: str
    destination_site: str
    size_bytes: float
    time: float
    dollars: float

    @property
    def is_local(self) -> bool:
        return self.source_site == self.destination_site


@dataclass(frozen=True)
class TransferPlan:
    """A set of transfers staging a workflow step's inputs at one site."""

    destination: str
    items: tuple

    @property
    def total_bytes(self) -> float:
        return sum(item.size_bytes for item in self.items if not item.is_local)

    @property
    def total_time(self) -> float:
        """Wall time assuming transfers run in parallel (max over items)."""
        if not self.items:
            return 0.0
        return max(item.time for item in self.items)

    @property
    def serial_time(self) -> float:
        """Wall time if transfers serialise on the site's ingest link."""
        return sum(item.time for item in self.items)

    @property
    def total_dollars(self) -> float:
        return sum(item.dollars for item in self.items)


class TransferPlanner:
    """Plans dataset staging over a federation's WAN and replica map."""

    def __init__(
        self,
        datasets: DatasetCatalog,
        metadata: Optional[MetadataCatalog] = None,
    ) -> None:
        self.datasets = datasets
        self.metadata = metadata

    def _governance_allows(self, name: str, source: str, destination: str) -> bool:
        if self.metadata is None or name not in self.metadata:
            return True
        return self.metadata.may_move(name, source, destination)

    def plan(self, dataset_names: Sequence[str], destination: Site) -> TransferPlan:
        """Stage the named datasets at ``destination``.

        Raises :class:`ConfigurationError` when governance forbids a
        required movement (the caller should then consider running the
        step at the data's home site instead — which is the point).
        """
        items: List[TransferItem] = []
        for name in dataset_names:
            dataset = self.datasets.get(name)
            if dataset.has_replica_at(destination):
                items.append(
                    TransferItem(
                        dataset=name,
                        source_site=destination.name,
                        destination_site=destination.name,
                        size_bytes=dataset.size_bytes,
                        time=0.0,
                        dollars=0.0,
                    )
                )
                continue
            source = self.datasets.closest_replica(name, destination)
            if not self._governance_allows(name, source.name, destination.name):
                raise ConfigurationError(
                    f"governance forbids moving {name!r} from {source.name} "
                    f"to {destination.name}"
                )
            items.append(
                TransferItem(
                    dataset=name,
                    source_site=source.name,
                    destination_site=destination.name,
                    size_bytes=dataset.size_bytes,
                    time=self.datasets.wan.transfer_time(
                        source, destination, dataset.size_bytes
                    ),
                    dollars=self.datasets.wan.transfer_dollars(
                        source, destination, dataset.size_bytes
                    ),
                )
            )
        return TransferPlan(destination=destination.name, items=tuple(items))

    def cheapest_site(
        self, dataset_names: Sequence[str], candidates: Sequence[Site]
    ) -> Dict[str, float]:
        """Total staging time per candidate site (governance-infeasible
        sites are omitted). The argmin is where the data's gravity pulls."""
        costs: Dict[str, float] = {}
        for site in candidates:
            try:
                plan = self.plan(dataset_names, site)
            except ConfigurationError:
                continue
            costs[site.name] = plan.total_time
        return costs
