"""Provenance lineage as a directed acyclic graph.

The paper (§III.A): foundational data protocols must preserve "lineage and
provenance"; (§III.B) the data foundation layer "keeps track of the
workflow and the various data transformation steps".

The :class:`LineageGraph` records datasets and :class:`Transformation`
steps; datasets point to the transformation that produced them, and
transformations point to their inputs. Acyclicity is enforced on every
insertion — provenance can never be circular.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

from repro.core.errors import ConfigurationError

_transformation_ids = itertools.count()


@dataclass(frozen=True)
class Transformation:
    """One recorded data-transformation step.

    Attributes
    ----------
    name:
        Human-readable step name (e.g. ``'calibration'``, ``'training'``).
    inputs / outputs:
        Dataset names consumed and produced.
    executed_at:
        Simulated or wall-clock execution time.
    site:
        Where the step ran (edge/core attribution).
    parameters:
        Free-form reproducibility payload (tool versions, arguments).
    """

    name: str
    inputs: tuple
    outputs: tuple
    executed_at: float = 0.0
    site: str = ""
    parameters: str = ""
    step_id: int = field(default_factory=lambda: next(_transformation_ids))

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ConfigurationError(f"transformation {self.name} produces nothing")


class LineageGraph:
    """A DAG over dataset names and transformation steps."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._transformations: Dict[int, Transformation] = {}

    # --- recording -------------------------------------------------------------

    def add_source(self, dataset: str) -> None:
        """Register a primary dataset (no producing transformation)."""
        self._graph.add_node(("data", dataset))

    def record(self, transformation: Transformation) -> Transformation:
        """Record a step; inputs must exist, outputs must be new datasets."""
        step_node = ("step", transformation.step_id)
        for input_name in transformation.inputs:
            if ("data", input_name) not in self._graph:
                raise ConfigurationError(
                    f"{transformation.name}: unknown input dataset {input_name!r}"
                )
        for output_name in transformation.outputs:
            if ("data", output_name) in self._graph:
                raise ConfigurationError(
                    f"{transformation.name}: output {output_name!r} already exists "
                    "(datasets are immutable; derive a new name)"
                )
        self._graph.add_node(step_node)
        for input_name in transformation.inputs:
            self._graph.add_edge(("data", input_name), step_node)
        for output_name in transformation.outputs:
            self._graph.add_node(("data", output_name))
            self._graph.add_edge(step_node, ("data", output_name))
        if not nx.is_directed_acyclic_graph(self._graph):  # defensive; cannot
            # happen given the immutability check, but provenance integrity
            # is worth the O(V+E) verification.
            raise ConfigurationError("lineage graph became cyclic")
        self._transformations[transformation.step_id] = transformation
        return transformation

    # --- queries -----------------------------------------------------------------

    def datasets(self) -> List[str]:
        return sorted(
            name for kind, name in self._graph.nodes if kind == "data"
        )

    def has_dataset(self, dataset: str) -> bool:
        return ("data", dataset) in self._graph

    def producer(self, dataset: str) -> Optional[Transformation]:
        """The transformation that produced a dataset (None for sources)."""
        node = ("data", dataset)
        if node not in self._graph:
            raise KeyError(f"unknown dataset {dataset!r}")
        predecessors = list(self._graph.predecessors(node))
        if not predecessors:
            return None
        (_, step_id) = predecessors[0]
        return self._transformations[step_id]

    def ancestry(self, dataset: str) -> Set[str]:
        """All upstream dataset names (full provenance closure)."""
        node = ("data", dataset)
        if node not in self._graph:
            raise KeyError(f"unknown dataset {dataset!r}")
        ancestors = nx.ancestors(self._graph, node)
        return {name for kind, name in ancestors if kind == "data"}

    def descendants(self, dataset: str) -> Set[str]:
        """All datasets derived (transitively) from this one."""
        node = ("data", dataset)
        if node not in self._graph:
            raise KeyError(f"unknown dataset {dataset!r}")
        downstream = nx.descendants(self._graph, node)
        return {name for kind, name in downstream if kind == "data"}

    def derivation_path(self, ancestor: str, descendant: str) -> List[Transformation]:
        """The ordered chain of transformations from ancestor to descendant.

        Raises if no derivation exists.
        """
        source = ("data", ancestor)
        target = ("data", descendant)
        try:
            nodes = nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ConfigurationError(
                f"{descendant!r} is not derived from {ancestor!r}"
            ) from None
        return [
            self._transformations[name]
            for kind, name in nodes
            if kind == "step"
        ]

    def sources_of(self, dataset: str) -> Set[str]:
        """The primary (underived) datasets this one ultimately comes from."""
        closure = self.ancestry(dataset) | {dataset}
        return {
            name
            for name in closure
            if not list(self._graph.predecessors(("data", name)))
        }

    def step_count(self) -> int:
        return len(self._transformations)
