"""Energy and carbon accounting per run (§II sustainability argument).

The paper's sustainability thread — denser memory, tighter power
envelopes, facility-level PUE — only bites when runs are scored in
joules and grams of CO2e, not just seconds.  :class:`EnergyCarbonModel`
converts the dwell time of a run on a
:class:`~repro.hardware.power.DatacenterPowerModel` (IT watts x
seconds x PUE) into facility energy, then into operational carbon via a
grid intensity, and adds an ESII-style embodied term amortised per GiB
of provisioned memory — so reliability sweeps can trade scrub interval
and ECC strength against gCO2e per *completed* job, the metric the
``reliability`` named sweep optimises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.errors import ConfigurationError

JOULES_PER_KWH = 3.6e6
GIB = 1024.0 ** 3


@dataclass(frozen=True)
class EnergyCarbonModel:
    """Converts facility energy into operational + embodied carbon.

    Attributes
    ----------
    carbon_intensity:
        Grid operational intensity, kg CO2e per kWh (0.4 is a 2021-era
        mixed grid; renewables-heavy grids run well under 0.1).
    embodied_carbon_per_gib:
        ESII-style embodied manufacturing carbon charged per GiB of
        provisioned memory per amortisation period, kg CO2e / GiB.
    amortization_seconds:
        Service life the embodied carbon is spread over (default 4
        years), so a run is charged ``dwell / amortization`` of it.
    """

    carbon_intensity: float = 0.4
    embodied_carbon_per_gib: float = 8.0
    amortization_seconds: float = 4 * 365.25 * 86_400.0

    def __post_init__(self) -> None:
        if self.carbon_intensity < 0:
            raise ConfigurationError("carbon_intensity must be non-negative")
        if self.embodied_carbon_per_gib < 0:
            raise ConfigurationError(
                "embodied_carbon_per_gib must be non-negative"
            )
        if self.amortization_seconds <= 0:
            raise ConfigurationError("amortization_seconds must be positive")

    # --- energy ---------------------------------------------------------

    def facility_joules(self, it_joules: float, pue: float) -> float:
        """IT energy grossed up to facility energy by the PUE."""
        if it_joules < 0:
            raise ConfigurationError("it_joules must be non-negative")
        if pue < 1.0:
            raise ConfigurationError(f"pue must be >= 1: {pue}")
        return it_joules * pue

    def run_joules(
        self,
        it_power: float,
        pue: float,
        dwell_seconds: float,
        extra_it_power: float = 0.0,
    ) -> float:
        """Facility joules for a run dwelling ``dwell_seconds``.

        ``extra_it_power`` carries standing overheads the base power
        model does not know about — patrol-scrub reads, for instance
        (:meth:`repro.resilience.memerrors.ScrubPolicy.scrub_power`).
        """
        if dwell_seconds < 0:
            raise ConfigurationError("dwell_seconds must be non-negative")
        if it_power < 0 or extra_it_power < 0:
            raise ConfigurationError("power must be non-negative")
        return self.facility_joules(
            (it_power + extra_it_power) * dwell_seconds, pue
        )

    # --- carbon ---------------------------------------------------------

    def operational_kg(self, facility_joules: float) -> float:
        """Operational carbon of a facility energy draw, kg CO2e."""
        if facility_joules < 0:
            raise ConfigurationError("facility_joules must be non-negative")
        return facility_joules / JOULES_PER_KWH * self.carbon_intensity

    def embodied_kg(self, memory_bytes: float, dwell_seconds: float) -> float:
        """Embodied carbon share of a run, kg CO2e.

        The ESII framing: manufacturing carbon is a property of the
        provisioned GiB, charged pro-rata for the fraction of the
        amortisation life the run occupies.
        """
        if memory_bytes < 0 or dwell_seconds < 0:
            raise ConfigurationError(
                "memory_bytes and dwell_seconds must be non-negative"
            )
        share = dwell_seconds / self.amortization_seconds
        return self.embodied_carbon_per_gib * (memory_bytes / GIB) * share

    def carbon_per_gib(self, total_kg: float, memory_bytes: float) -> float:
        """ESII-style score: kg CO2e per provisioned GiB (inf for 0 GiB)."""
        if memory_bytes <= 0:
            return math.inf
        return total_kg / (memory_bytes / GIB)

    # --- the run report -------------------------------------------------

    def run_report(
        self,
        it_power: float,
        pue: float,
        dwell_seconds: float,
        completed_jobs: int = 0,
        memory_bytes: float = 0.0,
        extra_it_power: float = 0.0,
    ) -> Dict[str, float]:
        """Flat energy/carbon metrics for one run, report-ready.

        ``gco2e_per_job`` is the headline the reliability sweep trades
        against goodput: total (operational + embodied) grams per
        completed job, infinite when nothing completed.
        """
        joules = self.run_joules(it_power, pue, dwell_seconds, extra_it_power)
        operational = self.operational_kg(joules)
        embodied = self.embodied_kg(memory_bytes, dwell_seconds)
        total = operational + embodied
        per_job = (total * 1e3 / completed_jobs) if completed_jobs > 0 else math.inf
        return {
            "facility_joules": joules,
            "energy_kwh": joules / JOULES_PER_KWH,
            "operational_kg": operational,
            "embodied_kg": embodied,
            "total_kg": total,
            "gco2e_per_job": per_job,
            "carbon_per_gib": self.carbon_per_gib(total, memory_bytes),
        }
