"""Platform economics: the cost case for board standardisation.

The paper (§III.E): "any given platform enablement effort can now easily
reach a few million dollars in development cost ... the industry should
drive towards a standard for motherboards and other electronic
sub-components" (an Open-Compute-Project-like model).

:mod:`repro.economics.platform` models the combinatorial explosion of
(silicon options x vendors) platform developments and the amortisation a
standard board achieves.  :mod:`repro.economics.energy` scores runs in
joules and kg CO2e (operational via PUE and grid intensity, embodied via
ESII-style carbon-per-GiB) so sweeps can trade reliability against
sustainability.
"""

from repro.economics.energy import EnergyCarbonModel
from repro.economics.platform import (
    PlatformCostModel,
    SiliconOption,
    standardization_savings,
)

__all__ = [
    "EnergyCarbonModel",
    "PlatformCostModel",
    "SiliconOption",
    "standardization_savings",
]
