"""Platform-enablement cost model (§III.E).

The paper's argument, quantified:

* every (silicon option, system vendor) pair needs a platform enablement
  effort — high-speed board design, signal integrity, firmware — costing
  "a few million dollars";
* the silicon ecosystem is "blooming" (many CPUs x variants, >= 3 GPU
  vendors, FPGAs, custom ASICs, ML silicon), so per-vendor enablement
  scales as ``options x vendors``;
* a standard board (OCP-like) is developed **once per silicon option**
  (usually by the silicon maker) and integrated by every vendor for a
  small integration cost, so total industry cost scales as
  ``options + options x vendors x integration`` with
  ``integration << enablement``.

The crossing of those two curves — and the number of silicon options the
industry can sustain under a fixed R&D budget — is experiment C11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class SiliconOption:
    """One piece of silicon needing platform enablement.

    ``board_complexity`` scales the enablement cost: high-power,
    high-signal-rate parts (the paper's Megtron-6-class boards) cost more.
    """

    name: str
    board_complexity: float = 1.0
    expected_volume: int = 1_000

    def __post_init__(self) -> None:
        if self.board_complexity <= 0:
            raise ConfigurationError("board_complexity must be positive")
        if self.expected_volume <= 0:
            raise ConfigurationError("expected_volume must be positive")


@dataclass(frozen=True)
class PlatformCostModel:
    """Industry-level platform development cost under two regimes.

    Attributes
    ----------
    enablement_cost:
        Dollars for one full custom platform enablement ("a few million
        dollars" — default 3M).
    integration_cost:
        Dollars for a vendor to integrate an existing standard board into
        its platform (chassis fit, management, qualification).
    standard_premium:
        Multiplier on the one-off standard-board development versus a
        custom board (a standard must cover more mechanical/electrical
        envelope: "high-power devices, liquid-cooling options, custom
        management ASICs ... within the same mechanical and electrical
        specifications").
    """

    enablement_cost: float = 3e6
    integration_cost: float = 0.25e6
    standard_premium: float = 1.5

    def __post_init__(self) -> None:
        if self.enablement_cost <= 0 or self.integration_cost <= 0:
            raise ConfigurationError("costs must be positive")
        if self.standard_premium < 1.0:
            raise ConfigurationError("standard_premium must be >= 1")

    # --- regimes -----------------------------------------------------------------

    def custom_total_cost(self, options: Sequence[SiliconOption], vendors: int) -> float:
        """Total industry cost when every vendor does its own enablement."""
        if vendors <= 0:
            raise ConfigurationError("vendors must be positive")
        return sum(
            self.enablement_cost * option.board_complexity * vendors
            for option in options
        )

    def standard_total_cost(self, options: Sequence[SiliconOption], vendors: int) -> float:
        """Total industry cost under the standard-board model."""
        if vendors <= 0:
            raise ConfigurationError("vendors must be positive")
        development = sum(
            self.enablement_cost * self.standard_premium * option.board_complexity
            for option in options
        )
        integration = self.integration_cost * len(options) * vendors
        return development + integration

    def cost_per_unit(
        self, option: SiliconOption, vendors: int, standard: bool
    ) -> float:
        """Development cost amortised per shipped unit of one option."""
        if standard:
            total = (
                self.enablement_cost * self.standard_premium * option.board_complexity
                + self.integration_cost * vendors
            )
        else:
            total = self.enablement_cost * option.board_complexity * vendors
        return total / (option.expected_volume * vendors)

    # --- sustainability ------------------------------------------------------------

    def sustainable_options(
        self, budget: float, vendors: int, standard: bool,
        board_complexity: float = 1.0,
    ) -> int:
        """How many silicon options fit a fixed industry R&D budget.

        The paper's conundrum: "the silicon ecosystem is blooming but the
        ever more expensive system development process can really sustain
        fewer and fewer options."
        """
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        if vendors <= 0:
            raise ConfigurationError("vendors must be positive")
        if standard:
            per_option = (
                self.enablement_cost * self.standard_premium * board_complexity
                + self.integration_cost * vendors
            )
        else:
            per_option = self.enablement_cost * board_complexity * vendors
        return int(budget // per_option)

    def breakeven_vendors(self, option: SiliconOption) -> float:
        """Vendor count above which the standard model is cheaper for an option.

        Solves ``enablement * v = enablement * premium + integration * v``.
        """
        denominator = (
            self.enablement_cost * option.board_complexity - self.integration_cost
        )
        if denominator <= 0:
            return float("inf")
        return (
            self.enablement_cost * self.standard_premium * option.board_complexity
            / denominator
        )


def standardization_savings(
    model: PlatformCostModel, options: Sequence[SiliconOption], vendors: int
) -> float:
    """Relative industry saving of the standard model (0.6 = 60% cheaper)."""
    custom = model.custom_total_cost(options, vendors)
    standard = model.standard_total_cost(options, vendors)
    if custom == 0:
        return 0.0
    return 1.0 - standard / custom


def default_silicon_ecosystem() -> List[SiliconOption]:
    """The paper's "Cambrian explosion": a representative 2021 option list."""
    return [
        SiliconOption("x86-cpu-a", 1.0, 50_000),
        SiliconOption("x86-cpu-b", 1.0, 40_000),
        SiliconOption("arm-cpu", 1.1, 15_000),
        SiliconOption("gpu-vendor-a", 1.4, 30_000),
        SiliconOption("gpu-vendor-b", 1.4, 12_000),
        SiliconOption("gpu-vendor-c", 1.3, 6_000),
        SiliconOption("fpga", 1.2, 5_000),
        SiliconOption("ml-asic-a", 1.5, 4_000),
        SiliconOption("ml-asic-b", 1.5, 2_000),
        SiliconOption("ml-asic-c", 1.6, 1_000),
        SiliconOption("analog-dpe", 1.3, 800),
        SiliconOption("optical-mvm", 1.8, 500),
    ]
