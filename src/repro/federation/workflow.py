"""Cross-site workflow orchestration over the federation.

The paper (§III.B): "the HPC of the future will look a lot like an
archipelago of tightly connected supercomputing islands ... all of them
connected through a data foundation layer that keeps track of the workflow
and the various data transformation steps."

A :class:`WorkflowStep` wraps a :class:`~repro.workloads.base.Job` with the
datasets it consumes and the data products it emits. The
:class:`WorkflowEngine`:

* derives step dependencies from dataset production/consumption,
* places each step on the best (site, device) — staging + queue + runtime,
  honouring optional site pins (e.g. "this step must run at the beamline"),
* registers every output as a replica-tracked dataset at the execution
  site (so downstream placement feels its gravity),
* records every step in a provenance :class:`LineageGraph`,
* reports the end-to-end makespan and total WAN movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, SchedulingError
from repro.datafoundation.lineage import LineageGraph, Transformation
from repro.federation.datasets import Dataset
from repro.federation.federation import Federation
from repro.federation.site import Site
from repro.hardware.device import Device
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import Job


@dataclass
class WorkflowStep:
    """One step of a cross-site workflow.

    Attributes
    ----------
    name:
        Step name (unique within a workflow).
    job:
        The computation (its ``input_dataset`` field is ignored; the
        step-level ``inputs`` drive staging, supporting multiple inputs).
    inputs:
        Dataset names consumed (must exist or be produced upstream).
    outputs:
        ``(dataset_name, size_bytes)`` products emitted at the execution
        site.
    site_pin:
        Optional site name the step must run at (instrument-bound steps).
    """

    name: str
    job: Job
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[Tuple[str, float], ...] = ()
    site_pin: Optional[str] = None


@dataclass(frozen=True)
class StepExecution:
    """Where and when one step ran."""

    step: WorkflowStep
    site_name: str
    device_name: str
    start: float
    staging_time: float
    runtime: float
    wan_bytes: float

    @property
    def finish(self) -> float:
        return self.start + self.staging_time + self.runtime


@dataclass
class WorkflowResult:
    """The executed workflow: per-step executions plus provenance."""

    executions: List[StepExecution]
    lineage: LineageGraph

    @property
    def makespan(self) -> float:
        if not self.executions:
            return 0.0
        return max(execution.finish for execution in self.executions)

    @property
    def total_wan_bytes(self) -> float:
        return sum(execution.wan_bytes for execution in self.executions)

    @property
    def sites_used(self) -> List[str]:
        return sorted({execution.site_name for execution in self.executions})

    def execution_of(self, step_name: str) -> StepExecution:
        for execution in self.executions:
            if execution.step.name == step_name:
                return execution
        raise KeyError(f"no execution for step {step_name!r}")


class WorkflowEngine:
    """Places and executes workflow steps across a federation."""

    def __init__(self, federation: Federation) -> None:
        self.federation = federation

    # --- dependency analysis -----------------------------------------------------

    @staticmethod
    def _order_steps(steps: Sequence[WorkflowStep]) -> List[WorkflowStep]:
        """Topological order by dataset production; rejects cycles,
        duplicate producers and undefined intermediate inputs."""
        producer: Dict[str, WorkflowStep] = {}
        names = set()
        for step in steps:
            if step.name in names:
                raise ConfigurationError(f"duplicate step name {step.name!r}")
            names.add(step.name)
            for output_name, _ in step.outputs:
                if output_name in producer:
                    raise ConfigurationError(
                        f"dataset {output_name!r} produced twice"
                    )
                producer[output_name] = step

        ordered: List[WorkflowStep] = []
        visiting: set = set()
        done: set = set()

        def visit(step: WorkflowStep) -> None:
            if step.name in done:
                return
            if step.name in visiting:
                raise ConfigurationError(f"workflow cycle through {step.name!r}")
            visiting.add(step.name)
            for input_name in step.inputs:
                upstream = producer.get(input_name)
                if upstream is not None and upstream is not step:
                    visit(upstream)
            visiting.discard(step.name)
            done.add(step.name)
            ordered.append(step)

        for step in steps:
            visit(step)
        return ordered

    # --- placement ----------------------------------------------------------------

    def _staging_time(self, step: WorkflowStep, site: Site) -> Tuple[float, float]:
        """(wall time, WAN bytes) to stage all of a step's inputs at a site.

        Inputs transfer in parallel (time = max), bytes accumulate.
        """
        catalog = self.federation.catalog
        times: List[float] = []
        moved = 0.0
        for name in step.inputs:
            if name not in catalog:
                raise ConfigurationError(
                    f"step {step.name!r} consumes unknown dataset {name!r}"
                )
            elapsed = catalog.staging_time(name, site)
            times.append(elapsed)
            if elapsed > 0:
                moved += catalog.get(name).size_bytes
        return (max(times) if times else 0.0, moved)

    def _choose_placement(
        self, step: WorkflowStep
    ) -> Tuple[Site, Device, float, float, float]:
        """Best (site, device) by staging + runtime; respects site pins."""
        candidates = []
        sites = (
            [self.federation.site(step.site_pin)]
            if step.site_pin is not None
            else self.federation.sites
        )
        for site in sites:
            try:
                staging, moved = self._staging_time(step, site)
            except ConfigurationError:
                raise
            for device in site.devices:
                if site.count(device) < step.job.ranks:
                    continue
                estimate = estimate_job(step.job, device, site)
                if not estimate.feasible:
                    continue
                candidates.append(
                    (staging + estimate.time, site, device, staging,
                     estimate.time, moved)
                )
        if not candidates:
            raise SchedulingError(f"no feasible placement for step {step.name!r}")
        _, site, device, staging, runtime, moved = min(candidates, key=lambda c: c[0])
        return site, device, staging, runtime, moved

    # --- execution -----------------------------------------------------------------

    def run(self, steps: Sequence[WorkflowStep]) -> WorkflowResult:
        """Execute all steps; returns executions plus full provenance."""
        ordered = self._order_steps(steps)
        lineage = LineageGraph()
        for step in ordered:
            for input_name in step.inputs:
                if input_name in self.federation.catalog and not lineage.has_dataset(
                    input_name
                ):
                    lineage.add_source(input_name)

        finish_of_dataset: Dict[str, float] = {}
        executions: List[StepExecution] = []
        for step in ordered:
            site, device, staging, runtime, moved = self._choose_placement(step)
            ready = max(
                (finish_of_dataset.get(name, 0.0) for name in step.inputs),
                default=0.0,
            )
            execution = StepExecution(
                step=step,
                site_name=site.name,
                device_name=device.name,
                start=ready,
                staging_time=staging,
                runtime=runtime,
                wan_bytes=moved,
            )
            executions.append(execution)
            # Register products at the execution site; downstream steps
            # feel their gravity.
            for output_name, size_bytes in step.outputs:
                self.federation.add_dataset(
                    Dataset(
                        name=output_name,
                        size_bytes=size_bytes,
                        replicas={site.name},
                    )
                )
                finish_of_dataset[output_name] = execution.finish
            if step.outputs:
                lineage.record(
                    Transformation(
                        step.name,
                        inputs=tuple(step.inputs),
                        outputs=tuple(name for name, _ in step.outputs),
                        executed_at=execution.finish,
                        site=site.name,
                    )
                )
        return WorkflowResult(executions=executions, lineage=lineage)
