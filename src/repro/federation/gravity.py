"""Data-gravity scoring for placement decisions.

The paper (§III.F): "The new framework will enable the analysis of data
'gravitational' aspects, where workloads may not only be scheduled
following compute resources availability but targeting the optimization of
job completion time end to end, including the data transfer."

Two functions: a gravity *score* ranking candidate sites for a job, and a
transfer *cost* pricing the data movement a placement implies.
"""

from __future__ import annotations

from typing import Optional

from repro.federation.datasets import DatasetCatalog
from repro.federation.site import Site
from repro.workloads.base import Job


def transfer_cost(
    job: Job,
    site: Site,
    catalog: Optional[DatasetCatalog],
) -> float:
    """Staging time (seconds) implied by running ``job`` at ``site``.

    Jobs without an input dataset cost nothing; jobs whose dataset is not in
    the catalog fall back to ``job.input_bytes`` over a default 1 GB/s WAN.
    """
    if job.input_dataset is None:
        return 0.0
    if catalog is not None and job.input_dataset in catalog:
        return catalog.staging_time(job.input_dataset, site)
    return job.input_bytes / 1e9


def data_gravity_score(
    job: Job,
    site: Site,
    catalog: Optional[DatasetCatalog],
    compute_time_estimate: float,
    gravity_weight: float = 1.0,
) -> float:
    """Placement score: lower is better.

    ``compute_time_estimate + gravity_weight * staging_time`` — with
    ``gravity_weight = 0`` this degenerates to the compute-only placement
    the paper criticises; 1.0 is true end-to-end completion time; values
    above 1.0 bias towards data locality (e.g. when transfers also carry a
    dollar cost or governance risk).
    """
    if gravity_weight < 0:
        raise ValueError("gravity_weight must be non-negative")
    if compute_time_estimate < 0:
        raise ValueError("compute_time_estimate must be non-negative")
    return compute_time_estimate + gravity_weight * transfer_cost(job, site, catalog)
