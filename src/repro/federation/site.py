"""Sites: the places where computing happens.

A :class:`Site` is one island of the paper's "archipelago of tightly
connected supercomputing islands" (§III.B): an instrumentation edge, an
on-premise cluster, a supercomputing core, or a cloud region. Sites hold
devices (with counts), a power envelope, pricing, and a noise level (cloud
sites exhibit the interference that breaks barrier-synchronised codes,
§II.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.errors import CapacityError, ConfigurationError
from repro.hardware.device import Device, DeviceKind


class SiteKind(Enum):
    """Figure 3's delivery-model taxonomy, collapsed to simulation classes."""

    EDGE = "edge"
    ON_PREMISE = "on_premise"
    SUPERCOMPUTER = "supercomputer"
    CLOUD = "cloud"
    COLO = "colo"


#: Default OS/interference noise by site kind: the per-rank slowdown's
#: coefficient of variation. Clouds are noisy ("the built-in sharing of
#: infrastructure and the interference of other applications ... creates
#: noise and makes barrier-based synchronizations ineffective", §II.C);
#: supercomputers run noise-optimised stacks.
DEFAULT_NOISE = {
    SiteKind.EDGE: 0.02,
    SiteKind.ON_PREMISE: 0.01,
    SiteKind.SUPERCOMPUTER: 0.003,
    SiteKind.CLOUD: 0.08,
    SiteKind.COLO: 0.02,
}


@dataclass
class Site:
    """One computing site in the federation.

    Attributes
    ----------
    name:
        Unique site name.
    kind:
        Site class (sets default noise).
    devices:
        Device model -> installed count.
    power_limit:
        Site power envelope, watts.
    price_per_device_hour:
        Device name -> $/hour rental price (aaS price list).
    noise_level:
        Coefficient of variation of per-rank interference; ``None`` uses
        the kind default.
    interconnect_bandwidth / interconnect_latency:
        Intra-site network per-node bandwidth (bytes/s) and latency (s)
        used for communication phases. Clouds default to slow/late.
    """

    name: str
    kind: SiteKind
    devices: Dict[Device, int] = field(default_factory=dict)
    power_limit: float = 1e6
    price_per_device_hour: Dict[str, float] = field(default_factory=dict)
    noise_level: Optional[float] = None
    interconnect_bandwidth: float = 12.5e9
    interconnect_latency: float = 2e-6

    def __post_init__(self) -> None:
        if self.power_limit <= 0:
            raise ConfigurationError(f"{self.name}: power_limit must be positive")
        if any(count <= 0 for count in self.devices.values()):
            raise ConfigurationError(f"{self.name}: device counts must be positive")
        if self.noise_level is None:
            self.noise_level = DEFAULT_NOISE[self.kind]
        if self.interconnect_bandwidth <= 0 or self.interconnect_latency < 0:
            raise ConfigurationError(f"{self.name}: invalid interconnect parameters")
        self._busy: Dict[Device, int] = {device: 0 for device in self.devices}

    # --- inventory -----------------------------------------------------------

    @property
    def device_list(self) -> List[Device]:
        return list(self.devices)

    def total_devices(self) -> int:
        return sum(self.devices.values())

    def count(self, device: Device) -> int:
        return self.devices.get(device, 0)

    def peak_power(self) -> float:
        """All installed devices at TDP."""
        return sum(device.spec.tdp * count for device, count in self.devices.items())

    def has_kind(self, kind: DeviceKind) -> bool:
        return any(device.kind is kind for device in self.devices)

    def devices_of_kind(self, kind: DeviceKind) -> List[Device]:
        return [device for device in self.devices if device.kind is kind]

    # --- occupancy ------------------------------------------------------------

    def free_count(self, device: Device) -> int:
        """Devices of a model not currently allocated."""
        return self.count(device) - self._busy.get(device, 0)

    def acquire(self, device: Device, count: int = 1) -> None:
        """Allocate ``count`` devices; raises :class:`CapacityError` if short."""
        if count <= 0:
            raise ValueError("count must be positive")
        if self.free_count(device) < count:
            raise CapacityError(
                f"{self.name}: need {count} x {device.name}, "
                f"only {self.free_count(device)} free"
            )
        self._busy[device] = self._busy.get(device, 0) + count

    def release(self, device: Device, count: int = 1) -> None:
        """Return ``count`` devices to the free pool."""
        if count <= 0:
            raise ValueError("count must be positive")
        if self._busy.get(device, 0) < count:
            raise ValueError(f"{self.name}: releasing more {device.name} than busy")
        self._busy[device] -= count

    def utilization(self) -> float:
        """Fraction of installed devices currently allocated."""
        total = self.total_devices()
        if total == 0:
            return 0.0
        return sum(self._busy.values()) / total

    # --- pricing ---------------------------------------------------------------

    def hourly_price(self, device: Device) -> float:
        """$/hour for one device; defaults to amortised acquisition cost.

        The default amortises the device's unit cost over a 3-year life at
        40% average utilisation — a crude but standard on-premise figure.
        """
        if device.name in self.price_per_device_hour:
            return self.price_per_device_hour[device.name]
        amortisation_hours = 3 * 365 * 24 * 0.4
        return device.spec.unit_cost / amortisation_hours

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Site({self.name!r}, {self.kind.value}, devices={self.total_devices()})"
