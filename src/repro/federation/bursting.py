"""Cloud bursting and the staged path to the compute exchange.

The paper (§III.G) describes a staircase of intermediate steps towards the
Open Compute Exchange:

1. **bursting** — overflow to a cloud partner when the local queue peaks,
2. **fluidity** — workloads move freely "between different sites under
   different administrations",
3. **new compute grid** — cross-institutional bootstrapping with security
   and data governance addressed,
4. **open compute exchange** — anyone contributes to supply and demand.

:class:`DeliveryStage` names the stages and encodes which placement
freedoms each allows; :class:`BurstingPolicy` implements stage 1's
queue-threshold overflow decision, reused by the staircase experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.federation.site import Site, SiteKind
from repro.observability.probes import Telemetry
from repro.workloads.base import Job


class DeliveryStage(IntEnum):
    """The §III.G staircase. Higher stages strictly widen placement freedom."""

    ON_PREMISE_ONLY = 0
    BURSTING = 1
    FLUIDITY = 2
    COMPUTE_GRID = 3
    OPEN_EXCHANGE = 4

    @property
    def description(self) -> str:
        descriptions = {
            DeliveryStage.ON_PREMISE_ONLY: "static on-premise capacity only",
            DeliveryStage.BURSTING: "overflow to one contracted cloud",
            DeliveryStage.FLUIDITY: "workloads move freely across owned/partner sites",
            DeliveryStage.COMPUTE_GRID: "cross-institutional grid with governance",
            DeliveryStage.OPEN_EXCHANGE: "open market over all providers",
        }
        return descriptions[self]

    def allowed_sites(self, home: Site, all_sites: List[Site]) -> List[Site]:
        """Which sites a job submitted at ``home`` may run on at this stage."""
        if self is DeliveryStage.ON_PREMISE_ONLY:
            return [home]
        if self is DeliveryStage.BURSTING:
            clouds = [s for s in all_sites if s.kind is SiteKind.CLOUD]
            return [home] + clouds[:1]  # one contracted cloud partner
        if self is DeliveryStage.FLUIDITY:
            return [
                s
                for s in all_sites
                if s.kind in (SiteKind.ON_PREMISE, SiteKind.CLOUD, SiteKind.COLO)
                or s is home
            ]
        # COMPUTE_GRID and OPEN_EXCHANGE: everything.
        return list(all_sites)


@dataclass
class BurstingPolicy:
    """Stage-1 bursting: overflow when the local queue exceeds a threshold.

    Attributes
    ----------
    queue_threshold:
        Estimated local queue wait (seconds) above which jobs burst.
    burst_premium:
        Price multiplier accepted when bursting (cloud on-demand premium).
    max_burst_fraction:
        Cap on the fraction of jobs allowed to burst (budget guard).
    telemetry:
        Optional :class:`~repro.observability.probes.Telemetry`; when set,
        every decision bumps ``federation.burst.considered`` and (for
        positive decisions) ``federation.burst.bursted``, with the refusal
        reason labelled on ``federation.burst.refused``.
    """

    queue_threshold: float = 3_600.0
    burst_premium: float = 2.0
    max_burst_fraction: float = 0.5
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        if self.queue_threshold < 0:
            raise ConfigurationError("queue_threshold must be non-negative")
        if self.burst_premium < 1.0:
            raise ConfigurationError("burst_premium must be >= 1")
        if not 0.0 <= self.max_burst_fraction <= 1.0:
            raise ConfigurationError("max_burst_fraction must be in [0, 1]")
        self._bursted = 0
        self._considered = 0

    def should_burst(self, job: Job, estimated_local_wait: float) -> bool:
        """Decide whether ``job`` bursts given the predicted local wait.

        Synchronisation-sensitive jobs never burst (cloud noise would
        destroy them, §II.C); otherwise burst when the wait exceeds the
        threshold and the burst budget is not exhausted.
        """
        self._considered += 1
        if self.telemetry is not None:
            self.telemetry.counter("federation.burst.considered").inc()
        if job.is_synchronisation_sensitive:
            return self._refuse("sync_sensitive")
        if estimated_local_wait <= self.queue_threshold:
            return self._refuse("below_threshold")
        if self._considered > 0:
            burst_fraction = self._bursted / self._considered
            if burst_fraction >= self.max_burst_fraction:
                return self._refuse("budget_exhausted")
        self._bursted += 1
        if self.telemetry is not None:
            self.telemetry.counter("federation.burst.bursted").inc()
        return True

    def _refuse(self, reason: str) -> bool:
        if self.telemetry is not None:
            self.telemetry.counter("federation.burst.refused").inc(reason=reason)
        return False

    @property
    def burst_rate(self) -> float:
        """Fraction of considered jobs that bursted."""
        if self._considered == 0:
            return 0.0
        return self._bursted / self._considered

    def reset(self) -> None:
        """Clear counters (for reuse across experiment repetitions)."""
        self._bursted = 0
        self._considered = 0
