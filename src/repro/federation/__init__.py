"""Federated HPC: sites, WAN links, data gravity, bursting and SLAs.

The paper's delivery-model vision (§II.C, §III.F, §III.G, Figure 3):
HPC will be "inherently heterogeneous and distributed from edge to core",
delivered through **vertical federation** (edge → supercomputer → cloud)
and **horizontal federation** (multi-cloud and multi-site), with workloads
placed "not only following compute resources availability but targeting the
optimization of job completion time end to end, including the data
transfer" (data gravity).

This subpackage models the substrate those claims need: sites of different
kinds holding devices, a WAN connecting them, datasets pinned to sites, and
the staged delivery evolution (bursting → fluidity → grid → exchange).
"""

from repro.federation.accounting import (
    AccountingLedger,
    Invoice,
    MeterRecord,
)
from repro.federation.bursting import BurstingPolicy, DeliveryStage
from repro.federation.datasets import Dataset, DatasetCatalog
from repro.federation.federation import Federation
from repro.federation.gravity import data_gravity_score, transfer_cost
from repro.federation.site import Site, SiteKind
from repro.federation.sla import QoSClass, ServiceLevelAgreement, SlaTracker
from repro.federation.trust import (
    FederatedAction,
    FederationAgreement,
    Organisation,
    TrustRegistry,
)
from repro.federation.wan import WanLink, WanNetwork
from repro.federation.workflow import (
    StepExecution,
    WorkflowEngine,
    WorkflowResult,
    WorkflowStep,
)

__all__ = [
    "AccountingLedger",
    "BurstingPolicy",
    "Invoice",
    "MeterRecord",
    "Dataset",
    "DatasetCatalog",
    "DeliveryStage",
    "FederatedAction",
    "Federation",
    "FederationAgreement",
    "Organisation",
    "TrustRegistry",
    "QoSClass",
    "ServiceLevelAgreement",
    "Site",
    "SiteKind",
    "SlaTracker",
    "StepExecution",
    "WanLink",
    "WanNetwork",
    "WorkflowEngine",
    "WorkflowResult",
    "WorkflowStep",
    "data_gravity_score",
    "transfer_cost",
]
