"""Service-level agreements and QoS tracking.

The paper (§II.C): "The complications of managing service-level agreements
(SLAs) and quality-of-service (QoS) were two of the major impediments to
the success of Grid computing." The federated model therefore needs SLA
machinery as a first-class substrate: agreements attach deadlines and QoS
classes to jobs, and a tracker measures attainment per site/provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError


class QoSClass(Enum):
    """Service classes with their scheduling weight and price multiplier."""

    BEST_EFFORT = ("best_effort", 1.0, 1.0)
    STANDARD = ("standard", 2.0, 1.5)
    PREMIUM = ("premium", 4.0, 3.0)
    REAL_TIME = ("real_time", 8.0, 6.0)

    def __init__(self, label: str, weight: float, price_multiplier: float) -> None:
        self.label = label
        self.weight = weight
        self.price_multiplier = price_multiplier


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """An SLA between a consumer and a provider for one job or job class.

    Attributes
    ----------
    qos:
        Service class.
    deadline:
        Maximum completion time from submission, seconds (None = none).
    max_queue_wait:
        Maximum time the job may wait before starting, seconds.
    violation_penalty:
        Dollars refunded to the consumer per violated agreement.
    """

    qos: QoSClass = QoSClass.BEST_EFFORT
    deadline: Optional[float] = None
    max_queue_wait: Optional[float] = None
    violation_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive when set")
        if self.max_queue_wait is not None and self.max_queue_wait < 0:
            raise ConfigurationError("max_queue_wait must be non-negative when set")
        if self.violation_penalty < 0:
            raise ConfigurationError("violation_penalty must be non-negative")

    def is_met(self, queue_wait: float, completion_time: float) -> bool:
        """Whether observed queue wait and completion satisfy the SLA."""
        if self.max_queue_wait is not None and queue_wait > self.max_queue_wait:
            return False
        if self.deadline is not None and completion_time > self.deadline:
            return False
        return True


@dataclass
class SlaOutcome:
    """One recorded job outcome against its SLA."""

    job_name: str
    provider: str
    sla: ServiceLevelAgreement
    queue_wait: float
    completion_time: float

    @property
    def met(self) -> bool:
        return self.sla.is_met(self.queue_wait, self.completion_time)

    @property
    def penalty(self) -> float:
        return 0.0 if self.met else self.sla.violation_penalty


class SlaTracker:
    """Aggregates SLA attainment across providers."""

    def __init__(self) -> None:
        self._outcomes: List[SlaOutcome] = []

    def record(
        self,
        job_name: str,
        provider: str,
        sla: ServiceLevelAgreement,
        queue_wait: float,
        completion_time: float,
    ) -> SlaOutcome:
        outcome = SlaOutcome(job_name, provider, sla, queue_wait, completion_time)
        self._outcomes.append(outcome)
        return outcome

    @property
    def outcomes(self) -> List[SlaOutcome]:
        return list(self._outcomes)

    def attainment(self, provider: Optional[str] = None) -> float:
        """Fraction of SLAs met (1.0 when nothing recorded)."""
        relevant = [
            o for o in self._outcomes if provider is None or o.provider == provider
        ]
        if not relevant:
            return 1.0
        return sum(1 for o in relevant if o.met) / len(relevant)

    def total_penalties(self, provider: Optional[str] = None) -> float:
        """Dollars owed in violation penalties."""
        return sum(
            o.penalty
            for o in self._outcomes
            if provider is None or o.provider == provider
        )

    def by_provider(self) -> Dict[str, float]:
        """Attainment per provider."""
        providers = {o.provider for o in self._outcomes}
        return {p: self.attainment(p) for p in sorted(providers)}
