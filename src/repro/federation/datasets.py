"""Datasets pinned to sites: the anchors of data gravity.

The paper (§III.F): workload placement must consider "data 'gravitational'
aspects" — big datasets attract computation because moving them dominates
end-to-end completion time. A :class:`Dataset` records size and replica
locations; the :class:`DatasetCatalog` resolves the closest replica for a
prospective execution site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.errors import ConfigurationError
from repro.federation.site import Site
from repro.federation.wan import WanNetwork


@dataclass
class Dataset:
    """A named dataset with one or more replicas.

    Attributes
    ----------
    name:
        Unique dataset name.
    size_bytes:
        Dataset size.
    replicas:
        Site names currently holding a full replica.
    """

    name: str
    size_bytes: float
    replicas: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError(f"{self.name}: size must be non-negative")
        if not self.replicas:
            raise ConfigurationError(f"{self.name}: needs at least one replica")

    def add_replica(self, site: Site) -> None:
        self.replicas.add(site.name)

    def has_replica_at(self, site: Site) -> bool:
        return site.name in self.replicas


class DatasetCatalog:
    """Registry of datasets plus closest-replica queries over a WAN."""

    def __init__(self, wan: WanNetwork) -> None:
        self.wan = wan
        self._datasets: Dict[str, Dataset] = {}

    def register(self, dataset: Dataset) -> Dataset:
        if dataset.name in self._datasets:
            raise ConfigurationError(f"duplicate dataset: {dataset.name}")
        for replica in dataset.replicas:
            self.wan.site(replica)  # raises for unknown sites
        self._datasets[dataset.name] = dataset
        return dataset

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            known = ", ".join(sorted(self._datasets))
            raise KeyError(f"unknown dataset {name!r}; catalog has: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def closest_replica(self, name: str, to: Site) -> Site:
        """The replica site with the smallest transfer time to ``to``."""
        dataset = self.get(name)
        best_site: Optional[Site] = None
        best_time = float("inf")
        for replica_name in dataset.replicas:
            replica_site = self.wan.site(replica_name)
            elapsed = self.wan.transfer_time(replica_site, to, dataset.size_bytes)
            if elapsed < best_time:
                best_time = elapsed
                best_site = replica_site
        assert best_site is not None  # replicas is non-empty by construction
        return best_site

    def staging_time(self, name: str, to: Site) -> float:
        """Transfer time of the dataset to a site (0 if a replica is local)."""
        dataset = self.get(name)
        if dataset.has_replica_at(to):
            return 0.0
        source = self.closest_replica(name, to)
        return self.wan.transfer_time(source, to, dataset.size_bytes)

    def staging_dollars(self, name: str, to: Site) -> float:
        """Egress cost of staging the dataset to a site."""
        dataset = self.get(name)
        if dataset.has_replica_at(to):
            return 0.0
        source = self.closest_replica(name, to)
        return self.wan.transfer_dollars(source, to, dataset.size_bytes)

    def datasets_at(self, site: Site) -> List[Dataset]:
        """All datasets with a replica at a site."""
        return [d for d in self._datasets.values() if d.has_replica_at(site)]

    def total_bytes_at(self, site: Site) -> float:
        """Aggregate replica bytes at a site (its gravitational mass)."""
        return sum(d.size_bytes for d in self.datasets_at(site))
