"""Monitoring, metering and inter-site settlement.

The paper (§III.F): "It will also put in place the monitoring and
accounting framework to capture the resource exchange between the sites.
Such resource consumption data collection could lay the foundation to an
'Open Compute Exchange'."

Components:

* :class:`MeterRecord` — one job's metered consumption at a provider site
  (device-hours, energy, data egress),
* :class:`AccountingLedger` — append-only record store with per-site and
  per-consumer aggregation, invoice generation, and bilateral netting of
  inter-site balances (the accounting substrate an exchange settles on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError

_record_ids = itertools.count()


@dataclass(frozen=True)
class MeterRecord:
    """One job's metered consumption at a provider.

    Attributes
    ----------
    job_name:
        The metered job.
    consumer:
        Paying organisation (usually the submitting site or user org).
    provider:
        Site that supplied the resources.
    device_name:
        Device model used.
    device_hours:
        Device-hours consumed.
    energy_joules:
        Energy consumed.
    egress_bytes:
        Data moved out of the provider on the job's behalf.
    price_per_device_hour:
        Agreed $/device-hour.
    energy_price_per_kwh:
        $/kWh passed through.
    egress_price_per_gb:
        $/GB for egress.
    timestamp:
        Metering time (simulated seconds).
    """

    job_name: str
    consumer: str
    provider: str
    device_name: str
    device_hours: float
    energy_joules: float = 0.0
    egress_bytes: float = 0.0
    price_per_device_hour: float = 1.0
    energy_price_per_kwh: float = 0.0
    egress_price_per_gb: float = 0.0
    timestamp: float = 0.0
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def __post_init__(self) -> None:
        if self.device_hours < 0 or self.energy_joules < 0 or self.egress_bytes < 0:
            raise ConfigurationError("metered quantities must be non-negative")
        if min(self.price_per_device_hour, self.energy_price_per_kwh,
               self.egress_price_per_gb) < 0:
            raise ConfigurationError("prices must be non-negative")

    @property
    def compute_charge(self) -> float:
        return self.device_hours * self.price_per_device_hour

    @property
    def energy_charge(self) -> float:
        return (self.energy_joules / 3.6e6) * self.energy_price_per_kwh

    @property
    def egress_charge(self) -> float:
        return (self.egress_bytes / 1e9) * self.egress_price_per_gb

    @property
    def total_charge(self) -> float:
        return self.compute_charge + self.energy_charge + self.egress_charge


@dataclass(frozen=True)
class Invoice:
    """Aggregated charges from one provider to one consumer."""

    provider: str
    consumer: str
    records: Tuple[MeterRecord, ...]

    @property
    def total(self) -> float:
        return sum(record.total_charge for record in self.records)

    @property
    def device_hours(self) -> float:
        return sum(record.device_hours for record in self.records)


class AccountingLedger:
    """Append-only meter-record store with aggregation and netting."""

    def __init__(self) -> None:
        self._records: List[MeterRecord] = []

    def meter(self, record: MeterRecord) -> MeterRecord:
        self._records.append(record)
        return record

    @property
    def records(self) -> List[MeterRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # --- aggregation ------------------------------------------------------------

    def provider_revenue(self, provider: str) -> float:
        return sum(
            r.total_charge for r in self._records if r.provider == provider
        )

    def consumer_spend(self, consumer: str) -> float:
        return sum(
            r.total_charge for r in self._records if r.consumer == consumer
        )

    def device_hours_by_provider(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for record in self._records:
            totals[record.provider] = totals.get(record.provider, 0.0) + record.device_hours
        return totals

    def invoice(self, provider: str, consumer: str) -> Invoice:
        """All charges from one provider to one consumer."""
        matching = tuple(
            r for r in self._records
            if r.provider == provider and r.consumer == consumer
        )
        return Invoice(provider=provider, consumer=consumer, records=matching)

    def invoices(self) -> List[Invoice]:
        """One invoice per (provider, consumer) pair with any charges."""
        pairs = sorted({(r.provider, r.consumer) for r in self._records})
        return [self.invoice(provider, consumer) for provider, consumer in pairs]

    # --- settlement -----------------------------------------------------------

    def net_balances(self) -> Dict[str, float]:
        """Net dollar position per organisation (+ = owed money).

        Sites are both providers and consumers in a federation; netting
        reduces the money that actually moves — the mechanism that makes
        "facilitated sharing between sites" financially practical.
        """
        balances: Dict[str, float] = {}
        for record in self._records:
            charge = record.total_charge
            balances[record.provider] = balances.get(record.provider, 0.0) + charge
            balances[record.consumer] = balances.get(record.consumer, 0.0) - charge
        return balances

    def settlement_transfers(self) -> List[Tuple[str, str, float]]:
        """A minimal-ish set of transfers settling all net balances.

        Greedy matching of largest debtor to largest creditor; the sum of
        transfers equals the sum of positive balances (conservation).
        """
        balances = self.net_balances()
        creditors = sorted(
            ((org, amount) for org, amount in balances.items() if amount > 1e-9),
            key=lambda item: -item[1],
        )
        debtors = sorted(
            ((org, -amount) for org, amount in balances.items() if amount < -1e-9),
            key=lambda item: -item[1],
        )
        transfers: List[Tuple[str, str, float]] = []
        creditor_index = 0
        for debtor, owed in debtors:
            remaining = owed
            while remaining > 1e-9 and creditor_index < len(creditors):
                creditor, due = creditors[creditor_index]
                amount = min(remaining, due)
                transfers.append((debtor, creditor, amount))
                remaining -= amount
                due -= amount
                if due <= 1e-9:
                    creditor_index += 1
                else:
                    creditors[creditor_index] = (creditor, due)
        return transfers

    def gross_volume(self) -> float:
        """Total charges before netting."""
        return sum(r.total_charge for r in self._records)

    def netting_efficiency(self) -> float:
        """1 - (settled dollars / gross dollars): how much netting saves."""
        gross = self.gross_volume()
        if gross == 0:
            return 0.0
        settled = sum(amount for _, _, amount in self.settlement_transfers())
        return 1.0 - settled / gross
