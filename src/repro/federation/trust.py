"""Cross-institutional trust: the grid stage's security substrate.

The paper (§III.G): before the compute grid can bootstrap, "the
cross-institutional and geographical hurdles (such as security and data
governance) are to be addressed". And (§III.C): tenants run under "zero
trust" with strong isolation.

Model
-----
* an :class:`Organisation` belongs to a :class:`TrustDomain` (an
  institution or national programme),
* :class:`FederationAgreement` records which domain pairs may exchange
  which actions (submit jobs, read institutional data, trade on the
  exchange), optionally with an expiry,
* :class:`TrustRegistry` answers authorisation queries the scheduler,
  transfer planner and exchange consult before acting across domains.

Zero trust means in-domain requests are *also* checked — membership grants
a default agreement rather than bypassing the check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError


class FederatedAction(Enum):
    """Actions an organisation may be authorised to perform remotely."""

    SUBMIT_JOBS = "submit_jobs"
    READ_INSTITUTIONAL_DATA = "read_institutional_data"
    TRADE_CAPACITY = "trade_capacity"


@dataclass(frozen=True)
class Organisation:
    """A user organisation or site operator."""

    name: str
    domain: str

    def __post_init__(self) -> None:
        if not self.name or not self.domain:
            raise ConfigurationError("organisation needs a name and a domain")


@dataclass(frozen=True)
class FederationAgreement:
    """A directed authorisation between two trust domains.

    ``from_domain``'s members may perform ``actions`` against resources in
    ``to_domain`` until ``expires_at`` (simulated seconds; None = open
    ended).
    """

    from_domain: str
    to_domain: str
    actions: FrozenSet[FederatedAction]
    expires_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.actions:
            raise ConfigurationError("agreement must grant at least one action")
        if self.expires_at is not None and self.expires_at <= 0:
            raise ConfigurationError("expires_at must be positive when set")

    def allows(self, action: FederatedAction, now: float) -> bool:
        if self.expires_at is not None and now > self.expires_at:
            return False
        return action in self.actions


class TrustRegistry:
    """Organisations, domains and the agreements between them."""

    def __init__(self) -> None:
        self._organisations: Dict[str, Organisation] = {}
        self._agreements: List[FederationAgreement] = []
        self._domains: Set[str] = set()

    # --- registration -------------------------------------------------------

    def register(self, organisation: Organisation) -> Organisation:
        if organisation.name in self._organisations:
            raise ConfigurationError(f"duplicate organisation {organisation.name!r}")
        self._organisations[organisation.name] = organisation
        if organisation.domain not in self._domains:
            self._domains.add(organisation.domain)
            # Zero trust with sane defaults: a domain trusts itself fully.
            self._agreements.append(
                FederationAgreement(
                    from_domain=organisation.domain,
                    to_domain=organisation.domain,
                    actions=frozenset(FederatedAction),
                )
            )
        return organisation

    def agree(self, agreement: FederationAgreement) -> FederationAgreement:
        for domain in (agreement.from_domain, agreement.to_domain):
            if domain not in self._domains:
                raise ConfigurationError(f"unknown trust domain {domain!r}")
        self._agreements.append(agreement)
        return agreement

    def organisation(self, name: str) -> Organisation:
        try:
            return self._organisations[name]
        except KeyError:
            raise KeyError(f"unknown organisation {name!r}") from None

    @property
    def domains(self) -> List[str]:
        return sorted(self._domains)

    # --- authorisation ---------------------------------------------------------

    def is_authorised(
        self,
        organisation_name: str,
        target_domain: str,
        action: FederatedAction,
        now: float = 0.0,
    ) -> bool:
        """Whether an organisation may perform an action in a domain now."""
        organisation = self.organisation(organisation_name)
        return any(
            agreement.from_domain == organisation.domain
            and agreement.to_domain == target_domain
            and agreement.allows(action, now)
            for agreement in self._agreements
        )

    def authorised_domains(
        self, organisation_name: str, action: FederatedAction, now: float = 0.0
    ) -> List[str]:
        """All domains where the organisation may perform an action."""
        return [
            domain
            for domain in sorted(self._domains)
            if self.is_authorised(organisation_name, domain, action, now)
        ]

    def reachable_fraction(
        self, organisation_name: str, action: FederatedAction, now: float = 0.0
    ) -> float:
        """Fraction of known domains open to the organisation for an action
        — the 'selective federation' coverage of the paper's summary."""
        if not self._domains:
            return 0.0
        reachable = len(self.authorised_domains(organisation_name, action, now))
        return reachable / len(self._domains)
