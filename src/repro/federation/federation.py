"""The federation: sites + WAN + dataset catalog, with placement queries.

A :class:`Federation` is the top-level substrate of the paper's vision: the
"archipelago" of heterogeneous sites over which the meta-scheduler
(:mod:`repro.scheduling.metascheduler`) places work. It distinguishes the
paper's two federation axes:

* **vertical** — edge <-> supercomputer <-> cloud (driven by data
  architecture),
* **horizontal** — across providers of the same tier (driven by economics).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.federation.datasets import Dataset, DatasetCatalog
from repro.federation.site import Site, SiteKind
from repro.federation.wan import WanLink, WanNetwork
from repro.hardware.device import Device, DeviceKind
from repro.observability.probes import Telemetry


class Federation:
    """Sites joined by a WAN, with a shared dataset catalog."""

    def __init__(
        self, name: str = "federation", telemetry: Optional[Telemetry] = None
    ) -> None:
        self.name = name
        self.telemetry = telemetry
        self.wan = WanNetwork(telemetry=telemetry)
        self.catalog = DatasetCatalog(self.wan)
        self._sites: Dict[str, Site] = {}

    def attach_telemetry(self, telemetry: Telemetry) -> Telemetry:
        """Wire one telemetry object through the federation and its WAN.

        Call any time before (or during) a run; cross-site transfers
        recorded via :meth:`WanNetwork.record_transfer` start accounting
        from that point on.
        """
        self.telemetry = telemetry
        self.wan.telemetry = telemetry
        return telemetry

    # --- construction -----------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ConfigurationError(f"duplicate site: {site.name}")
        self._sites[site.name] = site
        self.wan.add_site(site)
        return site

    def connect(self, a: Site, b: Site, link: WanLink) -> None:
        for site in (a, b):
            if site.name not in self._sites:
                raise ConfigurationError(f"site {site.name} not in federation")
        self.wan.connect(a, b, link)

    def add_dataset(self, dataset: Dataset) -> Dataset:
        return self.catalog.register(dataset)

    # --- queries -----------------------------------------------------------------

    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            known = ", ".join(sorted(self._sites))
            raise KeyError(f"unknown site {name!r}; federation has: {known}") from None

    def sites_of_kind(self, kind: SiteKind) -> List[Site]:
        return [s for s in self._sites.values() if s.kind is kind]

    def sites_with_device_kind(self, kind: DeviceKind) -> List[Site]:
        return [s for s in self._sites.values() if s.has_kind(kind)]

    def all_devices(self) -> List[Device]:
        """Every distinct device model installed anywhere."""
        seen: Dict[str, Device] = {}
        for site in self._sites.values():
            for device in site.devices:
                seen.setdefault(device.name, device)
        return list(seen.values())

    def device_diversity(self) -> int:
        """Count of distinct device kinds across the federation — the
        "breadth of silicon options" no single site can afford (§III.F)."""
        kinds = set()
        for site in self._sites.values():
            for device in site.devices:
                kinds.add(device.kind)
        return len(kinds)

    def total_capacity(self) -> int:
        """Total installed devices across all sites."""
        return sum(site.total_devices() for site in self._sites.values())

    def utilization(self) -> float:
        """Device-weighted mean utilisation."""
        total = self.total_capacity()
        if total == 0:
            return 0.0
        busy = sum(
            site.utilization() * site.total_devices()
            for site in self._sites.values()
        )
        return busy / total

    # --- vertical / horizontal views ----------------------------------------------

    def vertical_slice(self) -> List[Site]:
        """Edge → supercomputer → cloud sites (the vertical federation)."""
        order = [SiteKind.EDGE, SiteKind.ON_PREMISE, SiteKind.SUPERCOMPUTER, SiteKind.CLOUD]
        ordered: List[Site] = []
        for kind in order:
            ordered.extend(self.sites_of_kind(kind))
        return ordered

    def horizontal_slice(self, kind: SiteKind) -> List[Site]:
        """All sites of one tier (the horizontal federation)."""
        return self.sites_of_kind(kind)
