"""Wide-area network model connecting federation sites.

The paper (§III.F): "thanks to significantly more capable WAN
interconnects, we believe the conditions are being set for a rebirth of the
Grid" — and (§III.B) the edge extension "introduces a 'wide-area
networking' context that is foreign to the traditional HPC world".

:class:`WanNetwork` is a graph of sites with per-link bandwidth, latency
and $/GB egress cost; transfer-time queries route over the cheapest or
fastest multi-hop path using :mod:`networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.errors import ConfigurationError
from repro.federation.site import Site
from repro.observability.probes import CATEGORY_WAN, Telemetry


@dataclass(frozen=True)
class WanLink:
    """A WAN link between two sites.

    Attributes
    ----------
    bandwidth:
        Sustained bytes/s available to a single workflow (not the raw
        circuit rate — WANs are shared).
    latency:
        One-way propagation latency, seconds.
    cost_per_gb:
        Egress/transit price in dollars per GB.
    """

    bandwidth: float
    latency: float
    cost_per_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0 or self.cost_per_gb < 0:
            raise ConfigurationError("invalid WAN link parameters")

    def transfer_time(self, size_bytes: float) -> float:
        """Time to move ``size_bytes`` across this link."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return self.latency + size_bytes / self.bandwidth

    def transfer_dollars(self, size_bytes: float) -> float:
        """Egress cost of the transfer."""
        return (size_bytes / 1e9) * self.cost_per_gb


class WanNetwork:
    """The federation's WAN as a site graph.

    ``telemetry`` (usually wired by ``Federation.attach_telemetry``) makes
    :meth:`record_transfer` account actual cross-site movements; the pure
    ``transfer_time``/``transfer_dollars`` queries stay side-effect free so
    placement scoring never pollutes the metrics.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._graph = nx.Graph()
        self.telemetry = telemetry

    def add_site(self, site: Site) -> None:
        self._graph.add_node(site.name, site=site)

    def connect(self, a: Site, b: Site, link: WanLink) -> None:
        """Add a bidirectional link between two (registered) sites."""
        for site in (a, b):
            if site.name not in self._graph:
                self.add_site(site)
        self._graph.add_edge(a.name, b.name, link=link)

    @property
    def sites(self) -> List[Site]:
        return [data["site"] for _, data in self._graph.nodes(data=True)]

    def site(self, name: str) -> Site:
        try:
            return self._graph.nodes[name]["site"]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def are_connected(self, a: Site, b: Site) -> bool:
        if a.name == b.name:
            return True
        return nx.has_path(self._graph, a.name, b.name)

    def _path(self, a: Site, b: Site, weight: str) -> List[Tuple[WanLink, str, str]]:
        """Links along the best path by a weight function name."""
        if a.name == b.name:
            return []
        if not nx.has_path(self._graph, a.name, b.name):
            raise ConfigurationError(f"no WAN path between {a.name} and {b.name}")

        def edge_weight(u: str, v: str, data: Dict) -> float:
            link: WanLink = data["link"]
            if weight == "time":
                return link.latency + 1.0 / link.bandwidth
            return link.cost_per_gb + 1e-12

        nodes = nx.shortest_path(self._graph, a.name, b.name, weight=edge_weight)
        return [
            (self._graph.edges[u, v]["link"], u, v) for u, v in zip(nodes, nodes[1:])
        ]

    def transfer_time(self, a: Site, b: Site, size_bytes: float) -> float:
        """End-to-end transfer time over the fastest path (store-and-forward
        pipelining assumed: bottleneck bandwidth + summed latencies)."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        links = self._path(a, b, weight="time")
        if not links:
            return 0.0
        bottleneck = min(link.bandwidth for link, _, _ in links)
        latency = sum(link.latency for link, _, _ in links)
        return latency + size_bytes / bottleneck

    def transfer_dollars(self, a: Site, b: Site, size_bytes: float) -> float:
        """Egress dollars over the cheapest path."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        links = self._path(a, b, weight="cost")
        return sum(link.transfer_dollars(size_bytes) for link, _, _ in links)

    def record_transfer(
        self,
        a: Site,
        b: Site,
        size_bytes: float,
        at_time: float = 0.0,
    ) -> float:
        """Account an *actual* transfer of ``size_bytes`` from ``a`` to ``b``.

        Returns the transfer time over the fastest path (0 for same-site),
        and — when telemetry is attached — bumps the ``wan.transfer_bytes``
        / ``wan.transfers`` / ``wan.transfer_dollars`` counters and records
        a ``wan`` span from ``at_time`` to ``at_time + elapsed``.
        """
        elapsed = self.transfer_time(a, b, size_bytes)
        if self.telemetry is not None and a.name != b.name:
            dollars = self.transfer_dollars(a, b, size_bytes)
            self.telemetry.counter("wan.transfers").inc(
                src=a.name, dst=b.name
            )
            self.telemetry.counter("wan.transfer_bytes").inc(
                size_bytes, src=a.name, dst=b.name
            )
            self.telemetry.counter("wan.transfer_dollars").inc(
                dollars, src=a.name, dst=b.name
            )
            self.telemetry.tracer.complete(
                f"xfer:{a.name}->{b.name}", CATEGORY_WAN,
                at_time, at_time + elapsed,
                bytes=size_bytes, dollars=dollars,
            )
        return elapsed

    def bandwidth_between(self, a: Site, b: Site) -> float:
        """Bottleneck bandwidth on the fastest path (inf for same site)."""
        links = self._path(a, b, weight="time")
        if not links:
            return float("inf")
        return min(link.bandwidth for link, _, _ in links)
