"""Command-line interface: inspect devices, topologies and the roadmap.

Run as ``python -m repro <command>``:

* ``catalog``    — the device catalog with reference-kernel timings,
* ``topology``   — build a topology family and print its metrics,
* ``roadmap``    — the technology-scaling table (C13's data),
* ``experiments``— the experiment index with bench targets,
* ``trace``      — run a profiled experiment, write a Chrome trace,
* ``metrics``    — run a profiled experiment, print its counter tables,
* ``profile``    — run an experiment under the wall-clock profiler and
  report where host time went (phases, event types, top frames),
* ``sweep``      — fan a scenario sweep over worker processes (or, with
  ``--backend tcp``, over a fleet of worker hosts),
* ``sweep-worker`` — serve one worker host for a tcp-backend sweep,
* ``faults``     — run the fault-injection profile (C16) and report
  goodput, retries and conservation,
* ``validate``   — run invariants, differential checks and golden-
  fingerprint comparisons (``--record`` refreshes the goldens).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import Table
from repro.core.units import format_time
from repro.hardware import KernelProfile, Precision, default_catalog
from repro.hardware.technology import (
    GENERAL_PURPOSE,
    SPECIALIZED,
    default_roadmap,
    dennard_break_year,
)
from repro.interconnect.topology import TOPOLOGY_KINDS, build_topology

#: Experiment registry: id -> (claim anchor, bench target).
EXPERIMENTS = {
    "F1": ("Figure 1: Big Data/HPC/AI convergence", "benchmarks/test_fig1_convergence.py"),
    "F2": ("Figure 2: interconnect scales", "benchmarks/test_fig2_interconnect_scales.py"),
    "F3": ("Figure 3: delivery models", "benchmarks/test_fig3_delivery_models.py"),
    "C1": ("SII.B: flow-based congestion management", "benchmarks/test_congestion_management.py"),
    "C2": ("SII.B: low-diameter topologies", "benchmarks/test_topology_comparison.py"),
    "C3": ("SII.B: switch scaling wall", "benchmarks/test_switch_scaling.py"),
    "C4": ("SIII.B: accelerator specialisation O(N)", "benchmarks/test_accelerator_specialization.py"),
    "C5": ("SIII.B: closed-loop sim+AI", "benchmarks/test_closed_loop_hybrid.py"),
    "C6": ("SIII.A: instrumentation heavy edge", "benchmarks/test_edge_inference.py"),
    "C7": ("SII.C: cloud noise vs barriers", "benchmarks/test_cloud_noise.py"),
    "C8": ("SIII.F: transparent meta-scheduler", "benchmarks/test_metascheduler.py"),
    "C9": ("SIII.F: data gravity", "benchmarks/test_data_gravity.py"),
    "C10": ("SIII.F/G: Open Compute Exchange", "benchmarks/test_compute_exchange.py"),
    "C11": ("SIII.E: platform standardisation", "benchmarks/test_platform_economics.py"),
    "C12": ("SIII.C: in-network all-reduce offload", "benchmarks/test_collective_offload.py"),
    "C13": ("SI/SII.A: end of Dennard, dark silicon", "benchmarks/test_technology_scaling.py"),
    "C14": ("SIII.D: data-centric task mapping", "benchmarks/test_taskgraph_mapping.py"),
    "C15": ("SIII.C: virtual networks, zero trust", "benchmarks/test_virtual_networks.py"),
    "C16": ("SIII.C: fabric-PM resilience", "benchmarks/test_resilience_checkpointing.py"),
    "C17": ("SIII.D: model interchange", "benchmarks/test_model_interchange.py"),
    "C18": ("SIII.A/D: human-in-the-loop balance", "benchmarks/test_control_automation.py"),
    "C19": ("SIII.F: accounting and settlement", "benchmarks/test_federated_accounting.py"),
    "C20": ("SIV: horizontal federation smoothing", "benchmarks/test_horizontal_federation.py"),
}

#: CLI argument names per topology kind, mapped onto build_topology specs.
_TOPOLOGY_ARGS = {
    "dragonfly": lambda args: {
        "groups": args.groups, "routers_per_group": args.routers,
        "terminals": args.terminals,
    },
    "hyperx": lambda args: {
        "dims": tuple(args.dims), "terminals": args.terminals,
    },
    "fat-tree": lambda args: {"k": args.k},
    "two-tier": lambda args: {
        "leaves": args.leaves, "spines": args.spines,
        "terminals": args.terminals,
    },
    "torus": lambda args: {
        "dims": tuple(args.dims), "terminals": args.terminals,
    },
}


def _command_catalog(args: argparse.Namespace) -> int:
    catalog = default_catalog()
    n = 4096
    kernel = KernelProfile(
        flops=2.0 * n * n * 256,
        bytes_moved=float(n * n),
        precision=Precision.INT8,
        mvm_dimension=n,
    )
    table = Table(
        "Device catalog (reference: batched 4096 INT8 MVM)",
        ["device", "kind", "TDP (W)", "unit cost ($)", "ref kernel time"],
    )
    for device in catalog:
        try:
            timing = format_time(device.time_for(kernel))
        except Exception:
            timing = "n/a"
        table.add_row(
            device.name, device.kind.value, device.spec.tdp,
            device.spec.unit_cost, timing,
        )
    table.print()
    return 0


def _command_topology(args: argparse.Namespace) -> int:
    spec = _TOPOLOGY_ARGS[args.family](args)
    topology = build_topology(args.family, **spec)
    table = Table(f"Topology metrics: {topology.name}", ["metric", "value"])
    table.add_row("switches", topology.switch_count)
    table.add_row("terminals", topology.terminal_count)
    table.add_row("switch-to-switch links", topology.link_count)
    table.add_row("diameter (hops)", topology.diameter())
    table.add_row("average hops", topology.average_shortest_path())
    table.add_row("bisection bandwidth (GB/s)", topology.bisection_bandwidth() / 1e9)
    table.add_row("cost per terminal ($)", topology.cost_per_terminal())
    table.print()
    return 0


def _command_roadmap(args: argparse.Namespace) -> int:
    table = Table(
        "Technology scaling roadmap (relative to 2005)",
        ["node", "year", "density", "power density", "lit fraction",
         "GP throughput", "specialised"],
    )
    for node in default_roadmap():
        table.add_row(
            node.name, node.year, node.density, node.power_density(),
            node.lit_fraction(), GENERAL_PURPOSE.throughput(node),
            SPECIALIZED.throughput(node),
        )
    table.print()
    print(f"Dennard break detected: {dennard_break_year()}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    table = Table(
        "Experiment index (run: pytest <bench> --benchmark-only)",
        ["id", "claim", "bench target"],
    )
    for experiment_id, (claim, target) in EXPERIMENTS.items():
        table.add_row(experiment_id, claim, target)
    table.print()
    return 0


def _command_report(args: argparse.Namespace) -> int:
    """Assemble benchmarks/results/*.txt into one report file."""
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    chunks = ["# Experiment report", ""]
    found = 0
    for experiment_id in EXPERIMENTS:
        matches = sorted(results_dir.glob(f"{experiment_id}_*.txt"))
        for path in matches:
            chunks.append("```")
            chunks.append(path.read_text().rstrip())
            chunks.append("```")
            chunks.append("")
            found += 1
    if not found:
        print(f"no result files in {results_dir}", file=sys.stderr)
        return 1
    output = pathlib.Path(args.output)
    output.write_text("\n".join(chunks))
    print(f"wrote {found} experiment tables to {output}")
    return 0


def _run_profile_or_fail(experiment_id: str):
    """Run one telemetry profile; prints the traceable ids on a bad id."""
    from repro.profiles import run_profile

    try:
        return run_profile(experiment_id)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return None


def _print_summary(result) -> None:
    table = Table(
        f"Run summary: {result.experiment_id} — {result.title}",
        ["metric", "value"],
    )
    for name, value in result.summary:
        table.add_row(name, value)
    table.print()


def _command_trace(args: argparse.Namespace) -> int:
    """Run one experiment profile with tracing on; export and summarise."""
    from repro.observability.export import (
        top_time_sinks,
        write_chrome_trace,
        write_jsonl,
    )

    result = _run_profile_or_fail(args.experiment)
    if result is None:
        return 2
    tracer = result.telemetry.tracer
    output = args.output or f"trace_{result.experiment_id.lower()}.json"
    path = write_chrome_trace(tracer, output)
    _print_summary(result)
    sinks = Table(
        f"Top {args.top} time sinks (total simulated seconds per span group)",
        ["category", "span", "total (s)", "count", "mean (s)"],
    )
    for category, name, total, count, mean in top_time_sinks(tracer, n=args.top):
        sinks.add_row(category, name, total, count, mean)
    sinks.print()
    print(f"wrote {len(tracer)} trace records to {path} "
          "(open at https://ui.perfetto.dev or chrome://tracing)")
    if args.jsonl:
        jsonl_path = write_jsonl(tracer, args.jsonl)
        print(f"wrote JSONL archival export to {jsonl_path}")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    """Run one experiment profile and print its metric tables."""
    from repro.observability.export import counter_rows, histogram_rows

    result = _run_profile_or_fail(args.experiment)
    if result is None:
        return 2
    registry = result.telemetry.metrics
    _print_summary(result)
    counters = Table(
        f"Counters and gauges: {result.experiment_id}",
        ["metric", "labels", "value"],
    )
    for name, labels, value in sorted(counter_rows(registry)):
        counters.add_row(name, labels or "-", value)
    counters.print()
    histogram_data = histogram_rows(registry)
    if histogram_data:
        histograms = Table(
            f"Histograms: {result.experiment_id}",
            ["metric", "labels", "bucket", "count", "mean"],
        )
        for name, labels, bucket, count, mean in histogram_data:
            histograms.add_row(name, labels or "-", bucket, count, mean)
        histograms.print()
    return 0


def _parse_axis_value(text: str):
    """``'0.5'`` -> float, ``'8'`` -> int, anything else stays a string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _select_solver(name: str) -> int:
    """Make ``name`` the process-wide default rate solver; 0 ok, 2 unknown.

    Every :class:`~repro.interconnect.fabric.FabricSimulator` built
    without an explicit ``solver=`` (profiles, sweep targets, the fault
    harness) then uses it.  All registered solvers are bit-identical, so
    this changes speed, never results.
    """
    from repro.core.errors import ConfigurationError
    from repro.interconnect.ratesolver import set_default_solver

    try:
        set_default_solver(name)
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """Run an experiment profile under the wall-clock profiler.

    Unlike ``trace``/``metrics`` (simulated time), this answers ROADMAP
    item 1's question — where does *host* wall-clock time go — with
    deterministic phase attribution, per-event-type latency tables, an
    optional sampling stack profiler, and a ``repro.profile/v1`` report
    JSON.  Exit codes: 0 ok, 2 bad profile id or override.
    """
    import json as json_module
    import pathlib

    from repro.observability import (
        PHASE_RUN,
        PhaseProfiler,
        StackSampler,
        Telemetry,
        prometheus_lines,
        profile_report,
        write_collapsed,
        write_profiler_chrome_trace,
        write_prometheus,
    )
    from repro.profiles import run as run_profile_by_id

    overrides = {}
    for clause in args.set or []:
        if "=" not in clause:
            print(f"bad --set {clause!r}; expected key=value", file=sys.stderr)
            return 2
        key, _, value = clause.partition("=")
        overrides[key] = _parse_axis_value(value)

    if args.solver is not None and (code := _select_solver(args.solver)):
        return code

    profiler = PhaseProfiler(detail=bool(args.chrome))
    sampler = (
        StackSampler(interval=args.sample_interval)
        if (args.sample or args.collapsed)
        else None
    )
    telemetry = Telemetry(profiler=profiler)
    try:
        if sampler is not None:
            sampler.start()
        with profiler.scope(PHASE_RUN):
            result = run_profile_by_id(args.experiment, telemetry, **overrides)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    except TypeError as error:
        print(f"bad override for {args.experiment}: {error}", file=sys.stderr)
        return 2
    finally:
        if sampler is not None:
            sampler.stop()

    _print_summary(result)
    phases = Table(
        "Wall-clock phases (host seconds, hottest first)",
        ["phase", "seconds", "calls", "mean (s)"],
    )
    for phase, seconds, calls, mean in profiler.phase_table():
        phases.add_row(phase, f"{seconds:.6f}", calls, f"{mean:.3e}")
    phases.print()
    events = Table(
        f"Top {args.top} event types by wall-clock dispatch time",
        ["callback", "seconds", "calls", "mean (s)"],
    )
    for label, seconds, calls, mean in profiler.event_table()[: args.top]:
        events.add_row(label, f"{seconds:.6f}", calls, f"{mean:.3e}")
    events.print()
    if sampler is not None:
        frames = Table(
            f"Top {args.top} sampled frames ({sampler.samples} samples, "
            f"{sampler.interval * 1e3:.1f} ms interval)",
            ["frame", "samples"],
        )
        for frame, count in sampler.top_frames(args.top):
            frames.add_row(frame, count)
        frames.print()

    report = profile_report(
        profiler, sampler, name=result.experiment_id, top=args.top
    )
    output = pathlib.Path(
        args.output or f"profile_{result.experiment_id.lower()}.json"
    )
    output.write_text(json_module.dumps(report, indent=2) + "\n")
    print(f"wrote profile report to {output}")
    if args.collapsed:
        path = write_collapsed(sampler, args.collapsed)
        print(f"wrote collapsed stacks (flamegraph input) to {path}")
    if args.chrome:
        path = write_profiler_chrome_trace(profiler, args.chrome)
        print(f"wrote wall-clock Chrome trace to {path}")
    if args.prometheus:
        path = write_prometheus(telemetry.metrics, args.prometheus)
        print(
            f"wrote {len(prometheus_lines(telemetry.metrics))} Prometheus "
            f"exposition lines to {path}"
        )
    return 0


def _resume_command(args: argparse.Namespace, journal_path: str) -> str:
    """The exact ``repro sweep`` invocation that finishes this sweep.

    Printed in the Ctrl-C hint so resuming is one copy-paste: the same
    spec-defining and policy flags the interrupted run had, plus
    ``--resume`` pointing at the flushed journal.
    """
    import shlex

    parts = ["repro", "sweep", shlex.quote(args.name)]
    if args.target:
        parts += ["--target", shlex.quote(args.target)]
        for axis in args.axis:
            parts += ["--axis", shlex.quote(axis)]
    if args.seed is not None:
        parts += ["--seed", str(args.seed)]
    if args.solver is not None:
        parts += ["--solver", shlex.quote(args.solver)]
    if args.workers != 1:
        parts += ["--workers", str(args.workers)]
    if args.timeout is not None:
        parts += ["--timeout", f"{args.timeout:g}"]
    if args.retries is not None:
        parts += ["--retries", str(args.retries)]
    if args.jitter:
        parts += ["--jitter", f"{args.jitter:g}"]
    if args.chaos:
        parts += ["--chaos", shlex.quote(args.chaos)]
    if args.strict:
        parts.append("--strict")
    if args.backend is not None:
        parts += ["--backend", args.backend]
    parts += ["--resume", shlex.quote(str(journal_path))]
    return " ".join(parts)


def _command_sweep(args: argparse.Namespace) -> int:
    """Run a scenario sweep; print its table and optionally store JSON.

    Exit codes: 0 clean, 1 partial (error ledger non-empty, or a
    --strict point failure), 2 bad arguments, 130 interrupted (journal
    flushed; resume with --resume).
    """
    from repro.analysis.aggregate import pivot, summary_table
    from repro.core.errors import ConfigurationError
    from repro.sweep import (
        NAMED_SWEEPS,
        FleetError,
        SweepInterrupted,
        SweepPointError,
        SweepSpec,
        named_sweep,
        run_sweep,
    )
    from repro.sweep.store import save_sweep

    if args.target:
        if not args.axis:
            print("--target needs at least one --axis name=v1,v2,...",
                  file=sys.stderr)
            return 2
        grid = {}
        for axis in args.axis:
            if "=" not in axis:
                print(f"bad --axis {axis!r}; expected name=v1,v2,...",
                      file=sys.stderr)
                return 2
            name, _, values = axis.partition("=")
            grid[name] = [_parse_axis_value(v) for v in values.split(",")]
        spec = SweepSpec(
            name=args.name, target=args.target, grid=grid,
            seed=args.seed if args.seed is not None else 0,
        )
    else:
        if args.name not in NAMED_SWEEPS:
            known = ", ".join(NAMED_SWEEPS)
            print(f"unknown sweep {args.name!r}; named sweeps: {known} "
                  "(or pass --target with --axis)", file=sys.stderr)
            return 2
        spec = named_sweep(args.name, seed=args.seed)
    if args.solver is not None:
        from repro.interconnect.ratesolver import SOLVERS

        if args.solver not in SOLVERS:
            known = ", ".join(sorted(SOLVERS))
            print(f"unknown rate solver {args.solver!r}; registered: {known}",
                  file=sys.stderr)
            return 2
        # A single-value rider axis: the solver name reaches the target as
        # a point parameter and is folded into the sweep fingerprint, so
        # sweeps run under different solvers never collide in a store.
        grid = spec.grid.axes
        grid["solver"] = [args.solver]
        spec = SweepSpec(
            name=spec.name, target=spec.target, grid=grid, seed=spec.seed
        )
    try:
        from repro.sweep import resolve_target

        resolve_target(spec.target)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    total = len(spec.grid)

    def report(point) -> None:
        print(f"  point {point.index + 1}/{total} done "
              f"({point.wall_seconds * 1e3:.1f} ms)")

    collect_telemetry = bool(args.telemetry or args.prometheus)
    parent_telemetry = None
    reporter = None
    if args.progress or collect_telemetry:
        from repro.observability import Telemetry

        parent_telemetry = Telemetry()
    if args.progress:
        from repro.observability import SweepProgressReporter

        reporter = SweepProgressReporter(total, telemetry=parent_telemetry)

    fleet = None
    if args.backend == "tcp":
        from repro.sweep import FleetConfig

        def announce(host: str, port: int) -> None:
            print(f"fleet coordinator listening on {host}:{port}",
                  flush=True)

        try:
            fleet = FleetConfig(
                listen=args.listen,
                min_hosts=args.min_hosts,
                heartbeat_interval=args.heartbeat_interval,
                heartbeat_timeout=args.heartbeat_timeout,
                steal=not args.no_steal,
                wait_for_hosts=args.wait_for_hosts,
                auth_token=args.auth_token,
                on_listen=announce,
            )
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
    try:
        result = run_sweep(
            spec, workers=args.workers, trace_dir=args.trace_dir,
            progress=reporter if reporter is not None
            else (report if args.verbose else None),
            timeout=args.timeout, retries=args.retries,
            jitter=args.jitter,
            chaos=args.chaos, journal=args.journal, resume=args.resume,
            strict=args.strict,
            telemetry=parent_telemetry,
            supervised=True if args.supervised else None,
            collect_telemetry=collect_telemetry,
            backend=args.backend, fleet=fleet,
        )
    except ConfigurationError as error:
        if reporter is not None:
            reporter.close()
        print(str(error), file=sys.stderr)
        return 2
    except SweepPointError as error:
        if reporter is not None:
            reporter.close()
        print(str(error), file=sys.stderr)
        return 1
    except FleetError as error:
        if reporter is not None:
            reporter.close()
        print(str(error), file=sys.stderr)
        return 1
    except SweepInterrupted as interrupt:
        if reporter is not None:
            reporter.close()
        partial = interrupt.partial
        done = len(partial.points) if partial is not None else 0
        remaining = total - done
        journal_path = args.resume[0] if args.resume else args.journal
        print(f"\ninterrupted: {done}/{total} point(s) completed "
              f"before Ctrl-C; {remaining} remaining", file=sys.stderr)
        if journal_path:
            print(f"journal flushed to {journal_path}; finish the "
                  f"remaining {remaining} point(s) with:",
                  file=sys.stderr)
            print(f"  {_resume_command(args, journal_path)}",
                  file=sys.stderr)
        else:
            print("no journal was kept (pass --journal PATH to make "
                  "sweeps resumable)", file=sys.stderr)
        return 130
    if reporter is not None:
        reporter.close()
    if args.pivot:
        rows_axis, columns_axis, value = args.pivot
        pivot(result, rows_axis, columns_axis, value,
              title=f"Sweep {result.name}: {value}").print()
    else:
        summary_table(
            result, title=f"Sweep {result.name} ({result.target}, "
                          f"{len(result.points)} points, "
                          f"{result.workers} workers)"
        ).print()
    print(f"swept {len(result.points)} points in "
          f"{result.wall_seconds:.2f}s with {result.workers} worker(s); "
          f"fingerprint {result.fingerprint()[:12]}")
    recovered = sum(
        result.harness.get(key, 0.0)
        for key in ("crashes", "timeouts", "errors")
    )
    if recovered:
        print(f"supervisor recovered from {recovered:.0f} harness fault(s): "
              f"{result.harness.get('crashes', 0.0):.0f} crash(es), "
              f"{result.harness.get('timeouts', 0.0):.0f} timeout(s), "
              f"{result.harness.get('errors', 0.0):.0f} point error(s); "
              f"{result.harness.get('retries', 0.0):.0f} retried")
    if result.failures:
        print(f"\n{len(result.failures)} point(s) failed after retries:",
              file=sys.stderr)
        for failure in result.failures:
            print(f"  point {failure.index} ({failure.attempts} attempts): "
                  f"{failure.error}", file=sys.stderr)
    if args.backend == "tcp" and parent_telemetry is not None:
        from repro.observability import host_breakdown, summarize_telemetry

        per_host = host_breakdown(summarize_telemetry(parent_telemetry))
        if per_host:
            events = sorted({e for ev in per_host.values() for e in ev})
            fleet_table = Table("Fleet hosts", ["host"] + events)
            for host_name, values in per_host.items():
                fleet_table.add_row(
                    host_name,
                    *(f"{values.get(event, 0.0):g}" for event in events),
                )
            fleet_table.print()
    if collect_telemetry and result.telemetry is not None:
        spans = sum(
            entry.get("count", 0)
            for names in result.telemetry.get("spans", {}).values()
            for entry in names.values()
        )
        print(f"merged telemetry from {len(result.points)} point(s): "
              f"{len(result.telemetry.get('counters', {}))} counters, "
              f"{len(result.telemetry.get('histograms', {}))} histograms, "
              f"{spans:.0f} spans")
    if args.prometheus and result.telemetry is not None:
        from repro.observability import (
            registry_from_summary,
            write_prometheus,
        )

        path = write_prometheus(
            registry_from_summary(result.telemetry), args.prometheus
        )
        print(f"wrote Prometheus exposition to {path}")
    if args.output:
        path = save_sweep(result, args.output)
        print(f"wrote sweep results to {path}")
    return 0 if result.ok else 1


def _command_sweep_worker(args: argparse.Namespace) -> int:
    """Serve one sweep worker host until its coordinator releases it.

    Exit codes: 0 orderly shutdown, 1 coordinator connection lost
    mid-sweep, 2 bad arguments or unreachable coordinator.
    """
    import importlib

    from repro.sweep import FleetError
    from repro.sweep.remote_worker import run_worker

    for module in args.preload:
        try:
            importlib.import_module(module)
        except ImportError as error:
            print(f"cannot preload {module!r}: {error}", file=sys.stderr)
            return 2
    try:
        return run_worker(
            args.connect,
            slots=args.slots,
            name=args.name,
            journal=args.journal,
            trace_dir=args.trace_dir,
            connect_timeout=args.connect_timeout,
            auth_token=args.auth_token,
        )
    except (FleetError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def _command_serve(args: argparse.Namespace) -> int:
    """Run the long-running simulation service until interrupted.

    Prints the bound address (port 0 picks an ephemeral port) and the
    artefact store path, then serves forever.  Exit codes: 0 on
    SIGINT/EOF, 2 on bad arguments.
    """
    import asyncio
    import importlib

    from repro.serve import QuotaPolicy, ServeConfig, ServiceApp

    for module in args.preload:
        try:
            importlib.import_module(module)
        except ImportError as error:
            print(f"cannot preload {module!r}: {error}", file=sys.stderr)
            return 2
    quota = None
    if args.quota is not None:
        try:
            quota = QuotaPolicy.parse(args.quota)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    try:
        app = ServiceApp(
            ServeConfig(
                host=args.host,
                port=args.port,
                store=args.store,
                sweep_workers=args.sweep_workers,
                job_workers=args.job_workers,
                max_queue=args.max_queue,
                quota=quota,
                cache_ttl=args.cache_ttl,
            )
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    async def serve() -> None:
        host, port = await app.start()
        print(f"serving on http://{host}:{port}", flush=True)
        print(f"artefact store at {app.cache.directory}", flush=True)
        await app.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    finally:
        app.close()
    return 0


def _command_serve_request(args: argparse.Namespace) -> int:
    """One request against a running serve process (the CLI client).

    Exit codes: 0 success, 1 server error, 2 bad arguments or
    connection failure, 3 request shed (429).
    """
    import json

    from repro.serve import http_request

    kind = args.kind
    method, target, payload = "GET", None, None
    headers = {}
    if args.tenant is not None:
        headers["X-Tenant"] = args.tenant
    if kind == "health":
        target = "/healthz"
    elif kind == "metrics":
        target = "/metrics"
    elif kind == "profile":
        if args.id is None:
            print("serve-request profile needs a profile id",
                  file=sys.stderr)
            return 2
        params = {}
        for clause in args.set:
            key, separator, value = clause.partition("=")
            if not separator:
                print(f"bad --set {clause!r}; expected key=value",
                      file=sys.stderr)
                return 2
            params[key] = _parse_axis_value(value)
        method, target = "POST", "/v1/profile"
        payload = {"profile": args.id, "params": params}
    else:  # sweep
        method, target = "POST", "/v1/sweep"
        if args.axis:
            axes = {}
            for axis in args.axis:
                name, separator, values = axis.partition("=")
                if not separator or not values:
                    print(f"bad --axis {axis!r}; expected name=v1,v2,...",
                          file=sys.stderr)
                    return 2
                axes[name] = [
                    _parse_axis_value(v) for v in values.split(",")
                ]
            if args.target is None:
                print("--axis needs --target NAME", file=sys.stderr)
                return 2
            payload = {"target": args.target, "axes": axes}
            if args.id is not None:
                payload["name"] = args.id
        elif args.id is not None:
            payload = {"sweep": args.id}
        else:
            print("serve-request sweep needs a named sweep id or "
                  "--target with --axis", file=sys.stderr)
            return 2
        if args.seed is not None:
            payload["seed"] = args.seed
    if args.stream and method == "POST":
        target += "?stream=1"
    try:
        response = http_request(
            args.url, method, target, payload,
            headers=headers, timeout=args.timeout,
        )
    except (ConnectionError, OSError, ValueError) as error:
        print(f"request failed: {error}", file=sys.stderr)
        return 2
    body = response.body.decode("utf-8", "replace")
    sys.stdout.write(body if body.endswith("\n") or not body else body + "\n")
    if response.status == 429:
        print(
            f"shed ({response.headers.get('x-reject-reason', '?')}); "
            f"Retry-After: {response.headers.get('retry-after', '?')}s",
            file=sys.stderr,
        )
        return 3
    if response.status >= 400:
        return 1
    if method == "POST" and not args.stream:
        envelope = json.loads(body)
        print(
            f"{envelope['kind']} {envelope['fingerprint'][:16]} "
            f"cache={response.headers.get('x-cache', '?')}",
            file=sys.stderr,
        )
    return 0


def _command_faults(args: argparse.Namespace) -> int:
    """Run the resilience profile and print the fault/recovery summary.

    Exit codes: 0 success, 2 invalid campaign spec (the message names
    the offending field).
    """
    from repro.core.errors import ConfigurationError
    from repro.observability.export import counter_rows
    from repro.profiles import run

    if args.solver is not None and (code := _select_solver(args.solver)):
        return code
    overrides = {}
    if args.nodes is not None:
        overrides["nodes"] = args.nodes
    if args.node_mtbf is not None:
        overrides["node_mtbf"] = args.node_mtbf
    if args.repair_time is not None:
        overrides["repair_time"] = args.repair_time
    if args.max_jobs is not None:
        overrides["max_jobs"] = args.max_jobs
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        result = run("C16", **overrides)
    except (ConfigurationError, ValueError) as error:
        # An invalid campaign spec (negative MTBF, zero nodes, ...) is a
        # usage error, not a crash: the message already names the
        # offending field and value.
        print(f"invalid fault campaign: {error}", file=sys.stderr)
        return 2
    _print_summary(result)
    counters = Table(
        "Fault and recovery counters", ["metric", "labels", "value"]
    )
    for name, labels, value in sorted(counter_rows(result.telemetry.metrics)):
        if name.startswith(("resilience.", "cluster.jobs", "cluster.nodes")):
            counters.add_row(name, labels or "-", value)
    counters.print()
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    """Run the validation pipeline; exit 0 only if everything holds."""
    from repro.validate import DEFAULT_RTOL, validate

    if args.solver is not None and (code := _select_solver(args.solver)):
        return code
    try:
        report = validate(
            mode="record" if args.record else "check",
            profiles=args.profiles,
            sweeps=args.sweeps,
            golden_dir=args.golden_dir,
            rtol=args.rtol if args.rtol is not None else DEFAULT_RTOL,
            differential=not args.skip_differential,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diversified heterogeneous HPC simulation framework "
                    "(DATE 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("catalog", help="show the device catalog")
    subparsers.add_parser("roadmap", help="show the technology roadmap")
    subparsers.add_parser("experiments", help="list paper experiments")

    report = subparsers.add_parser(
        "report", help="assemble experiment tables into one report"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default="REPORT.md")

    topology = subparsers.add_parser("topology", help="build and measure a topology")
    topology.add_argument("family", choices=sorted(_TOPOLOGY_ARGS))
    topology.add_argument("--groups", type=int, default=9)
    topology.add_argument("--routers", type=int, default=4)
    topology.add_argument("--terminals", type=int, default=4)
    topology.add_argument("--dims", type=int, nargs="+", default=[4, 4])
    topology.add_argument("--k", type=int, default=8)
    topology.add_argument("--leaves", type=int, default=8)
    topology.add_argument("--spines", type=int, default=4)

    trace = subparsers.add_parser(
        "trace", help="run an experiment profile and export a Chrome trace"
    )
    trace.add_argument("experiment", help="experiment id (e.g. F1, C1)")
    trace.add_argument(
        "--output", default=None,
        help="Chrome trace JSON path (default: trace_<id>.json)",
    )
    trace.add_argument(
        "--jsonl", default=None, help="also write a JSONL archival export here"
    )
    trace.add_argument(
        "--top", type=int, default=10, help="how many time-sink rows to print"
    )

    metrics = subparsers.add_parser(
        "metrics", help="run an experiment profile and print metric tables"
    )
    metrics.add_argument("experiment", help="experiment id (e.g. F1, C1)")

    profile = subparsers.add_parser(
        "profile",
        help="run an experiment under the wall-clock profiler and report "
             "where host time went",
    )
    profile.add_argument("experiment", help="experiment id (e.g. F1, C16)")
    profile.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override a profile parameter, e.g. --set max_jobs=50 "
             "(repeatable)",
    )
    profile.add_argument(
        "--output", default=None,
        help="repro.profile/v1 report JSON path "
             "(default: profile_<id>.json)",
    )
    profile.add_argument(
        "--top", type=int, default=10,
        help="how many event types / frames to print and keep in the report",
    )
    profile.add_argument(
        "--sample", action="store_true",
        help="also run the sampling stack profiler alongside the phase "
             "profiler",
    )
    profile.add_argument(
        "--sample-interval", type=float, default=0.005, metavar="SECONDS",
        help="stack sampling interval (default 5 ms)",
    )
    profile.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="write collapsed stacks (flamegraph.pl input) here; "
             "implies --sample",
    )
    profile.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="write a wall-clock Chrome trace of profiled phase scopes here",
    )
    profile.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="write the run's metrics as Prometheus text exposition here",
    )
    profile.add_argument(
        "--solver", default=None, metavar="NAME",
        help="rate solver for fabric phases (reference, numpy); "
             "bit-identical results, different speed",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario sweep over a worker pool"
    )
    sweep.add_argument(
        "name",
        help="named sweep (congestion, smoke, resilience, reliability) "
             "or a label for --target sweeps",
    )
    sweep.add_argument(
        "--target", default=None,
        help="sweep a registered target (e.g. fabric-congestion, profile:C1) "
             "over custom --axis values instead of a named sweep",
    )
    sweep.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="a grid axis for --target sweeps (repeatable)",
    )
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=None)
    sweep.add_argument(
        "--output", default=None, help="write repro.sweep/v1 JSON here"
    )
    sweep.add_argument(
        "--trace-dir", default=None,
        help="write one telemetry JSONL per point under this directory",
    )
    sweep.add_argument(
        "--pivot", nargs=3, metavar=("ROWS", "COLS", "VALUE"), default=None,
        help="print a rows x cols table of mean VALUE instead of all points",
    )
    sweep.add_argument("--verbose", action="store_true")
    sweep.add_argument(
        "--supervised", action="store_true",
        help="force the fault-tolerant executor even with no other "
             "fault-tolerance flags",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget; overdue workers are killed and "
             "the point retried",
    )
    sweep.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per point before it lands in the error ledger "
             "(default 2 when supervised)",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal every completed point to this crash-consistent "
             "JSONL file",
    )
    sweep.add_argument(
        "--resume", action="append", default=None, metavar="PATH",
        help="resume from a journal: skip its completed points, append "
             "new ones (fingerprint matches an uninterrupted run); "
             "repeatable — extra paths (worker-host journals of an "
             "interrupted fleet run) are merged into the first",
    )
    sweep.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject harness faults, e.g. crash:0.1,hang:0.05 "
             "(hang needs --timeout)",
    )
    sweep.add_argument(
        "--strict", action="store_true",
        help="raise on the first exhausted point instead of returning a "
             "partial result with an error ledger",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="show a live progress line (TTY-aware; includes supervisor "
             "retry/crash/timeout counters)",
    )
    sweep.add_argument(
        "--telemetry", action="store_true",
        help="merge every point's telemetry summary into the result "
             "(deterministic at any worker count; stored with --output)",
    )
    sweep.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="write the merged sweep telemetry as Prometheus text "
             "exposition here (implies --telemetry)",
    )
    sweep.add_argument(
        "--solver", default=None, metavar="NAME",
        help="add a single-value solver axis (reference, numpy) to the "
             "grid; rides into every point and the sweep fingerprint",
    )
    sweep.add_argument(
        "--jitter", type=float, default=0.0, metavar="FRACTION",
        help="stretch each retry backoff by up to this fraction, drawn "
             "deterministically per (seed, sweep, point, attempt)",
    )
    sweep.add_argument(
        "--backend", default=None, metavar="NAME",
        help="executor backend: local (default), local-fork, local-spawn "
             "or tcp (shard over `repro sweep-worker` hosts)",
    )
    sweep.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="tcp backend: coordinator listen address (port 0 = "
             "ephemeral; the bound address is printed)",
    )
    sweep.add_argument(
        "--min-hosts", type=int, default=1, metavar="N",
        help="tcp backend: wait for N connected worker hosts before "
             "dispatching any point",
    )
    sweep.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="SECONDS",
        help="tcp backend: expected worker heartbeat cadence",
    )
    sweep.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="tcp backend: declare a silent host dead after this long "
             "(default 10x the heartbeat interval)",
    )
    sweep.add_argument(
        "--wait-for-hosts", type=float, default=60.0, metavar="SECONDS",
        help="tcp backend: give up (FleetError) after this long with "
             "zero usable hosts",
    )
    sweep.add_argument(
        "--no-steal", action="store_true",
        help="tcp backend: disable work stealing (idle hosts reclaiming "
             "unstarted points from loaded ones)",
    )
    sweep.add_argument(
        "--auth-token", default=None, metavar="SECRET",
        help="tcp backend: demand this shared secret in every worker "
             "hello (compared constant-time; mismatches are rejected "
             "with an explicit frame)",
    )

    worker = subparsers.add_parser(
        "sweep-worker",
        help="serve one sweep worker host for a tcp-backend coordinator",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's address (as printed by "
             "`repro sweep --backend tcp`)",
    )
    worker.add_argument(
        "--slots", type=int, default=1, metavar="N",
        help="points this host runs concurrently (one child process each)",
    )
    worker.add_argument(
        "--name", default=None,
        help="host label in fleet telemetry (default hostname:pid)",
    )
    worker.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal completed points locally before sending them — "
             "mergeable into a resume via `repro sweep --resume`",
    )
    worker.add_argument(
        "--trace-dir", default=None,
        help="write one telemetry JSONL per point under this directory",
    )
    worker.add_argument(
        "--preload", action="append", default=[], metavar="MODULE",
        help="import MODULE before serving (registers custom sweep "
             "targets; repeatable)",
    )
    worker.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying the initial dial this long (the coordinator "
             "may boot late)",
    )
    worker.add_argument(
        "--auth-token", default=None, metavar="SECRET",
        help="shared secret sent in the hello frame; must match the "
             "coordinator's --auth-token when the fleet demands one",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-running simulation service (HTTP/JSON API "
             "with fingerprint-keyed caching and admission control)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port; 0 (default) picks an ephemeral port and "
             "prints it",
    )
    serve.add_argument(
        "--store", default=".repro-serve", metavar="DIR",
        help="artefact store directory — cached results and in-flight "
             "sweep journals; point a restarted service at the same "
             "store to resume interrupted sweeps",
    )
    serve.add_argument(
        "--sweep-workers", type=int, default=2, metavar="N",
        help="worker processes per sweep request (default 2)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="concurrent simulation jobs (default 1 — topology/route "
             "caches are shared, which assumes sequential jobs)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help="in-flight cold requests before load shedding with 429 "
             "(default 8)",
    )
    serve.add_argument(
        "--quota", default=None, metavar="RATE:BURST",
        help="per-tenant token-bucket quota, e.g. 1:8 (1 req/s, burst "
             "8) or 0:2 (hard budget of 2); default unlimited",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="age cached artefacts out of the store after this long "
             "(memory entry dropped, disk file unlinked, request "
             "recomputed); default never",
    )
    serve.add_argument(
        "--preload", action="append", default=[], metavar="MODULE",
        help="import MODULE before serving (registers custom sweep "
             "targets; repeatable)",
    )

    serve_request = subparsers.add_parser(
        "serve-request",
        help="send one request to a running serve process",
    )
    serve_request.add_argument(
        "url", help="service base url, e.g. http://127.0.0.1:7750"
    )
    serve_request.add_argument(
        "kind", choices=("profile", "sweep", "health", "metrics"),
        help="what to request",
    )
    serve_request.add_argument(
        "id", nargs="?", default=None,
        help="profile id (C1...) or named sweep (congestion, smoke, "
             "resilience, reliability); optional sweep name with --target",
    )
    serve_request.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="profile parameter override (repeatable)",
    )
    serve_request.add_argument(
        "--target", default=None, metavar="NAME",
        help="custom sweep target (with --axis)",
    )
    serve_request.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="custom sweep axis (repeatable, with --target)",
    )
    serve_request.add_argument(
        "--seed", type=int, default=None, help="sweep seed override"
    )
    serve_request.add_argument(
        "--tenant", default=None,
        help="tenant name for quota accounting (X-Tenant header)",
    )
    serve_request.add_argument(
        "--stream", action="store_true",
        help="stream NDJSON progress events instead of one JSON body",
    )
    serve_request.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="socket timeout (default 300)",
    )

    faults = subparsers.add_parser(
        "faults",
        help="run the fault-injection profile and report goodput/recovery",
    )
    faults.add_argument("--nodes", type=int, default=None)
    faults.add_argument(
        "--node-mtbf", type=float, default=None,
        help="per-node MTBF in seconds (site rate is node_mtbf / nodes)",
    )
    faults.add_argument("--repair-time", type=float, default=None)
    faults.add_argument("--max-jobs", type=int, default=None)
    faults.add_argument("--seed", type=int, default=None)
    faults.add_argument(
        "--solver", default=None, metavar="NAME",
        help="rate solver for any fabric phases (reference, numpy)",
    )

    validate = subparsers.add_parser(
        "validate",
        help="check invariants, differentials and golden fingerprints",
    )
    mode = validate.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="compare against committed goldens (the default)",
    )
    mode.add_argument(
        "--record", action="store_true",
        help="(re)write the golden fingerprints from this build",
    )
    validate.add_argument(
        "--golden-dir", default=None,
        help="golden fingerprint directory (default: tests/golden)",
    )
    validate.add_argument(
        "--profiles", nargs="*", default=None, metavar="ID",
        help="profile subset (default: all; pass none to skip profiles)",
    )
    validate.add_argument(
        "--sweeps", nargs="*", default=None, metavar="NAME",
        help="named-sweep subset (default: all; pass none to skip sweeps)",
    )
    validate.add_argument(
        "--rtol", type=float, default=None,
        help="relative tolerance for numeric drift (default: 1e-6)",
    )
    validate.add_argument(
        "--skip-differential", action="store_true",
        help="skip the differential model checks",
    )
    validate.add_argument(
        "--solver", default=None, metavar="NAME",
        help="run the whole pipeline under this rate solver (reference, "
             "numpy); goldens must still match — solvers are bit-identical",
    )
    return parser


_HANDLERS = {
    "catalog": _command_catalog,
    "topology": _command_topology,
    "roadmap": _command_roadmap,
    "experiments": _command_experiments,
    "report": _command_report,
    "trace": _command_trace,
    "metrics": _command_metrics,
    "profile": _command_profile,
    "sweep": _command_sweep,
    "sweep-worker": _command_sweep_worker,
    "serve": _command_serve,
    "serve-request": _command_serve_request,
    "faults": _command_faults,
    "validate": _command_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
