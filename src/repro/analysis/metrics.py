"""Summary statistics for experiment series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Percentiles:
    """Standard latency percentiles of a sample."""

    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Percentiles":
        if not samples:
            raise ValueError("cannot compute percentiles of an empty sample")
        data = np.asarray(list(samples), dtype=float)
        return cls(
            p50=float(np.percentile(data, 50)),
            p90=float(np.percentile(data, 90)),
            p99=float(np.percentile(data, 99)),
        )


@dataclass(frozen=True)
class SeriesStats:
    """Mean/std/min/max plus percentiles of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: Percentiles

    @property
    def cv(self) -> float:
        """Coefficient of variation (0 for a zero-mean series)."""
        if self.mean == 0:
            return 0.0
        return self.std / abs(self.mean)


def summarize(samples: Sequence[float]) -> SeriesStats:
    """Full summary of a numeric sample."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    data = np.asarray(list(samples), dtype=float)
    return SeriesStats(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        maximum=float(data.max()),
        percentiles=Percentiles.of(samples),
    )
