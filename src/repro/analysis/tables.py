"""ASCII table rendering for benchmark output.

Every benchmark prints the rows/series its experiment reports, in the same
spirit as a paper's table. :class:`Table` keeps it dependency free.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """A simple column-aligned ASCII table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append a row; values are stringified (floats get 4 sig figs)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([_render(v) for v in values])

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the table (with surrounding blank lines)."""
        print()
        print(self.render())
        print()


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render a named (x, y) series as one aligned block."""
    if len(xs) != len(ys):
        raise ValueError("series x and y lengths differ")
    pairs = "  ".join(f"({_render(x)}, {_render(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
