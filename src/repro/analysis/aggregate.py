"""Aggregation of sweep results into tables.

A :class:`~repro.sweep.engine.SweepResult` is a list of flat records
(params + metrics).  These helpers reduce that list the way a paper table
would: group by one axis, average a metric, or pivot two axes against
each other.  Everything here takes plain records (``List[Dict]``) so it
works equally on a live result, a loaded ``repro.sweep/v1`` document or
hand-built rows.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.tables import Table


def _rows_of(result_or_rows) -> List[Dict[str, object]]:
    if hasattr(result_or_rows, "records"):
        return result_or_rows.records()
    return list(result_or_rows)


def group_mean(
    result_or_rows,
    by: Sequence[str],
    value: str,
) -> Dict[Tuple[object, ...], float]:
    """Mean of ``value`` grouped by the ``by`` columns.

    Returns ``{(group key...): mean}``; rows missing the value column are
    skipped, rows missing a group column raise ``KeyError``.
    """
    by = list(by)
    sums: Dict[Tuple[object, ...], float] = {}
    counts: Dict[Tuple[object, ...], int] = {}
    for row in _rows_of(result_or_rows):
        if value not in row:
            continue
        key = tuple(row[column] for column in by)
        sums[key] = sums.get(key, 0.0) + float(row[value])
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


def pivot(
    result_or_rows,
    rows: str,
    columns: str,
    value: str,
    title: str = "",
) -> Table:
    """A ``rows × columns`` table of mean ``value``.

    Cell (r, c) is the mean of ``value`` over every record whose ``rows``
    axis equals r and ``columns`` axis equals c — the shape of most paper
    sweep tables (e.g. topology × congestion policy, mean FCT).  Missing
    cells render as ``-``.
    """
    records = _rows_of(result_or_rows)
    means = group_mean(records, [rows, columns], value)
    row_values: List[object] = []
    column_values: List[object] = []
    for record in records:
        if rows in record and record[rows] not in row_values:
            row_values.append(record[rows])
        if columns in record and record[columns] not in column_values:
            column_values.append(record[columns])
    table = Table(
        title or f"{value} by {rows} x {columns}",
        [rows] + [str(c) for c in column_values],
    )
    for row_value in row_values:
        cells: List[object] = [row_value]
        for column_value in column_values:
            mean = means.get((row_value, column_value))
            cells.append("-" if mean is None else mean)
        table.add_row(*cells)
    return table


def summary_table(result_or_rows, title: str = "sweep results") -> Table:
    """Every record as one table row (columns = union of record keys)."""
    records = _rows_of(result_or_rows)
    if not records:
        raise ValueError("no records to tabulate")
    columns: List[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    table = Table(title, columns)
    for record in records:
        table.add_row(*[record.get(column, "-") for column in columns])
    return table


def speedup(
    baseline: Mapping[str, float], candidate: Mapping[str, float], value: str
) -> float:
    """``baseline[value] / candidate[value]`` (inf when candidate is 0)."""
    base = float(baseline[value])
    cand = float(candidate[value])
    return float("inf") if cand == 0 else base / cand
