"""Metric collection and table rendering for the benchmark harness."""

from repro.analysis.metrics import Percentiles, SeriesStats, summarize
from repro.analysis.tables import Table, format_series

__all__ = [
    "Percentiles",
    "SeriesStats",
    "Table",
    "format_series",
    "summarize",
]
