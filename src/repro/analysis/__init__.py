"""Metric collection, table rendering and sweep aggregation."""

from repro.analysis.aggregate import group_mean, pivot, speedup, summary_table
from repro.analysis.metrics import Percentiles, SeriesStats, summarize
from repro.analysis.tables import Table, format_series

__all__ = [
    "Percentiles",
    "SeriesStats",
    "Table",
    "format_series",
    "group_mean",
    "pivot",
    "speedup",
    "summarize",
    "summary_table",
]
