"""Differential checks: fast paths against independent references.

Each check re-derives an answer two ways — the optimised production path
and an independent (slower, simpler) reference — and demands agreement:

* :func:`check_routes` — :class:`~repro.interconnect.routecache.RouteCache`
  memoised routes vs uncached :mod:`networkx` shortest paths, link
  decompositions vs plain pair-zipping, cached propagation delays vs a
  manual per-edge latency sum.
* :func:`check_collectives` — the alpha-beta-gamma closed forms vs
  step-by-step round loops that accumulate one message at a time.
* :func:`check_checkpointing` — the Young/Daly interval vs a numeric grid
  scan of the first-order Daly expected-time model, for every checkpoint
  target preset.
* :func:`check_sweep` — the fork-pool parallel sweep vs serial execution
  of the same spec (the engine's bit-identical-at-any-worker-count
  contract).
* :func:`check_resume` — a journalled sweep interrupted mid-run (journal
  truncated to a prefix, with a deliberately torn trailing line) and
  resumed via ``run_sweep(..., resume=...)`` vs the uninterrupted run:
  fingerprints must be bit-identical.
* :func:`check_solvers` — the vectorised incremental ``"numpy"`` rate
  solver vs the ``"reference"`` water-filling loop on randomised
  topologies and evolving flow sets (arrivals, completions, reroutes,
  zero-length paths), plus one end-to-end fabric run per topology family:
  rates and completion times agree within tolerance, saturated-link sets
  agree *exactly*.
* :func:`check_distributed` — the ``tcp`` backend sharding the smoke
  sweep over loopback worker hosts vs serial execution: fingerprints
  must be bit-identical (the fleet analogue of :func:`check_sweep`).
* :func:`check_memerrors` — the injected memory-error simulation vs the
  analytic FIT/MTBF closed form: empirical corrected/DUE/silent splits
  within a stated sigma band of
  :func:`~repro.resilience.memerrors.outcome_fractions` under both
  SEC-DED and Chipkill ECC, and FIT-derived checkpoint intervals equal
  to the Young/Daly closed form exactly.

All checks are deterministic (seeded sampling only) and fast enough for
tier-1; :func:`run_differential_checks` bundles them for the CLI.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass
from typing import Callable, List, Tuple

import networkx as nx

from repro.core.rng import RandomSource


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one differential check."""

    name: str
    passed: bool
    comparisons: int
    detail: str

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAILED"
        return (
            f"differential {self.name}: {status} "
            f"({self.comparisons} comparisons) — {self.detail}"
        )


# --- routes ---------------------------------------------------------------------


def check_routes(pairs: int = 48, seed: int = 2024) -> DifferentialResult:
    """Cached routing vs uncached networkx on two topology families."""
    from repro.interconnect.routecache import route_cache_for
    from repro.interconnect.topology import build_topology

    topologies = [
        build_topology(
            "dragonfly", groups=6, routers_per_group=4, terminals=4
        ),
        build_topology("fat-tree", k=4),
    ]
    rng = RandomSource(seed=seed, name="validate/routes")
    comparisons = 0
    failures: List[str] = []
    for topology in topologies:
        cache = route_cache_for(topology)
        graph = topology.graph
        terminals = topology.terminals
        sample = [
            tuple(rng.sample(terminals, 2)) for _ in range(pairs)
        ]
        for source, destination in sample:
            cached = cache.minimal_route(source, destination)
            # Independent reference: a fresh shortest-path computation on
            # the raw graph, no cache involved.
            reference_hops = nx.shortest_path_length(
                graph, source, destination
            )
            comparisons += 1
            if cached[0] != source or cached[-1] != destination:
                failures.append(
                    f"{topology.name}: route {source}->{destination} has "
                    f"endpoints {cached[0]}..{cached[-1]}"
                )
                continue
            if len(cached) - 1 != reference_hops:
                failures.append(
                    f"{topology.name}: cached {source}->{destination} is "
                    f"{len(cached) - 1} hops, networkx says "
                    f"{reference_hops}"
                )
            missing = [
                (u, v) for u, v in zip(cached, cached[1:])
                if not graph.has_edge(u, v)
            ]
            if missing:
                failures.append(
                    f"{topology.name}: cached route uses non-edges "
                    f"{missing}"
                )
            links = cache.links_of(cached)
            if links != list(zip(cached, cached[1:])):
                failures.append(
                    f"{topology.name}: links_of disagrees with "
                    f"pair-zipping for {source}->{destination}"
                )
            delay = cache.propagation_delay(cached)
            reference_delay = sum(
                float(graph.edges[u, v]["latency"])
                for u, v in zip(cached, cached[1:])
            )
            if not math.isclose(
                delay, reference_delay, rel_tol=1e-12, abs_tol=1e-18
            ):
                failures.append(
                    f"{topology.name}: cached delay {delay} != manual sum "
                    f"{reference_delay} for {source}->{destination}"
                )
    detail = (
        f"{len(topologies)} topologies x {pairs} pairs agree with "
        "uncached networkx"
        if not failures
        else "; ".join(failures[:3])
    )
    return DifferentialResult(
        "routes", not failures, comparisons, detail
    )


# --- collectives ----------------------------------------------------------------


def _ring_allreduce_steps(model, message_bytes: float) -> float:
    """Ring all-reduce simulated one step at a time.

    ``p - 1`` reduce-scatter steps (each moves and reduces one chunk) then
    ``p - 1`` all-gather steps (move only).
    """
    p = model.nodes
    if p == 1:
        return 0.0
    chunk = message_bytes / p
    elapsed = 0.0
    for _ in range(p - 1):
        elapsed += model.alpha + chunk * model.beta + chunk * model.gamma
    for _ in range(p - 1):
        elapsed += model.alpha + chunk * model.beta
    return elapsed


def _tree_allreduce_steps(model, message_bytes: float) -> float:
    p = model.nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    elapsed = 0.0
    for _ in range(rounds):  # reduce rounds carry the gamma term
        elapsed += (
            model.alpha + message_bytes * model.beta
            + message_bytes * model.gamma
        )
    for _ in range(rounds):  # gather rounds move data only
        elapsed += model.alpha + message_bytes * model.beta
    return elapsed


def _in_network_allreduce_steps(model, message_bytes: float) -> float:
    p = model.nodes
    if p == 1:
        return 0.0
    depth = max(1, math.ceil(math.log(p, model.switch_radix)))
    elapsed = 0.0
    for _ in range(2 * depth):  # one hop latency up, one down, per level
        elapsed += model.alpha
    wire = 2.0 * message_bytes * model.beta
    switch = message_bytes / model.switch_reduce_rate
    return elapsed + max(wire, switch)


def _broadcast_steps(model, message_bytes: float) -> float:
    if model.nodes == 1:
        return 0.0
    elapsed = 0.0
    for _ in range(math.ceil(math.log2(model.nodes))):
        elapsed += model.alpha + message_bytes * model.beta
    return elapsed


def _ring_exchange_steps(model, message_bytes: float) -> float:
    """Shared reference for all-gather and pairwise all-to-all."""
    if model.nodes == 1:
        return 0.0
    elapsed = 0.0
    for _ in range(model.nodes - 1):
        elapsed += model.alpha + message_bytes * model.beta
    return elapsed


def _barrier_steps(model, _message_bytes: float) -> float:
    if model.nodes == 1:
        return 0.0
    elapsed = 0.0
    for _ in range(math.ceil(math.log2(model.nodes))):
        elapsed += model.alpha
    return elapsed


def check_collectives(rtol: float = 1e-9) -> DifferentialResult:
    """Collective closed forms vs step-by-step round loops."""
    from repro.interconnect.collectives import CollectiveModel

    populations = (1, 2, 3, 4, 7, 8, 16, 64, 100)
    sizes = (0.0, 1e3, 1e6, 1e9)
    checks: List[Tuple[str, Callable, Callable]] = [
        ("allreduce_ring", CollectiveModel.allreduce_ring,
         _ring_allreduce_steps),
        ("allreduce_tree", CollectiveModel.allreduce_tree,
         _tree_allreduce_steps),
        ("allreduce_in_network", CollectiveModel.allreduce_in_network,
         _in_network_allreduce_steps),
        ("broadcast", CollectiveModel.broadcast, _broadcast_steps),
        ("allgather", CollectiveModel.allgather, _ring_exchange_steps),
        ("alltoall", CollectiveModel.alltoall, _ring_exchange_steps),
        ("barrier", lambda model, _n: model.barrier(), _barrier_steps),
    ]
    comparisons = 0
    failures: List[str] = []
    for p in populations:
        model = CollectiveModel(nodes=p)
        for n in sizes:
            for name, closed_form, stepwise in checks:
                closed = closed_form(model, n)
                stepped = stepwise(model, n)
                comparisons += 1
                if not math.isclose(
                    closed, stepped, rel_tol=rtol, abs_tol=1e-15
                ):
                    failures.append(
                        f"{name}(p={p}, n={n}): closed {closed} != "
                        f"stepped {stepped}"
                    )
    detail = (
        f"{len(checks)} collectives x {len(populations)} populations x "
        f"{len(sizes)} sizes agree"
        if not failures
        else "; ".join(failures[:3])
    )
    return DifferentialResult(
        "collectives", not failures, comparisons, detail
    )


# --- checkpointing --------------------------------------------------------------


def check_checkpointing(
    grid_points: int = 241, value_rtol: float = 0.02
) -> DifferentialResult:
    """Young/Daly closed form vs a numeric grid scan, per target preset.

    The Young/Daly interval is a *first-order* optimum, so its argmin can
    sit off the numeric one; what must agree is the achieved expected
    time. The grid spans ``tau* / 6 .. tau* * 6`` geometrically and the
    closed form's value must be within ``value_rtol`` of the grid minimum.
    Also cross-checks :class:`~repro.resilience.recovery.CheckpointPlan`
    against the bare :func:`~repro.scheduling.checkpointing.young_daly_interval`.
    """
    from repro.resilience.recovery import CheckpointPlan
    from repro.scheduling.checkpointing import (
        CheckpointedExecution,
        FailureModel,
        fabric_pm_target,
        local_ssd_target,
        parallel_filesystem_target,
        young_daly_interval,
    )

    failures = FailureModel(node_mtbf=1e6, nodes=32)
    checkpoint_bytes = 2e11
    comparisons = 0
    problems: List[str] = []
    for target in (
        fabric_pm_target(), local_ssd_target(), parallel_filesystem_target()
    ):
        execution = CheckpointedExecution(
            work_time=4e5,
            checkpoint_bytes_per_node=checkpoint_bytes,
            failures=failures,
            target=target,
        )
        optimum = execution.optimal_interval
        closed_value = execution.expected_time()
        low, high = optimum / 6.0, optimum * 6.0
        ratio = (high / low) ** (1.0 / (grid_points - 1))
        grid_minimum = min(
            execution.expected_time(low * ratio**i)
            for i in range(grid_points)
        )
        comparisons += grid_points
        drift = abs(closed_value - grid_minimum) / grid_minimum
        if drift > value_rtol:
            problems.append(
                f"{target.name}: Young/Daly expected time {closed_value} "
                f"is {drift:.2%} off the numeric optimum {grid_minimum}"
            )
        plan_interval = CheckpointPlan.from_target(
            target, checkpoint_bytes, failures
        ).interval
        reference_interval = young_daly_interval(
            failures.system_mtbf, target.checkpoint_time(checkpoint_bytes)
        )
        comparisons += 1
        if not math.isclose(plan_interval, reference_interval, rel_tol=1e-12):
            problems.append(
                f"{target.name}: CheckpointPlan interval {plan_interval} "
                f"!= young_daly_interval {reference_interval}"
            )
    detail = (
        f"3 targets within {value_rtol:.0%} of the numeric optimum over "
        f"{grid_points}-point grids"
        if not problems
        else "; ".join(problems)
    )
    return DifferentialResult(
        "checkpointing", not problems, comparisons, detail
    )


# --- sweep ----------------------------------------------------------------------


def check_sweep(workers: int = 2) -> DifferentialResult:
    """Fork-pool sweep vs serial execution of the same spec."""
    from repro.sweep import named_sweep, run_sweep

    serial = run_sweep(named_sweep("smoke"), workers=1)
    pooled = run_sweep(named_sweep("smoke"), workers=workers)
    serial_print = serial.fingerprint()
    pooled_print = pooled.fingerprint()
    passed = serial_print == pooled_print
    detail = (
        f"smoke sweep fingerprint {serial_print[:12]} identical at 1 and "
        f"{workers} workers"
        if passed
        else (
            f"smoke sweep diverged: serial {serial_print[:12]} vs "
            f"{workers}-worker pool {pooled_print[:12]}"
        )
    )
    return DifferentialResult(
        "sweep-pool", passed, len(serial.points), detail
    )


def check_resume(keep_points: int = 3) -> DifferentialResult:
    """Resumed sweep vs uninterrupted run: fingerprints must be identical.

    Simulates a crash mid-sweep: the smoke sweep runs once with a journal,
    the journal is truncated to its first ``keep_points`` point records
    plus a torn trailing line (exactly what a SIGKILL mid-append leaves),
    and the sweep is resumed from it.  The resumed result must carry every
    point and hash bit-identically to the uninterrupted run.
    """
    import tempfile

    from repro.sweep import named_sweep, run_sweep

    spec = named_sweep("smoke")
    fresh = run_sweep(spec, workers=1)
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as scratch:
        journal_path = pathlib.Path(scratch) / "smoke.journal.jsonl"
        full = run_sweep(spec, workers=1, journal=journal_path)
        lines = journal_path.read_text().splitlines()
        kept = lines[: 1 + keep_points]  # header + first points
        torn = '{"kind": "point", "index": 99, "metr'  # no newline: torn
        journal_path.write_text("\n".join(kept) + "\n" + torn)
        resumed = run_sweep(spec, workers=1, resume=journal_path)
    fresh_print = fresh.fingerprint()
    resumed_print = resumed.fingerprint()
    passed = (
        fresh_print == full.fingerprint() == resumed_print
        and resumed.ok
        and resumed.harness.get("resumed") == float(keep_points)
    )
    detail = (
        f"fingerprint {fresh_print[:12]} identical after resuming from a "
        f"{keep_points}-point journal prefix with a torn tail"
        if passed
        else (
            f"resume diverged: fresh {fresh_print[:12]}, journalled "
            f"{full.fingerprint()[:12]}, resumed {resumed_print[:12]} "
            f"(resumed {resumed.harness.get('resumed')} points, "
            f"{len(resumed.failures)} failures)"
        )
    )
    return DifferentialResult(
        "sweep-resume", passed, len(fresh.points), detail
    )


# --- rate solvers ---------------------------------------------------------------


def check_solvers(
    trials: int = 5, epochs: int = 12, seed: int = 8192, rtol: float = 1e-9
) -> DifferentialResult:
    """Vectorised incremental rate solver vs the reference loop.

    Each trial builds a random small topology, then drives both solvers
    through ``epochs`` evolving flow-set epochs — arrivals, completions,
    re-routes and the occasional zero-length path — exactly the epoch
    stream the incremental incidence must survive.  Per epoch the
    saturated-link sets must agree **exactly** and every rate within
    ``rtol`` (``inf`` must match ``inf``).  One end-to-end
    :class:`~repro.interconnect.fabric.FabricSimulator` run per trial then
    compares completion times over identical traces.
    """
    from repro.core.errors import ConfigurationError
    from repro.interconnect.congestion import congestion_policy
    from repro.interconnect.fabric import FabricSimulator, Flow
    from repro.interconnect.ratesolver import get_solver
    from repro.interconnect.topology import build_topology

    try:
        get_solver("numpy")
    except ConfigurationError:
        return DifferentialResult(
            "solvers", True, 0, "numpy unavailable; vectorised solver skipped"
        )

    specs = [
        ("dragonfly", {"groups": 4, "routers_per_group": 3, "terminals": 2}),
        ("two-tier", {"leaves": 4, "spines": 2, "terminals_per_leaf": 4}),
        ("fat-tree", {"k": 4}),
        ("hyperx", {"dims": (3, 3), "terminals": 2}),
        ("torus", {"dims": (3, 3), "terminals": 1}),
    ]
    rng = RandomSource(seed=seed, name="validate/solvers")
    comparisons = 0
    failures: List[str] = []
    for trial in range(trials):
        kind, kwargs = specs[trial % len(specs)]
        topology = build_topology(kind, **kwargs)
        simulator = FabricSimulator(topology)
        terminals = list(topology.terminals)
        reference = get_solver("reference")
        vectorised = get_solver("numpy")
        reference.bind(simulator._capacities)
        vectorised.bind(simulator._capacities)
        flow_links: dict = {}
        next_id = trial * 10_000
        for epoch in range(epochs):
            for _ in range(rng.integer(1, 6)):
                if rng.uniform(0.0, 1.0) < 0.1:
                    flow_links[next_id] = []  # zero-length path
                else:
                    source, destination = rng.sample(terminals, 2)
                    path = simulator._route(
                        Flow(source=source, destination=destination,
                             size=1e6, flow_id=next_id)
                    )
                    flow_links[next_id] = simulator._links_of(path)
                next_id += 1
            if flow_links and rng.uniform(0.0, 1.0) < 0.5:
                for flow_id in rng.sample(
                    list(flow_links), min(2, len(flow_links))
                ):
                    del flow_links[flow_id]
            if flow_links and rng.uniform(0.0, 1.0) < 0.3:
                victim = rng.choice(list(flow_links))
                flow_links[victim] = list(flow_links[victim])  # re-route
            remaining = None
            if rng.uniform(0.0, 1.0) < 0.6:
                remaining = {
                    flow_id: rng.uniform(0.0, 5e8) for flow_id in flow_links
                }
            epoch_links = dict(flow_links)
            ref_rates, ref_saturated = reference.solve(epoch_links, remaining)
            vec_rates, vec_saturated = vectorised.solve(epoch_links, remaining)
            comparisons += 1
            if ref_saturated != vec_saturated:
                failures.append(
                    f"{kind} epoch {epoch}: saturated sets differ "
                    f"({sorted(ref_saturated ^ vec_saturated)[:2]}...)"
                )
                continue
            if ref_rates.keys() != vec_rates.keys():
                failures.append(f"{kind} epoch {epoch}: rate keys differ")
                continue
            for flow_id, expected in ref_rates.items():
                if not math.isclose(
                    vec_rates[flow_id], expected, rel_tol=rtol
                ):
                    failures.append(
                        f"{kind} epoch {epoch} flow {flow_id}: "
                        f"{vec_rates[flow_id]} != {expected}"
                    )
                    break
        # End-to-end: one fabric run per trial under each solver.
        trace_seed = rng.integer(0, 2**31 - 1)
        results = []
        for solver_name in ("reference", "numpy"):
            trace_rng = RandomSource(seed=trace_seed, name="validate/trace")
            trace = []
            for index in range(24):
                source, destination = trace_rng.sample(terminals, 2)
                trace.append(Flow(
                    source=source, destination=destination, size=1e6,
                    start_time=index * 1e-5, flow_id=900_000 + index,
                ))
            fabric = FabricSimulator(
                topology, congestion=congestion_policy("flow"),
                solver=solver_name,
            )
            results.append(fabric.run(trace))
        comparisons += len(results[0])
        for ref_stat, vec_stat in zip(*results):
            if ref_stat.flow_id != vec_stat.flow_id or not math.isclose(
                ref_stat.completion_time, vec_stat.completion_time,
                rel_tol=rtol,
            ):
                failures.append(
                    f"{kind}: flow {ref_stat.flow_id} completion "
                    f"{vec_stat.completion_time} != {ref_stat.completion_time}"
                )
                break
    detail = (
        f"{trials} topologies x {epochs} incremental epochs + fabric runs "
        "agree (saturated sets exact)"
        if not failures
        else "; ".join(failures[:3])
    )
    return DifferentialResult("solvers", not failures, comparisons, detail)


# --- distributed sweep ----------------------------------------------------------


def _distributed_worker_main(port: int, name: str) -> None:
    """Entry point for a loopback worker host process."""
    import sys

    from repro.sweep.remote_worker import run_worker

    sys.exit(run_worker(f"127.0.0.1:{port}", slots=1, name=name))


def check_distributed(hosts: int = 2) -> DifferentialResult:
    """TCP fleet sweep vs serial execution of the same spec.

    Runs the smoke sweep once serially, then again under
    ``backend="tcp"`` with ``hosts`` loopback worker processes forked the
    moment the coordinator's socket binds (``FleetConfig.on_listen``).
    The sharded run must hash bit-identically to the serial one and the
    coordinator must have seen every host — the distributed form of the
    bit-identical-at-any-worker-count contract.
    """
    import multiprocessing

    from repro.sweep import FleetConfig, named_sweep, run_sweep
    from repro.sweep.backends import FleetError

    spec = named_sweep("smoke")
    serial = run_sweep(spec, workers=1)
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    workers: List[object] = []

    def on_listen(host: str, port: int) -> None:
        for rank in range(hosts):
            # Not daemonic: worker hosts fork their own point children.
            process = context.Process(
                target=_distributed_worker_main,
                args=(port, f"loop{rank}"),
            )
            process.start()
            workers.append(process)

    fleet = FleetConfig(
        listen="127.0.0.1:0", min_hosts=hosts,
        on_listen=on_listen, wait_for_hosts=30.0,
    )
    try:
        sharded = run_sweep(
            spec, backend="tcp", fleet=fleet, timeout=60.0
        )
    except FleetError as error:
        return DifferentialResult(
            "sweep-distributed", False, 0, f"fleet failed to form: {error}"
        )
    finally:
        for process in workers:
            process.join(timeout=10.0)
            if process.is_alive():  # type: ignore[attr-defined]
                process.kill()  # type: ignore[attr-defined]
    serial_print = serial.fingerprint()
    sharded_print = sharded.fingerprint()
    hosts_seen = sharded.harness.get("hosts_seen", 0.0)
    passed = (
        serial_print == sharded_print
        and sharded.ok
        and hosts_seen >= float(hosts)
    )
    detail = (
        f"smoke sweep fingerprint {serial_print[:12]} identical serially "
        f"and sharded over {hosts} tcp hosts"
        if passed
        else (
            f"distributed sweep diverged: serial {serial_print[:12]} vs "
            f"{hosts}-host tcp {sharded_print[:12]} "
            f"(hosts_seen {hosts_seen:g}, {len(sharded.failures)} failures)"
        )
    )
    return DifferentialResult(
        "sweep-distributed", passed, len(serial.points), detail
    )


# --- the serve cache ------------------------------------------------------------


def check_serve() -> DifferentialResult:
    """Cached serve responses vs fresh cold runs of the same request.

    Drives the full in-process service stack (``repro.serve``) and
    asserts the caching contract three ways:

    * a cached response is **byte-identical** to the cold run that
      produced it *and* to a cold run on a second, empty-store service —
      the cache stores exactly what a fresh run would say;
    * requests differing only in spelling — shuffled key order, ``8.0``
      for ``8``, defaults explicit vs omitted, lowercase profile id —
      hit the same cache entry;
    * cache hits perform **zero simulation**: the ``serve.kernel_events``
      counter stands still across hits.
    """
    import tempfile

    from repro.serve import ServeConfig, ServiceApp, ServiceClient

    failures: List[str] = []
    comparisons = 0
    # C8 is event-driven (the discrete-event cluster kernel), so the
    # zero-simulation assertion below has teeth: cold runs move the
    # ``serve.kernel_events`` counter, cache hits must not.
    profile_request = {"profile": "C8", "params": {"max_jobs": 8}}
    respelled = {
        "profile": "c8",
        "params": {
            "seed": 55.0,  # the default, spelled out
            "max_jobs": 8.0,
            "duration": 10000,
        },
    }
    sweep_request = {
        "target": "fabric-congestion",
        "axes": {"topology": ["dragonfly"], "load": [0.5, 0.9],
                 "flows": [12]},
        "seed": 11,
        "name": "serve-differential",
    }
    sweep_respelled = {
        "seed": 11.0,
        "name": "serve-differential",
        "axes": {"flows": [12.0], "load": [0.5, 0.9],
                 "topology": ["dragonfly"]},
        "target": "fabric-congestion",
    }

    with tempfile.TemporaryDirectory() as first_store, \
            tempfile.TemporaryDirectory() as second_store:
        app = ServiceApp(ServeConfig(store=first_store, sweep_workers=1))
        fresh = ServiceApp(ServeConfig(store=second_store, sweep_workers=1))
        try:
            client = ServiceClient(app)
            fresh_client = ServiceClient(fresh)
            for endpoint, cold_payload, hit_payload in (
                ("/v1/profile", profile_request, respelled),
                ("/v1/sweep", sweep_request, sweep_respelled),
            ):
                cold = client.post(endpoint, cold_payload)
                comparisons += 1
                if cold.status != 200 or cold.headers.get("X-Cache") != "miss":
                    failures.append(
                        f"{endpoint}: cold run answered "
                        f"{cold.status}/{cold.headers.get('X-Cache')}"
                    )
                    continue
                events_before = app.counter("serve.kernel_events").total()
                if endpoint == "/v1/profile" and events_before <= 0:
                    failures.append(
                        f"{endpoint}: cold run fired no kernel events — "
                        "the zero-simulation check would be vacuous"
                    )
                cached = client.post(endpoint, hit_payload)
                comparisons += 1
                if cached.headers.get("X-Cache") != "hit":
                    failures.append(
                        f"{endpoint}: respelled request missed the cache "
                        f"({cached.headers.get('X-Cache')})"
                    )
                if cached.body != cold.body:
                    failures.append(
                        f"{endpoint}: cached body differs from the cold run"
                    )
                moved = (
                    app.counter("serve.kernel_events").total()
                    - events_before
                )
                if moved:
                    failures.append(
                        f"{endpoint}: cache hit simulated "
                        f"{moved:g} kernel events (expected 0)"
                    )
                # A second service with an empty store must reproduce the
                # exact bytes cold — the cache never invents anything.
                recomputed = fresh_client.post(endpoint, hit_payload)
                comparisons += 1
                if recomputed.headers.get("X-Cache") != "miss":
                    failures.append(
                        f"{endpoint}: fresh store unexpectedly "
                        f"{recomputed.headers.get('X-Cache')}"
                    )
                if recomputed.body != cold.body:
                    failures.append(
                        f"{endpoint}: fresh cold run bytes differ from "
                        "the cached response"
                    )
        finally:
            app.close()
            fresh.close()
    detail = (
        "cached profile and sweep responses byte-identical to fresh cold "
        "runs; respelled requests share cache entries; hits fire 0 kernel "
        "events"
        if not failures
        else "; ".join(failures[:3])
    )
    return DifferentialResult("serve", not failures, comparisons, detail)


def check_memerrors(
    horizon: float = 5e5, seed: int = 4049, sigmas: float = 6.0
) -> DifferentialResult:
    """Injected memory-error simulation vs the analytic FIT closed form.

    For each ECC policy under test (the SEC-DED default and
    Chipkill-class symbol correction), an accelerated-FIT upset timeline
    is expanded and its empirical corrected/DUE/silent split compared to
    :func:`~repro.resilience.memerrors.outcome_fractions` within
    ``sigmas`` binomial standard deviations (~20k Poisson arrivals per
    policy); the total arrival count must sit within ``sigmas`` Poisson
    standard deviations of ``rate x horizon``.  Also cross-checks the
    FIT->Young/Daly wiring: the checkpoint interval
    :meth:`CheckpointPlan.from_target <repro.resilience.recovery.CheckpointPlan.from_target>`
    derives from :func:`~repro.resilience.memerrors.memory_failure_model`
    must equal the bare closed form to machine precision.
    """
    from repro.resilience.memerrors import (
        CHIPKILL,
        SEC_DED,
        MemoryErrorSpec,
        OUTCOMES,
        ScrubPolicy,
        due_rate,
        effective_mtbf,
        expand_spec,
        memory_failure_model,
        outcome_fractions,
    )
    from repro.resilience.recovery import CheckpointPlan
    from repro.scheduling.checkpointing import (
        fabric_pm_target,
        young_daly_interval,
    )

    comparisons = 0
    problems: List[str] = []
    for ecc in (SEC_DED, CHIPKILL):
        spec = MemoryErrorSpec(
            device="epyc-class-cpu", region="validate",
            capacity_bytes=512e9, fit_per_gib=3e8,
            ecc=ecc, scrub=ScrubPolicy(900.0),
        )
        rng = RandomSource(seed=seed, name=f"validate/memerrors/{ecc.name}")
        timeline = expand_spec(spec, horizon, rng.fork("mem/0"))
        total = len(timeline)
        expected_total = spec.upset_rate() * horizon
        comparisons += 1
        if abs(total - expected_total) > sigmas * math.sqrt(expected_total):
            problems.append(
                f"{ecc.name}: {total} arrivals vs Poisson expectation "
                f"{expected_total:.0f} (> {sigmas:.0f} sigma)"
            )
        analytic = outcome_fractions(spec)
        for outcome in OUTCOMES:
            observed = sum(1 for e in timeline if e.outcome == outcome)
            fraction = analytic[outcome]
            tolerance = (
                sigmas * math.sqrt(max(fraction * (1 - fraction), 0.0) / total)
                + 1.0 / total
            )
            comparisons += 1
            if abs(observed / total - fraction) > tolerance:
                problems.append(
                    f"{ecc.name}: empirical {outcome} fraction "
                    f"{observed / total:.5f} vs closed form {fraction:.5f} "
                    f"(tolerance {tolerance:.5f})"
                )
        # The DUE rate the checkpoint planner consumes must match the
        # empirical kill pressure of the injected stream.
        observed_due = sum(1 for e in timeline if e.outcome == "due")
        expected_due = due_rate(spec) * horizon
        comparisons += 1
        if abs(observed_due - expected_due) > sigmas * math.sqrt(
            max(expected_due, 1.0)
        ):
            problems.append(
                f"{ecc.name}: {observed_due} DUEs vs analytic "
                f"{expected_due:.1f} (> {sigmas:.0f} sigma)"
            )
        # FIT -> effective MTBF -> Young/Daly, exactly.
        footprint = 64e9
        model = memory_failure_model(
            footprint, spec, nodes=16, node_mtbf=5e4
        )
        target = fabric_pm_target()
        plan = CheckpointPlan.from_target(target, 2e11, model)
        reference = young_daly_interval(
            effective_mtbf(footprint, spec, node_mtbf=5e4) / 16.0,
            target.checkpoint_time(2e11),
        )
        comparisons += 1
        if not math.isclose(plan.interval, reference, rel_tol=1e-12):
            problems.append(
                f"{ecc.name}: FIT-derived plan interval {plan.interval} "
                f"!= Young/Daly closed form {reference}"
            )
    detail = (
        f"sec-ded and chipkill outcome splits within {sigmas:.0f} sigma of "
        "the FIT closed form; checkpoint intervals match Young/Daly exactly"
        if not problems
        else "; ".join(problems)
    )
    return DifferentialResult("memerrors", not problems, comparisons, detail)


def run_differential_checks(
    sweep_workers: int = 2,
) -> List[DifferentialResult]:
    """Run every differential check; never raises, returns all results."""
    return [
        check_routes(),
        check_collectives(),
        check_checkpointing(),
        check_memerrors(),
        check_sweep(workers=sweep_workers),
        check_resume(),
        check_solvers(),
        check_distributed(),
        check_serve(),
    ]
