"""The validation orchestrator behind ``python -m repro validate``.

:func:`run_validated` runs one profile with an :class:`InvariantChecker`
wired in: a :class:`_ValidatingTelemetry` subclass intercepts
``bind_simulation`` so the checker's chaining kernel hooks install at the
same moment telemetry's probe does — every profile gets kernel invariants
without the profiles themselves knowing validation exists. Fabric-only
profiles (no simulation) still get the post-run telemetry ledger checks.

:func:`validate` is the full record/check pipeline over all profiles and
named sweeps plus the differential checks, returning a structured
:class:`ValidationReport` the CLI renders and exits on.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.observability import Telemetry
from repro.validate.fingerprint import (
    DEFAULT_RTOL,
    GoldenStore,
    profile_fingerprint,
    sweep_fingerprint,
)
from repro.validate.invariants import InvariantChecker

#: Where committed goldens live, relative to the repository root.
DEFAULT_GOLDEN_DIR = pathlib.Path("tests") / "golden"


class _ValidatingTelemetry(Telemetry):
    """Telemetry that chains invariant hooks onto any simulation it binds.

    ``bind_simulation`` is first-binding-wins in the base class; the
    checker attaches only on the binding that actually took, *after* the
    base installed its ``KernelProbe``, so the invariant hooks wrap the
    probe and both observe every event.
    """

    def __init__(self, checker: InvariantChecker) -> None:
        super().__init__()
        self._checker = checker

    def bind_simulation(self, simulation) -> None:
        if self.simulation is not None:
            return  # base class would no-op too; keep hooks untouched
        super().bind_simulation(simulation)
        self._checker.attach(simulation)


def run_validated(
    profile_id: str, **overrides: object
) -> Tuple[object, InvariantChecker]:
    """Run one profile with invariants armed; returns (result, checker).

    The checker has already run its end-of-run kernel and telemetry
    checks; callers decide between inspecting ``checker.violations`` and
    calling ``checker.assert_clean()``.
    """
    from repro import profiles

    checker = InvariantChecker(name=profile_id.upper())
    telemetry = _ValidatingTelemetry(checker)
    result = profiles.run(profile_id, telemetry, **overrides)
    checker.check_kernel()
    checker.check_telemetry(telemetry, subject=f"{result.experiment_id}")
    return result, checker


@dataclass(frozen=True)
class ValidationEntry:
    """One line of a validation report: a subject and its verdict."""

    kind: str  # "profile" | "sweep" | "differential"
    subject: str
    status: str  # "ok" | "recorded" | "drift" | "violation" | "missing" | "failed"
    details: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "recorded")


@dataclass
class ValidationReport:
    """Everything one ``validate`` invocation concluded."""

    mode: str
    rtol: float
    golden_dir: pathlib.Path
    entries: List[ValidationEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    def render(self) -> str:
        """The human-readable report the CLI prints."""
        lines: List[str] = []
        for entry in self.entries:
            marker = "ok" if entry.ok else entry.status.upper()
            suffix = (
                f" — {entry.details[0]}"
                if entry.ok and entry.details else ""
            )
            lines.append(f"{entry.kind} {entry.subject}: {marker}{suffix}")
            if not entry.ok:
                lines.extend(f"  - {detail}" for detail in entry.details)
        good = sum(1 for e in self.entries if e.ok)
        bad = len(self.entries) - good
        lines.append(
            f"validate: {good} ok, {bad} failing "
            f"[{self.mode} mode, rtol {self.rtol:g}, "
            f"goldens at {self.golden_dir}]"
        )
        return "\n".join(lines)


def _profile_entry(
    profile_id: str, store: GoldenStore, mode: str, rtol: float
) -> ValidationEntry:
    result, checker = run_validated(profile_id)
    if not checker.ok:
        return ValidationEntry(
            "profile", profile_id, "violation",
            tuple(str(v) for v in checker.violations),
        )
    document = profile_fingerprint(result)
    if mode == "record":
        path = store.record(document)
        return ValidationEntry(
            "profile", profile_id, "recorded", (f"wrote {path}",)
        )
    drifts = store.check(document, rtol=rtol)
    if drifts:
        status = "missing" if "no golden recorded" in drifts[0] else "drift"
        return ValidationEntry("profile", profile_id, status, tuple(drifts))
    counters = len(document["counters"])
    metrics = len(document["metrics"])
    return ValidationEntry(
        "profile", profile_id, "ok",
        (f"{metrics} metrics and {counters} counters match golden",),
    )


def _sweep_entry(
    sweep_name: str, store: GoldenStore, mode: str, rtol: float
) -> ValidationEntry:
    from repro.sweep import named_sweep, run_sweep

    result = run_sweep(named_sweep(sweep_name), workers=1)
    document = sweep_fingerprint(result)
    if mode == "record":
        path = store.record(document)
        return ValidationEntry(
            "sweep", sweep_name, "recorded", (f"wrote {path}",)
        )
    drifts = store.check(document, rtol=rtol)
    if drifts:
        status = "missing" if "no golden recorded" in drifts[0] else "drift"
        return ValidationEntry("sweep", sweep_name, status, tuple(drifts))
    return ValidationEntry(
        "sweep", sweep_name, "ok",
        (f"{len(result.points)} points match golden "
         f"(digest {result.fingerprint()[:12]})",),
    )


def validate(
    mode: str = "check",
    profiles: Optional[Sequence[str]] = None,
    sweeps: Optional[Sequence[str]] = None,
    golden_dir=None,
    rtol: float = DEFAULT_RTOL,
    differential: bool = True,
    sweep_workers: int = 2,
) -> ValidationReport:
    """Record or check goldens for profiles and sweeps, plus differentials.

    Parameters
    ----------
    mode:
        ``"check"`` compares against stored goldens; ``"record"``
        (re)writes them. Invariants and differentials run in both modes.
    profiles / sweeps:
        Subjects to cover; ``None`` means every run profile and every
        named sweep. Pass empty sequences to skip a category.
    golden_dir:
        Golden directory (default ``tests/golden``).
    differential:
        Whether to run the differential checks.
    """
    from repro.profiles import PROFILES
    from repro.sweep import NAMED_SWEEPS

    if mode not in ("check", "record"):
        raise ValueError(f"mode must be 'check' or 'record', not {mode!r}")
    profile_ids = (
        sorted(PROFILES) if profiles is None
        else [p.upper() for p in profiles]
    )
    sweep_names = list(NAMED_SWEEPS) if sweeps is None else list(sweeps)
    directory = pathlib.Path(
        golden_dir if golden_dir is not None else DEFAULT_GOLDEN_DIR
    )
    store = GoldenStore(directory)
    report = ValidationReport(mode=mode, rtol=rtol, golden_dir=directory)

    for profile_id in profile_ids:
        report.entries.append(_profile_entry(profile_id, store, mode, rtol))
    for sweep_name in sweep_names:
        report.entries.append(_sweep_entry(sweep_name, store, mode, rtol))
    if differential:
        from repro.validate.differential import run_differential_checks

        for result in run_differential_checks(sweep_workers=sweep_workers):
            report.entries.append(
                ValidationEntry(
                    "differential", result.name,
                    "ok" if result.passed else "failed",
                    (result.detail,),
                )
            )
    return report
