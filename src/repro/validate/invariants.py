"""Runtime invariants: conservation laws checked at run end.

Every simulator in the library obeys laws that hold regardless of
parameters, seeds or faults:

* **kernel** — event time is monotone non-decreasing, the clock never goes
  negative, and the event ledger balances (an observer that saw every
  schedule can never see more fires + cancels than schedules; the live
  count never goes negative).
* **cluster** — ``submitted == completed + dead + in_flight + evacuated``
  (the :func:`~repro.resilience.metrics.conservation` identity), and
  goodput never exceeds utilization.
* **fabric** — per flow, delivered bytes never exceed the flow size and
  finish never precedes start; across the run, bytes offered at admission
  equal bytes delivered plus bytes lost to drops.
* **economics / telemetry** — every counter total is finite and
  non-negative (dollars, joules, bytes — a NaN or negative cost is always
  a bug), and the job/event counter ledgers balance.

:class:`InvariantChecker` collects :class:`Violation` records instead of
raising at the first failure, so one run reports *all* broken laws;
:meth:`InvariantChecker.assert_clean` turns them into a single
:class:`InvariantViolation` (a :class:`~repro.core.errors.SimulationError`).

The kernel checks attach through :class:`KernelInvariantHooks`, which
*chains*: the kernel has a single hooks slot, and telemetry's
:class:`~repro.observability.probes.KernelProbe` usually occupies it, so
the invariant hooks wrap whatever is installed and delegate to it after
checking. Attaching the checker never changes what telemetry observes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.core.events import Event, Simulation, SimulationHooks

#: Slack for floating-point time comparisons (simulated seconds).
TIME_EPSILON = 1e-9

#: Relative slack for floating-point byte conservation across counters.
BYTES_RTOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which law, on what subject, and how."""

    check: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


class InvariantViolation(SimulationError):
    """Raised by :meth:`InvariantChecker.assert_clean` when laws broke."""

    def __init__(self, violations: Iterable[Violation]) -> None:
        self.violations: Tuple[Violation, ...] = tuple(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{lines}"
        )


class KernelInvariantHooks(SimulationHooks):
    """Chaining kernel observer: checks each event, then delegates.

    Wraps whatever hooks were installed before it (usually telemetry's
    ``KernelProbe``) so both observers see every schedule/fire/cancel.
    Violations are recorded on the owning :class:`InvariantChecker`; the
    hot path stays assertion-free so a clean run pays only comparisons.
    """

    def __init__(
        self,
        checker: "InvariantChecker",
        subject: str,
        inner: Optional[SimulationHooks] = None,
    ) -> None:
        self.checker = checker
        self.subject = subject
        self.inner = inner
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.last_fire_time: Optional[float] = None

    def on_schedule(self, simulation: Simulation, event: Event) -> None:
        self.scheduled += 1
        if event.time < simulation.now - TIME_EPSILON:
            self.checker.fail(
                "kernel.causality", self.subject,
                f"event scheduled at t={event.time} behind the clock "
                f"(now={simulation.now})",
            )
        if self.inner is not None:
            self.inner.on_schedule(simulation, event)

    def on_fire_start(self, simulation: Simulation, event: Event) -> None:
        # No invariant to check pre-callback, but the wrapped probe may be
        # a wall-clock profiler that times the callback — keep delegating.
        if self.inner is not None:
            self.inner.on_fire_start(simulation, event)

    def on_fire(self, simulation: Simulation, event: Event) -> None:
        self.fired += 1
        now = simulation.now
        if now < 0.0:
            self.checker.fail(
                "kernel.clock", self.subject, f"clock went negative: {now}"
            )
        if (
            self.last_fire_time is not None
            and now < self.last_fire_time - TIME_EPSILON
        ):
            self.checker.fail(
                "kernel.monotone-time", self.subject,
                f"event fired at t={now} after one at "
                f"t={self.last_fire_time} (time ran backwards)",
            )
        self.last_fire_time = now
        if simulation.pending < 0:
            self.checker.fail(
                "kernel.ledger", self.subject,
                f"live-event count went negative: {simulation.pending}",
            )
        if self.inner is not None:
            self.inner.on_fire(simulation, event)

    def on_cancel(self, simulation: Simulation, event: Event) -> None:
        self.cancelled += 1
        if self.inner is not None:
            self.inner.on_cancel(simulation, event)


class InvariantChecker:
    """Collects conservation-law violations across one run.

    Use :meth:`attach` to chain kernel hooks onto a simulation *before*
    events are scheduled, run the workload, then call the ``check_*``
    methods (or let :func:`repro.validate.runner.run_validated` do it) and
    finally :meth:`assert_clean`.
    """

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self.violations: List[Violation] = []
        self._kernel_hooks: List[Tuple[Simulation, KernelInvariantHooks]] = []

    # --- recording -----------------------------------------------------------

    def fail(self, check: str, subject: str, message: str) -> None:
        """Record one violation (never raises — see :meth:`assert_clean`)."""
        self.violations.append(Violation(check, subject, message))

    @property
    def ok(self) -> bool:
        """``True`` while no invariant has been violated."""
        return not self.violations

    def summary(self) -> str:
        """One line per violation, or a clean bill of health."""
        if self.ok:
            checks = len(self._kernel_hooks)
            return f"{self.name}: all invariants held ({checks} kernel(s))"
        lines = [f"{self.name}: {len(self.violations)} violation(s)"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if any law was broken."""
        if self.violations:
            raise InvariantViolation(self.violations)

    # --- kernel --------------------------------------------------------------

    def attach(
        self, simulation: Simulation, subject: str = "simulation"
    ) -> KernelInvariantHooks:
        """Chain invariant hooks in front of the simulation's observer.

        The previously installed hooks (telemetry's ``KernelProbe`` or
        anything else) keep receiving every callback via delegation.
        """
        hooks = KernelInvariantHooks(self, subject, inner=simulation.hooks)
        simulation.set_hooks(hooks)
        self._kernel_hooks.append((simulation, hooks))
        return hooks

    def check_kernel(self) -> None:
        """End-of-run kernel laws for every attached simulation."""
        for simulation, hooks in self._kernel_hooks:
            if simulation.now < 0.0:
                self.fail(
                    "kernel.clock", hooks.subject,
                    f"final clock is negative: {simulation.now}",
                )
            if simulation.pending < 0:
                self.fail(
                    "kernel.ledger", hooks.subject,
                    f"final live-event count is negative: "
                    f"{simulation.pending}",
                )
            observed = hooks.fired + hooks.cancelled
            if observed > hooks.scheduled:
                self.fail(
                    "kernel.ledger", hooks.subject,
                    f"fired+cancelled ({hooks.fired}+{hooks.cancelled}) "
                    f"exceeds scheduled ({hooks.scheduled}) — events "
                    "materialised out of nowhere",
                )

    # --- cluster -------------------------------------------------------------

    def check_cluster(self, cluster, subject: Optional[str] = None) -> None:
        """Job-ledger conservation and goodput <= utilization for a cluster.

        Generalises :func:`repro.resilience.metrics.check_conservation`:
        instead of raising on the first break it records every broken term.
        """
        from repro.resilience.metrics import conservation

        subject = subject or f"cluster:{cluster.site.name}"
        tally = conservation(cluster)
        balance = (
            tally["completed"] + tally["dead"] + tally["in_flight"]
            + tally["evacuated"]
        )
        if balance != tally["submitted"]:
            self.fail(
                "cluster.conservation", subject,
                f"submitted={tally['submitted']} but completed+dead"
                f"+in_flight+evacuated={balance} ({tally})",
            )
        utilization = cluster.utilization()
        if not 0.0 <= utilization <= 1.0 + TIME_EPSILON:
            self.fail(
                "cluster.utilization", subject,
                f"utilization {utilization} outside [0, 1]",
            )
        makespan = cluster.makespan()
        if makespan > 0:
            goodput = cluster.useful_device_seconds / (
                cluster.nominal_capacity * makespan
            )
            if goodput > utilization + TIME_EPSILON:
                self.fail(
                    "cluster.goodput", subject,
                    f"goodput {goodput} exceeds utilization {utilization} "
                    "(useful work counted that was never run)",
                )
        for label, value in (
            ("useful_device_seconds", cluster.useful_device_seconds),
            ("wasted_device_seconds", cluster.wasted_device_seconds),
        ):
            if value < 0.0 or not math.isfinite(value):
                self.fail(
                    "cluster.accounting", subject,
                    f"{label} is {value} (must be finite and >= 0)",
                )

    # --- fabric --------------------------------------------------------------

    def check_fabric(self, stats, subject: str = "fabric") -> None:
        """Per-flow byte/time laws over a run's ``FlowStats`` list."""
        for flow in stats:
            label = f"{subject}/flow:{flow.flow_id}"
            if flow.delivered_bytes < 0.0:
                self.fail(
                    "fabric.bytes", label,
                    f"delivered {flow.delivered_bytes} bytes (< 0)",
                )
            if flow.delivered_bytes > flow.size * (1.0 + BYTES_RTOL):
                self.fail(
                    "fabric.bytes", label,
                    f"delivered {flow.delivered_bytes} of a "
                    f"{flow.size}-byte flow (over-delivery)",
                )
            if flow.finish_time < flow.start_time - TIME_EPSILON:
                self.fail(
                    "fabric.time", label,
                    f"finished at t={flow.finish_time} before starting "
                    f"at t={flow.start_time}",
                )
            if not flow.dropped and flow.delivered_bytes < flow.size * (
                1.0 - BYTES_RTOL
            ):
                self.fail(
                    "fabric.bytes", label,
                    f"completed flow delivered only {flow.delivered_bytes} "
                    f"of {flow.size} bytes",
                )

    # --- telemetry-level ledgers ---------------------------------------------

    def check_telemetry(
        self, telemetry, subject: str = "telemetry", drained: bool = True
    ) -> None:
        """Counter-level conservation over a run's metrics registry.

        * every counter total (and every labelled value) is finite and
          non-negative — this is the economics law: dollars, joules and
          bytes can never go negative or NaN;
        * ``fabric.flow_bytes_offered == fabric.flow_bytes +
          fabric.flow_bytes_lost`` when the fabric ran;
        * ``sim.events.fired + cancelled <= scheduled``;
        * with ``drained=True`` (a run that completed), every submitted job
          is accounted: ``cluster.jobs.submitted == finished + dead +
          evacuated``.
        """
        registry = telemetry.metrics

        def total(name: str) -> float:
            return registry.get(name).total() if name in registry else 0.0

        for metric in registry:
            if metric.kind != "counter":
                continue
            value = metric.total()
            if not math.isfinite(value) or value < 0.0:
                self.fail(
                    "telemetry.non-negative", f"{subject}/{metric.name}",
                    f"counter total is {value} (must be finite and >= 0)",
                )
                continue
            for labels in metric.label_sets():
                labelled = metric.value(**labels)
                if not math.isfinite(labelled) or labelled < 0.0:
                    self.fail(
                        "telemetry.non-negative",
                        f"{subject}/{metric.name}{labels}",
                        f"counter value is {labelled} "
                        "(must be finite and >= 0)",
                    )

        if "fabric.flow_bytes_offered" in registry:
            offered = total("fabric.flow_bytes_offered")
            settled = total("fabric.flow_bytes") + total(
                "fabric.flow_bytes_lost"
            )
            if abs(offered - settled) > BYTES_RTOL * max(
                offered, settled, 1.0
            ):
                self.fail(
                    "fabric.conservation", subject,
                    f"bytes offered ({offered}) != delivered + lost "
                    f"({settled}) — "
                    f"{abs(offered - settled)} bytes unaccounted",
                )

        if "sim.events.scheduled" in registry:
            scheduled = total("sim.events.scheduled")
            settled_events = total("sim.events.fired") + total(
                "sim.events.cancelled"
            )
            if settled_events > scheduled:
                self.fail(
                    "kernel.ledger", subject,
                    f"fired+cancelled counters ({settled_events}) exceed "
                    f"scheduled ({scheduled})",
                )

        if drained and "cluster.jobs.submitted" in registry:
            submitted = total("cluster.jobs.submitted")
            settled_jobs = (
                total("cluster.jobs.finished")
                + total("cluster.jobs.dead")
                + total("cluster.jobs.evacuated")
            )
            if submitted != settled_jobs:
                self.fail(
                    "cluster.conservation", subject,
                    f"cluster.jobs.submitted ({submitted}) != finished + "
                    f"dead + evacuated ({settled_jobs}) after the run "
                    "drained",
                )
