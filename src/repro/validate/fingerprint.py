"""Golden-result fingerprints: tolerance-aware drift detection.

A *fingerprint* is a small JSON document (``repro.validate/v1``) capturing
everything deterministic about one run — the summary metrics and every
counter total for a profile; per-point params, metrics and counters for a
sweep. Fingerprints recorded from a known-good build live in
``tests/golden/`` and every later build is compared against them:

* comparisons are **tolerance-aware** — numbers may drift by ``rtol``
  before they count, so harmless float reassociation across platforms
  passes while a changed answer fails;
* mismatches produce **drift-explaining messages** (which key, golden vs
  current value, by how much) instead of a bare hash inequality, so the
  first question after a red check — "what actually changed?" — is
  answered by the failure itself.

:class:`GoldenStore` is the directory-backed record/load/check API used by
``python -m repro validate`` and the tier-1 golden tests.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
import pathlib
from typing import Dict, List, Mapping, Optional, Union

from repro.core.atomicio import atomic_write_text

#: Fingerprint document schema identifier.
SCHEMA = "repro.validate/v1"

#: Canonical serve-request schema identifier (the cache-key form).
REQUEST_SCHEMA = "repro.serve.request/v1"

#: Default relative tolerance for numeric comparisons. Runs are seeded and
#: deterministic, so this only needs to absorb cross-platform libm and
#: reassociation noise — far below any real behaviour change.
DEFAULT_RTOL = 1e-6

#: Absolute floor so comparisons against zero do not demand exact zeros.
DEFAULT_ATOL = 1e-12


def profile_fingerprint(result) -> Dict[str, object]:
    """The ``repro.validate/v1`` document for one ``ProfileResult``.

    Captures the numeric summary metrics and every counter total from the
    run's telemetry — the same observable surface the sweep engine hashes,
    so any behaviour change a sweep would notice, a golden notices too.
    """
    counters = {
        metric.name: float(metric.total())
        for metric in result.telemetry.metrics
        if metric.kind == "counter"
    }
    return {
        "schema": SCHEMA,
        "kind": "profile",
        "id": result.experiment_id,
        "title": result.title,
        "params": {k: repr(v) for k, v in result.params.items()},
        "metrics": dict(result.metrics),
        "counters": counters,
    }


def sweep_fingerprint(result) -> Dict[str, object]:
    """The ``repro.validate/v1`` document for one ``SweepResult``.

    Stores the sweep's exact digest for reference plus the full per-point
    payload, so a drift report can say *which point, which metric*.
    """
    return {
        "schema": SCHEMA,
        "kind": "sweep",
        "id": result.name,
        "target": result.target,
        "seed": result.seed,
        "digest": result.fingerprint(),
        "points": [
            {
                "index": point.index,
                "params": {k: repr(v) for k, v in point.params.items()},
                "metrics": dict(point.metrics),
                "counters": dict(point.counters),
            }
            for point in result.points
        ],
    }


def _close(golden: float, current: float, rtol: float) -> bool:
    return abs(golden - current) <= DEFAULT_ATOL + rtol * max(
        abs(golden), abs(current)
    )


def _numeric_drifts(
    prefix: str,
    golden: Dict[str, float],
    current: Dict[str, float],
    rtol: float,
) -> List[str]:
    """Key-by-key comparison of two name -> number maps."""
    messages: List[str] = []
    for key in sorted(set(golden) - set(current)):
        messages.append(
            f"{prefix}[{key!r}]: in golden ({golden[key]!r}) but missing "
            "from the current run"
        )
    for key in sorted(set(current) - set(golden)):
        messages.append(
            f"{prefix}[{key!r}]: new in the current run ({current[key]!r}), "
            "absent from golden — re-record if intentional"
        )
    for key in sorted(set(golden) & set(current)):
        g, c = float(golden[key]), float(current[key])
        if not _close(g, c, rtol):
            scale = max(abs(g), abs(c), DEFAULT_ATOL)
            drift = abs(g - c) / scale
            messages.append(
                f"{prefix}[{key!r}]: golden {g!r} -> current {c!r} "
                f"(rel drift {drift:.3e} > rtol {rtol:g})"
            )
    return messages


def _exact_drifts(
    prefix: str, golden: Dict[str, str], current: Dict[str, str]
) -> List[str]:
    """Exact comparison for repr-encoded parameter maps."""
    messages: List[str] = []
    for key in sorted(set(golden) | set(current)):
        g, c = golden.get(key), current.get(key)
        if g != c:
            messages.append(
                f"{prefix}[{key!r}]: golden {g!r} -> current {c!r}"
            )
    return messages


def compare_fingerprints(
    golden: Dict[str, object],
    current: Dict[str, object],
    rtol: float = DEFAULT_RTOL,
) -> List[str]:
    """Every way ``current`` drifted from ``golden``, as readable messages.

    An empty list means the run matches the golden within tolerance.
    Structural fields (schema, kind, id, params) compare exactly; metric
    and counter values compare within ``rtol``.
    """
    messages: List[str] = []
    for field in ("schema", "kind", "id"):
        if golden.get(field) != current.get(field):
            messages.append(
                f"{field}: golden {golden.get(field)!r} != current "
                f"{current.get(field)!r}"
            )
    if messages:
        return messages  # structurally different documents; stop here

    messages.extend(
        _exact_drifts("params", golden.get("params", {}),
                      current.get("params", {}))
    )
    if golden["kind"] == "profile":
        messages.extend(
            _numeric_drifts("metrics", golden.get("metrics", {}),
                            current.get("metrics", {}), rtol)
        )
        messages.extend(
            _numeric_drifts("counters", golden.get("counters", {}),
                            current.get("counters", {}), rtol)
        )
        return messages

    golden_points = golden.get("points", [])
    current_points = current.get("points", [])
    if len(golden_points) != len(current_points):
        messages.append(
            f"points: golden has {len(golden_points)}, current has "
            f"{len(current_points)}"
        )
        return messages
    for g_point, c_point in zip(golden_points, current_points):
        index = g_point.get("index")
        prefix = f"point[{index}]"
        if c_point.get("index") != index:
            messages.append(
                f"{prefix}: index changed to {c_point.get('index')}"
            )
            continue
        messages.extend(
            _exact_drifts(f"{prefix}.params", g_point.get("params", {}),
                          c_point.get("params", {}))
        )
        messages.extend(
            _numeric_drifts(f"{prefix}.metrics", g_point.get("metrics", {}),
                            c_point.get("metrics", {}), rtol)
        )
        messages.extend(
            _numeric_drifts(f"{prefix}.counters",
                            g_point.get("counters", {}),
                            c_point.get("counters", {}), rtol)
        )
    return messages


class GoldenStore:
    """Directory of golden fingerprints, one JSON file per subject.

    Files are named ``<kind>_<id>.json`` (``profile_C1.json``,
    ``sweep_smoke.json``) and hold one ``repro.validate/v1`` document,
    pretty-printed with sorted keys so diffs in review stay readable.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)

    def path_for(self, kind: str, subject_id: str) -> pathlib.Path:
        return self.directory / f"{kind}_{subject_id}.json"

    def record(self, document: Dict[str, object]) -> pathlib.Path:
        """Write (or overwrite) the golden for one document."""
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"refusing to record non-{SCHEMA} document: "
                f"{document.get('schema')!r}"
            )
        path = self.path_for(str(document["kind"]), str(document["id"]))
        self.directory.mkdir(parents=True, exist_ok=True)
        # Atomic: a crash mid-record must never truncate a golden that
        # every later build would then fail to load.
        atomic_write_text(
            path, json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        return path

    @staticmethod
    def _load_file(path: pathlib.Path) -> Dict[str, object]:
        """Parse one golden file, raising a named error on corruption."""
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: corrupt golden fingerprint (invalid JSON: "
                f"{error}) — delete it and re-record"
            ) from None
        if not isinstance(document, dict):
            raise ValueError(
                f"{path}: expected a JSON object, found "
                f"{type(document).__name__}"
            )
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: expected schema {SCHEMA!r}, found "
                f"{document.get('schema')!r}"
            )
        for field in ("kind", "id"):
            if field not in document:
                raise ValueError(
                    f"{path}: missing required field {field!r}"
                )
        subjects = [("", document)] + [
            (f"points[{position}].", point)
            for position, point in enumerate(document.get("points", []))
        ]
        for prefix, holder in subjects:
            for section in ("metrics", "counters"):
                for key, value in holder.get(section, {}).items():
                    if not isinstance(
                        value, (int, float)
                    ) or not math.isfinite(float(value)):
                        raise ValueError(
                            f"{path}: {prefix}{section}[{key!r}] is not a "
                            f"finite number: {value!r}"
                        )
        return document

    def load(
        self, kind: str, subject_id: str
    ) -> Optional[Dict[str, object]]:
        """The stored golden document, or ``None`` if never recorded.

        A file that exists but fails to parse (truncated write from a
        crashed recorder, hand-edit gone wrong, NaN values) raises a
        ``ValueError`` naming the path rather than mis-comparing.
        """
        path = self.path_for(kind, subject_id)
        if not path.is_file():
            return None
        return self._load_file(path)

    def documents(self) -> List[Dict[str, object]]:
        """Every stored golden, sorted by filename."""
        if not self.directory.is_dir():
            return []
        return [
            self._load_file(path)
            for path in sorted(self.directory.glob("*.json"))
        ]

    def check(
        self, document: Dict[str, object], rtol: float = DEFAULT_RTOL
    ) -> List[str]:
        """Drift messages for ``document`` against its stored golden."""
        golden = self.load(str(document["kind"]), str(document["id"]))
        if golden is None:
            return [
                f"no golden recorded for {document['kind']} "
                f"{document['id']!r} under {self.directory} — run "
                "`python -m repro validate --record` on a known-good build"
            ]
        return compare_fingerprints(golden, document, rtol=rtol)


# ---------------------------------------------------------------------------
# Canonical serve requests (``repro.serve.request/v1``)
# ---------------------------------------------------------------------------
#
# ``python -m repro serve`` caches completed artefacts keyed by a hash of
# the *request*, so two requests that mean the same thing must hash the
# same: ``{"aggressors": 8}`` vs ``{"aggressors": 8.0}``, shuffled key
# order, defaults spelled out vs omitted. ``canonical_request`` maps every
# equivalent spelling onto one normal form, and — critically — the service
# *executes* from that same normal form, so the hash can never disagree
# with what actually ran.

#: Top-level request keys that carry transport concerns, not meaning.
#: They never influence the fingerprint.
_TRANSPORT_KEYS = frozenset({"schema", "kind", "tenant", "stream"})

#: Largest integer exactly representable as a float; integral floats
#: beyond it are left as floats rather than silently rounded.
_MAX_SAFE_INT = 2 ** 53

_PROFILE_DEFAULTS_CACHE: Dict[str, Dict[str, object]] = {}


def profile_defaults(profile_id: str) -> Dict[str, object]:
    """The requestable parameters of a profile, with their defaults.

    A parameter is requestable iff it has a default in the profile's
    signature (positional infrastructure arguments such as ``telemetry``
    are wired by the runner, never by a request). Signatures are memoised
    so the serve hot path does not pay ``inspect`` per request.
    """
    key = str(profile_id).upper()
    cached = _PROFILE_DEFAULTS_CACHE.get(key)
    if cached is None:
        from repro import profiles

        try:
            function = profiles.PROFILES[key]
        except KeyError:
            raise ValueError(
                f"unknown profile {profile_id!r}; choose from "
                f"{', '.join(sorted(profiles.PROFILES))}"
            ) from None
        cached = {
            name: parameter.default
            for name, parameter in inspect.signature(
                function
            ).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }
        _PROFILE_DEFAULTS_CACHE[key] = cached
    return dict(cached)


def _canonical_value(value: object, where: str) -> object:
    """One JSON-native normal form for a parameter value.

    Integral floats collapse to int (``8.0`` -> ``8``) so JSON float
    formatting cannot split the cache; bools stay bools (checked before
    int — ``True`` must not become ``1``); non-finite floats are rejected
    because they cannot round-trip through JSON.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"{where}: non-finite float {value!r}")
        if value.is_integer() and abs(value) <= _MAX_SAFE_INT:
            return int(value)
        return value
    if isinstance(value, (list, tuple)):
        return [
            _canonical_value(item, f"{where}[{index}]")
            for index, item in enumerate(value)
        ]
    if isinstance(value, Mapping):
        return {
            str(key): _canonical_value(value[key], f"{where}[{key!r}]")
            for key in sorted(value, key=str)
        }
    raise ValueError(
        f"{where}: unsupported value type {type(value).__name__!r} "
        f"({value!r}) — requests are JSON documents"
    )


def _reject_unknown_keys(payload: Mapping, allowed: frozenset) -> None:
    unknown = sorted(set(map(str, payload)) - allowed - _TRANSPORT_KEYS)
    if unknown:
        raise ValueError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _canonical_profile_request(payload: Mapping) -> Dict[str, object]:
    _reject_unknown_keys(payload, frozenset({"profile", "params"}))
    profile_id = str(payload["profile"]).upper()
    defaults = profile_defaults(profile_id)

    raw_params = payload.get("params") or {}
    if not isinstance(raw_params, Mapping):
        raise ValueError(
            f"params: expected an object, found "
            f"{type(raw_params).__name__}"
        )
    unknown = sorted(set(map(str, raw_params)) - set(defaults))
    if unknown:
        raise ValueError(
            f"profile {profile_id} has no parameter(s) "
            f"{', '.join(unknown)} (requestable: "
            f"{', '.join(sorted(defaults))})"
        )
    # Resolve *every* parameter — explicit or defaulted — through the
    # same normalisation, so "default spelled out" and "default omitted"
    # are literally the same document.
    params = {
        name: _canonical_value(
            raw_params.get(name, default), f"params[{name}]"
        )
        for name, default in defaults.items()
    }
    return {
        "schema": REQUEST_SCHEMA,
        "kind": "profile",
        "profile": profile_id,
        "params": {name: params[name] for name in sorted(params)},
    }


def _canonical_sweep_request(payload: Mapping) -> Dict[str, object]:
    if "sweep" in payload:
        _reject_unknown_keys(payload, frozenset({"sweep", "seed"}))
        from repro.sweep import named_sweep

        seed = payload.get("seed")
        try:
            spec = named_sweep(
                str(payload["sweep"]),
                seed=None if seed is None else int(seed),
            )
        except KeyError as error:
            raise ValueError(str(error.args[0])) from None
        name, target, seed = spec.name, spec.target, spec.seed
        axes = spec.grid.axes
    else:
        _reject_unknown_keys(
            payload, frozenset({"target", "axes", "seed", "name"})
        )
        target = str(payload["target"])
        axes = payload.get("axes")
        if not isinstance(axes, Mapping) or not axes:
            raise ValueError(
                "axes: expected a non-empty object of "
                "axis name -> list of values"
            )
        name = str(payload.get("name") or target)
        seed = int(payload.get("seed", 0))

    from repro.sweep import resolve_target

    try:
        resolve_target(target)
    except KeyError as error:
        raise ValueError(str(error.args[0])) from None

    canonical_axes: Dict[str, List[object]] = {}
    for axis in sorted(map(str, axes)):
        values = axes[axis]
        if isinstance(values, (str, bytes)) or not hasattr(
            values, "__iter__"
        ):
            raise ValueError(
                f"axes[{axis!r}]: expected a list of values, found "
                f"{values!r}"
            )
        values = list(values)
        if not values:
            raise ValueError(f"axes[{axis!r}]: empty axis")
        # Value order stays significant (it fixes the enumeration order
        # and therefore point identity); only axis *names* are sorted.
        canonical_axes[axis] = [
            _canonical_value(value, f"axes[{axis!r}][{index}]")
            for index, value in enumerate(values)
        ]
    return {
        "schema": REQUEST_SCHEMA,
        "kind": "sweep",
        "name": name,
        "target": target,
        "seed": int(seed),
        "axes": canonical_axes,
    }


def canonical_request(payload: Mapping) -> Dict[str, object]:
    """The ``repro.serve.request/v1`` normal form of a request payload.

    Accepts raw client payloads and already-canonical documents alike
    (canonicalisation is idempotent). Profile requests carry ``profile``
    (+ optional ``params``); sweep requests carry either ``sweep`` (a
    named sweep, + optional ``seed``) or ``target``/``axes``
    (+ optional ``seed``/``name``). Everything invalid — unknown
    profile, unknown parameter, empty axis, non-JSON value — raises
    ``ValueError`` with the offending field named.

    The service executes from the canonical form (see
    ``repro.sweep.spec_from_request``), so hash and execution cannot
    disagree.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"request: expected a JSON object, found "
            f"{type(payload).__name__}"
        )
    has_profile = "profile" in payload
    has_sweep = "sweep" in payload or "target" in payload
    if has_profile and has_sweep:
        raise ValueError(
            "request mixes profile and sweep fields — send exactly one "
            "of 'profile', 'sweep', or 'target'"
        )
    if has_profile:
        return _canonical_profile_request(payload)
    if has_sweep:
        return _canonical_sweep_request(payload)
    raise ValueError(
        "request needs one of 'profile' (run a profile), 'sweep' "
        "(a named sweep), or 'target' + 'axes' (a custom sweep)"
    )


def request_fingerprint(payload: Mapping) -> str:
    """The cache key for a request: sha256 of its canonical form.

    Every spelling of the same request — shuffled keys, ``8.0`` for
    ``8``, defaults omitted or explicit — produces the same digest;
    any semantic change produces a different one.
    """
    canonical = canonical_request(payload)
    encoded = json.dumps(
        canonical, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
