"""Golden-result fingerprints: tolerance-aware drift detection.

A *fingerprint* is a small JSON document (``repro.validate/v1``) capturing
everything deterministic about one run — the summary metrics and every
counter total for a profile; per-point params, metrics and counters for a
sweep. Fingerprints recorded from a known-good build live in
``tests/golden/`` and every later build is compared against them:

* comparisons are **tolerance-aware** — numbers may drift by ``rtol``
  before they count, so harmless float reassociation across platforms
  passes while a changed answer fails;
* mismatches produce **drift-explaining messages** (which key, golden vs
  current value, by how much) instead of a bare hash inequality, so the
  first question after a red check — "what actually changed?" — is
  answered by the failure itself.

:class:`GoldenStore` is the directory-backed record/load/check API used by
``python -m repro validate`` and the tier-1 golden tests.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Optional, Union

from repro.core.atomicio import atomic_write_text

#: Fingerprint document schema identifier.
SCHEMA = "repro.validate/v1"

#: Default relative tolerance for numeric comparisons. Runs are seeded and
#: deterministic, so this only needs to absorb cross-platform libm and
#: reassociation noise — far below any real behaviour change.
DEFAULT_RTOL = 1e-6

#: Absolute floor so comparisons against zero do not demand exact zeros.
DEFAULT_ATOL = 1e-12


def profile_fingerprint(result) -> Dict[str, object]:
    """The ``repro.validate/v1`` document for one ``ProfileResult``.

    Captures the numeric summary metrics and every counter total from the
    run's telemetry — the same observable surface the sweep engine hashes,
    so any behaviour change a sweep would notice, a golden notices too.
    """
    counters = {
        metric.name: float(metric.total())
        for metric in result.telemetry.metrics
        if metric.kind == "counter"
    }
    return {
        "schema": SCHEMA,
        "kind": "profile",
        "id": result.experiment_id,
        "title": result.title,
        "params": {k: repr(v) for k, v in result.params.items()},
        "metrics": dict(result.metrics),
        "counters": counters,
    }


def sweep_fingerprint(result) -> Dict[str, object]:
    """The ``repro.validate/v1`` document for one ``SweepResult``.

    Stores the sweep's exact digest for reference plus the full per-point
    payload, so a drift report can say *which point, which metric*.
    """
    return {
        "schema": SCHEMA,
        "kind": "sweep",
        "id": result.name,
        "target": result.target,
        "seed": result.seed,
        "digest": result.fingerprint(),
        "points": [
            {
                "index": point.index,
                "params": {k: repr(v) for k, v in point.params.items()},
                "metrics": dict(point.metrics),
                "counters": dict(point.counters),
            }
            for point in result.points
        ],
    }


def _close(golden: float, current: float, rtol: float) -> bool:
    return abs(golden - current) <= DEFAULT_ATOL + rtol * max(
        abs(golden), abs(current)
    )


def _numeric_drifts(
    prefix: str,
    golden: Dict[str, float],
    current: Dict[str, float],
    rtol: float,
) -> List[str]:
    """Key-by-key comparison of two name -> number maps."""
    messages: List[str] = []
    for key in sorted(set(golden) - set(current)):
        messages.append(
            f"{prefix}[{key!r}]: in golden ({golden[key]!r}) but missing "
            "from the current run"
        )
    for key in sorted(set(current) - set(golden)):
        messages.append(
            f"{prefix}[{key!r}]: new in the current run ({current[key]!r}), "
            "absent from golden — re-record if intentional"
        )
    for key in sorted(set(golden) & set(current)):
        g, c = float(golden[key]), float(current[key])
        if not _close(g, c, rtol):
            scale = max(abs(g), abs(c), DEFAULT_ATOL)
            drift = abs(g - c) / scale
            messages.append(
                f"{prefix}[{key!r}]: golden {g!r} -> current {c!r} "
                f"(rel drift {drift:.3e} > rtol {rtol:g})"
            )
    return messages


def _exact_drifts(
    prefix: str, golden: Dict[str, str], current: Dict[str, str]
) -> List[str]:
    """Exact comparison for repr-encoded parameter maps."""
    messages: List[str] = []
    for key in sorted(set(golden) | set(current)):
        g, c = golden.get(key), current.get(key)
        if g != c:
            messages.append(
                f"{prefix}[{key!r}]: golden {g!r} -> current {c!r}"
            )
    return messages


def compare_fingerprints(
    golden: Dict[str, object],
    current: Dict[str, object],
    rtol: float = DEFAULT_RTOL,
) -> List[str]:
    """Every way ``current`` drifted from ``golden``, as readable messages.

    An empty list means the run matches the golden within tolerance.
    Structural fields (schema, kind, id, params) compare exactly; metric
    and counter values compare within ``rtol``.
    """
    messages: List[str] = []
    for field in ("schema", "kind", "id"):
        if golden.get(field) != current.get(field):
            messages.append(
                f"{field}: golden {golden.get(field)!r} != current "
                f"{current.get(field)!r}"
            )
    if messages:
        return messages  # structurally different documents; stop here

    messages.extend(
        _exact_drifts("params", golden.get("params", {}),
                      current.get("params", {}))
    )
    if golden["kind"] == "profile":
        messages.extend(
            _numeric_drifts("metrics", golden.get("metrics", {}),
                            current.get("metrics", {}), rtol)
        )
        messages.extend(
            _numeric_drifts("counters", golden.get("counters", {}),
                            current.get("counters", {}), rtol)
        )
        return messages

    golden_points = golden.get("points", [])
    current_points = current.get("points", [])
    if len(golden_points) != len(current_points):
        messages.append(
            f"points: golden has {len(golden_points)}, current has "
            f"{len(current_points)}"
        )
        return messages
    for g_point, c_point in zip(golden_points, current_points):
        index = g_point.get("index")
        prefix = f"point[{index}]"
        if c_point.get("index") != index:
            messages.append(
                f"{prefix}: index changed to {c_point.get('index')}"
            )
            continue
        messages.extend(
            _exact_drifts(f"{prefix}.params", g_point.get("params", {}),
                          c_point.get("params", {}))
        )
        messages.extend(
            _numeric_drifts(f"{prefix}.metrics", g_point.get("metrics", {}),
                            c_point.get("metrics", {}), rtol)
        )
        messages.extend(
            _numeric_drifts(f"{prefix}.counters",
                            g_point.get("counters", {}),
                            c_point.get("counters", {}), rtol)
        )
    return messages


class GoldenStore:
    """Directory of golden fingerprints, one JSON file per subject.

    Files are named ``<kind>_<id>.json`` (``profile_C1.json``,
    ``sweep_smoke.json``) and hold one ``repro.validate/v1`` document,
    pretty-printed with sorted keys so diffs in review stay readable.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)

    def path_for(self, kind: str, subject_id: str) -> pathlib.Path:
        return self.directory / f"{kind}_{subject_id}.json"

    def record(self, document: Dict[str, object]) -> pathlib.Path:
        """Write (or overwrite) the golden for one document."""
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"refusing to record non-{SCHEMA} document: "
                f"{document.get('schema')!r}"
            )
        path = self.path_for(str(document["kind"]), str(document["id"]))
        self.directory.mkdir(parents=True, exist_ok=True)
        # Atomic: a crash mid-record must never truncate a golden that
        # every later build would then fail to load.
        atomic_write_text(
            path, json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        return path

    @staticmethod
    def _load_file(path: pathlib.Path) -> Dict[str, object]:
        """Parse one golden file, raising a named error on corruption."""
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: corrupt golden fingerprint (invalid JSON: "
                f"{error}) — delete it and re-record"
            ) from None
        if not isinstance(document, dict):
            raise ValueError(
                f"{path}: expected a JSON object, found "
                f"{type(document).__name__}"
            )
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: expected schema {SCHEMA!r}, found "
                f"{document.get('schema')!r}"
            )
        for field in ("kind", "id"):
            if field not in document:
                raise ValueError(
                    f"{path}: missing required field {field!r}"
                )
        subjects = [("", document)] + [
            (f"points[{position}].", point)
            for position, point in enumerate(document.get("points", []))
        ]
        for prefix, holder in subjects:
            for section in ("metrics", "counters"):
                for key, value in holder.get(section, {}).items():
                    if not isinstance(
                        value, (int, float)
                    ) or not math.isfinite(float(value)):
                        raise ValueError(
                            f"{path}: {prefix}{section}[{key!r}] is not a "
                            f"finite number: {value!r}"
                        )
        return document

    def load(
        self, kind: str, subject_id: str
    ) -> Optional[Dict[str, object]]:
        """The stored golden document, or ``None`` if never recorded.

        A file that exists but fails to parse (truncated write from a
        crashed recorder, hand-edit gone wrong, NaN values) raises a
        ``ValueError`` naming the path rather than mis-comparing.
        """
        path = self.path_for(kind, subject_id)
        if not path.is_file():
            return None
        return self._load_file(path)

    def documents(self) -> List[Dict[str, object]]:
        """Every stored golden, sorted by filename."""
        if not self.directory.is_dir():
            return []
        return [
            self._load_file(path)
            for path in sorted(self.directory.glob("*.json"))
        ]

    def check(
        self, document: Dict[str, object], rtol: float = DEFAULT_RTOL
    ) -> List[str]:
        """Drift messages for ``document`` against its stored golden."""
        golden = self.load(str(document["kind"]), str(document["id"]))
        if golden is None:
            return [
                f"no golden recorded for {document['kind']} "
                f"{document['id']!r} under {self.directory} — run "
                "`python -m repro validate --record` on a known-good build"
            ]
        return compare_fingerprints(golden, document, rtol=rtol)
