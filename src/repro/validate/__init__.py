"""Validation and conformance: invariants, golden fingerprints, differentials.

The simulators in this repository are *models*, and models drift: a refactor
that changes a tie-break, a cache that returns a stale route, a counter that
misses a code path — none of these crash, they just quietly change answers.
This package is the regression net that catches them:

* :class:`InvariantChecker` — attaches through the kernel's
  :class:`~repro.core.events.SimulationHooks` (chaining in front of any
  probe already installed) and asserts conservation laws at run end:
  monotone event time and non-negative clocks in the DES kernel, job/ledger
  conservation in the cluster, bytes offered = delivered + lost in the
  fabric, cost/energy non-negativity in every counter.
* :class:`GoldenStore` / :func:`profile_fingerprint` /
  :func:`sweep_fingerprint` — tolerance-aware ``repro.validate/v1`` result
  fingerprints for every run profile and named sweep, recorded under
  ``tests/golden/`` and compared with drift-explaining messages.
* :func:`run_differential_checks` — fast paths pitted against independent
  references: :class:`~repro.interconnect.routecache.RouteCache` vs
  uncached shortest paths, collective closed forms vs step-by-step loops,
  Young/Daly vs a numeric grid optimum, the sweep fork-pool vs serial,
  the tcp fleet sharded over loopback hosts vs serial.
* :func:`validate` / ``python -m repro validate`` — the orchestrator with
  ``--record`` and ``--check`` modes that ties all three together.

Like :mod:`repro.profiles`, this package sits *above* the subsystems: it
imports scheduling, interconnect and sweep freely.
"""

from repro.validate.differential import (
    DifferentialResult,
    check_checkpointing,
    check_collectives,
    check_distributed,
    check_memerrors,
    check_resume,
    check_routes,
    check_serve,
    check_solvers,
    check_sweep,
    run_differential_checks,
)
from repro.validate.fingerprint import (
    DEFAULT_RTOL,
    REQUEST_SCHEMA,
    SCHEMA,
    GoldenStore,
    canonical_request,
    compare_fingerprints,
    profile_defaults,
    profile_fingerprint,
    request_fingerprint,
    sweep_fingerprint,
)
from repro.validate.invariants import (
    InvariantChecker,
    InvariantViolation,
    KernelInvariantHooks,
    Violation,
)
from repro.validate.runner import (
    DEFAULT_GOLDEN_DIR,
    ValidationEntry,
    ValidationReport,
    run_validated,
    validate,
)

__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "DEFAULT_RTOL",
    "REQUEST_SCHEMA",
    "SCHEMA",
    "DifferentialResult",
    "GoldenStore",
    "InvariantChecker",
    "InvariantViolation",
    "KernelInvariantHooks",
    "ValidationEntry",
    "ValidationReport",
    "Violation",
    "check_checkpointing",
    "check_collectives",
    "check_distributed",
    "check_memerrors",
    "check_resume",
    "check_routes",
    "check_solvers",
    "check_serve",
    "check_sweep",
    "canonical_request",
    "compare_fingerprints",
    "profile_defaults",
    "profile_fingerprint",
    "request_fingerprint",
    "run_differential_checks",
    "run_validated",
    "sweep_fingerprint",
    "validate",
]
