"""Fabric micro-benchmarks: route cache and rate-solver speedups.

Two measurements, both written to ``BENCH_fabric.json`` so CI can track
them over time:

* **Route cache** — the congestion-study usage pattern (one topology, the
  same mice-heavy trace run under every congestion policy, repeated) with
  the shared :class:`~repro.interconnect.routecache.RouteCache` enabled
  versus disabled.
* **Rate solver** — the synchronized-burst point (:mod:`fabric_burst`):
  hundreds of concurrent flows where the vectorised incremental
  ``"numpy"`` solver is measured against the ``"reference"``
  water-filling baseline; results must be bit-identical.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_route_cache.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import fabric_burst

from repro.core.rng import RandomSource
from repro.interconnect.congestion import congestion_policy
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.routecache import route_cache_for
from repro.interconnect.topology import build_topology

POLICIES = ("none", "ecn", "flow")


def make_trace(topology, count: int, size: float, seed: int = 7):
    """The benchmark trace: uniform random mice, near-sequential starts."""
    rng = RandomSource(seed=seed, name="bench/route-cache")
    terminals = list(topology.terminals)
    trace = []
    for index in range(count):
        source, destination = rng.sample(terminals, 2)
        trace.append(
            Flow(
                source=source, destination=destination,
                size=size, start_time=index * 2e-5,
            )
        )
    return trace


def timed_runs(topology, repeats: int, flows: int, size: float,
               cache_routes: bool) -> float:
    """Wall seconds to run the same trace under every policy, ``repeats`` times.

    Traces are pre-generated outside the timed region; every run gets
    fresh :class:`Flow` objects (unique flow ids) over identical endpoint
    pairs — exactly what a policy-comparison study replays.
    """
    runs = [
        (policy, make_trace(topology, flows, size))
        for policy in POLICIES
        for _ in range(repeats)
    ]
    started = time.perf_counter()
    for policy, trace in runs:
        simulator = FabricSimulator(
            topology,
            congestion=congestion_policy(policy),
            cache_routes=cache_routes,
        )
        simulator.run(trace)
    return time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=4,
                        help="runs per congestion policy")
    parser.add_argument("--flows", type=int, default=400)
    parser.add_argument("--flow-size", type=float, default=64e3)
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 2 repeats x 150 flows")
    parser.add_argument("--output", default="BENCH_fabric.json")
    args = parser.parse_args()
    if args.quick:
        args.repeats, args.flows = 2, 150

    topology = build_topology(
        "dragonfly", groups=9, routers_per_group=4, terminals=4
    )
    # Uncached first: it never touches the shared cache, so ordering
    # cannot warm anything for the cached pass.
    uncached = timed_runs(
        topology, args.repeats, args.flows, args.flow_size, cache_routes=False
    )
    cached = timed_runs(
        topology, args.repeats, args.flows, args.flow_size, cache_routes=True
    )
    stats = route_cache_for(topology).stats()
    speedup = uncached / cached if cached else float("inf")

    burst = fabric_burst.measure_burst(
        fabric_burst.BURST_FLOWS_QUICK if args.quick
        else fabric_burst.BURST_FLOWS,
        reps=2,
    )

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "route_cache",
        "topology": "dragonfly(9x4x4)",
        "workload": {
            "policies": list(POLICIES),
            "repeats": args.repeats,
            "flows_per_run": args.flows,
            "flow_size_bytes": args.flow_size,
        },
        "uncached_seconds": uncached,
        "cached_seconds": cached,
        "speedup": speedup,
        "cache_stats": stats,
        "fabric_burst": burst,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"uncached {uncached:.3f}s  cached {cached:.3f}s  "
          f"speedup {speedup:.2f}x  (hits {stats['hits']}, "
          f"misses {stats['misses']})")
    print(f"burst ({burst['flows']} flows): solver speedup "
          f"{burst['speedup']:.2f}x, identical={burst['identical']}")
    print(f"wrote {path}")
    if not burst["identical"]:
        print("ERROR: numpy and reference solvers disagree on the burst "
              "FlowStats")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
