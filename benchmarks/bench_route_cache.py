"""Route-cache micro-benchmark: repeated fabric runs, cached vs uncached.

Reproduces the congestion-study usage pattern — one topology, the same
mice-heavy trace run under every congestion policy, repeated — and times
it with the shared :class:`~repro.interconnect.routecache.RouteCache`
enabled versus disabled.  Writes the measurement as ``BENCH_fabric.json``
so CI can track the speedup over time.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_route_cache.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.core.rng import RandomSource
from repro.interconnect.congestion import congestion_policy
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.routecache import route_cache_for
from repro.interconnect.topology import build_topology

POLICIES = ("none", "ecn", "flow")


def make_trace(topology, count: int, size: float, seed: int = 7):
    """The benchmark trace: uniform random mice, near-sequential starts."""
    rng = RandomSource(seed=seed, name="bench/route-cache")
    terminals = list(topology.terminals)
    trace = []
    for index in range(count):
        source, destination = rng.sample(terminals, 2)
        trace.append(
            Flow(
                source=source, destination=destination,
                size=size, start_time=index * 2e-5,
            )
        )
    return trace


def timed_runs(topology, repeats: int, flows: int, size: float,
               cache_routes: bool) -> float:
    """Wall seconds to run the same trace under every policy, ``repeats`` times.

    Traces are pre-generated outside the timed region; every run gets
    fresh :class:`Flow` objects (unique flow ids) over identical endpoint
    pairs — exactly what a policy-comparison study replays.
    """
    runs = [
        (policy, make_trace(topology, flows, size))
        for policy in POLICIES
        for _ in range(repeats)
    ]
    started = time.perf_counter()
    for policy, trace in runs:
        simulator = FabricSimulator(
            topology,
            congestion=congestion_policy(policy),
            cache_routes=cache_routes,
        )
        simulator.run(trace)
    return time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=4,
                        help="runs per congestion policy")
    parser.add_argument("--flows", type=int, default=400)
    parser.add_argument("--flow-size", type=float, default=64e3)
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 2 repeats x 150 flows")
    parser.add_argument("--output", default="BENCH_fabric.json")
    args = parser.parse_args()
    if args.quick:
        args.repeats, args.flows = 2, 150

    topology = build_topology(
        "dragonfly", groups=9, routers_per_group=4, terminals=4
    )
    # Uncached first: it never touches the shared cache, so ordering
    # cannot warm anything for the cached pass.
    uncached = timed_runs(
        topology, args.repeats, args.flows, args.flow_size, cache_routes=False
    )
    cached = timed_runs(
        topology, args.repeats, args.flows, args.flow_size, cache_routes=True
    )
    stats = route_cache_for(topology).stats()
    speedup = uncached / cached if cached else float("inf")

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "route_cache",
        "topology": "dragonfly(9x4x4)",
        "workload": {
            "policies": list(POLICIES),
            "repeats": args.repeats,
            "flows_per_run": args.flows,
            "flow_size_bytes": args.flow_size,
        },
        "uncached_seconds": uncached,
        "cached_seconds": cached,
        "speedup": speedup,
        "cache_stats": stats,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"uncached {uncached:.3f}s  cached {cached:.3f}s  "
          f"speedup {speedup:.2f}x  (hits {stats['hits']}, "
          f"misses {stats['misses']})")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
