"""Invariant-checker overhead benchmark: instrumented vs validated runs.

The validation layer must be near-free: chaining
:class:`~repro.validate.KernelInvariantHooks` in front of telemetry's
kernel probe adds a handful of float comparisons per event, and the
end-of-run ledger checks are O(counters). The acceptance bar is <5% wall
time on an event-heavy profile. Times the same profile through a plain
:class:`~repro.observability.Telemetry` and through
:func:`~repro.validate.run_validated` (which also runs the end-of-run
checks), and writes the measurement as ``BENCH_validate.json`` so CI can
gate on it.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_validate.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro import profiles
from repro.observability import Telemetry
from repro.validate import run_validated

#: Event-heavy profiles that stress the chained kernel hooks.
PROFILE_IDS = ("C16", "F3")


def run_bare(profile_id: str) -> float:
    """Wall seconds for one instrumented (but unvalidated) profile run."""
    telemetry = Telemetry()
    started = time.perf_counter()
    profiles.run(profile_id, telemetry)
    return time.perf_counter() - started


def run_checked(profile_id: str) -> float:
    """Wall seconds for the same run with invariants armed and checked."""
    started = time.perf_counter()
    _result, checker = run_validated(profile_id)
    elapsed = time.perf_counter() - started
    if not checker.ok:
        raise RuntimeError(
            f"benchmark invariant broken: {checker.summary()}"
        )
    return elapsed


def best_of(repeats: int, runner, profile_id: str) -> float:
    """Minimum wall time over ``repeats`` runs (noise floor estimate)."""
    return min(runner(profile_id) for _ in range(repeats))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 3 repeats")
    parser.add_argument("--output", default="BENCH_validate.json")
    args = parser.parse_args()
    if args.quick:
        args.repeats = 3

    per_profile = {}
    bare_total = 0.0
    checked_total = 0.0
    for profile_id in PROFILE_IDS:
        # Warm-up pass absorbs import and first-run allocation costs.
        run_bare(profile_id)
        bare = best_of(args.repeats, run_bare, profile_id)
        checked = best_of(args.repeats, run_checked, profile_id)
        bare_total += bare
        checked_total += checked
        per_profile[profile_id] = {
            "bare_seconds": bare,
            "checked_seconds": checked,
            "overhead_pct": (
                100.0 * (checked - bare) / bare if bare else 0.0
            ),
        }

    overhead_pct = (
        100.0 * (checked_total - bare_total) / bare_total
        if bare_total else 0.0
    )
    document = {
        "schema": "repro.bench/v1",
        "benchmark": "validate_invariant_overhead",
        "workload": {
            "profiles": list(PROFILE_IDS),
            "repeats": args.repeats,
        },
        "profiles": per_profile,
        "bare_seconds": bare_total,
        "checked_seconds": checked_total,
        "overhead_pct": overhead_pct,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    for profile_id, row in per_profile.items():
        print(f"{profile_id}: bare {row['bare_seconds']:.3f}s  "
              f"checked {row['checked_seconds']:.3f}s  "
              f"overhead {row['overhead_pct']:+.2f}%")
    print(f"total overhead {overhead_pct:+.2f}%")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
