"""Serve-path benchmark: cold vs cached vs shed request throughput.

Drives an in-process :class:`repro.serve.ServiceApp` through the same
``dispatch`` path the socket serves and measures four regimes:

* **cold** — distinct C8 profile requests, each a real simulation;
* **cached** — one request repeated, answered from the artefact cache
  with zero simulation (asserted via ``serve.kernel_events``);
* **shed** — a zero-rate quota rejecting everything with 429;
* **admission overhead** — the cached hot path with the quota machinery
  on vs off (hits are never charged, so the delta is pure bookkeeping).

Writes ``BENCH_serve.json`` and exits non-zero if the caching contract
fails its gates: cached throughput must beat cold by ``--min-speedup``
(default 10x) and admission must cost under ``--max-admission-overhead``
(default 5%).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time

from repro.serve import QuotaPolicy, ServeConfig, ServiceApp, ServiceClient


def profile_request(index: int) -> dict:
    return {"profile": "C8", "params": {"max_jobs": 4 + index}}


def requests_per_second(client, requests, *, expect) -> float:
    started = time.perf_counter()
    for request in requests:
        response = client.post("/v1/profile", request)
        if response.status != expect:
            raise SystemExit(
                f"expected {expect}, got {response.status}: "
                f"{response.body[:200]!r}"
            )
    elapsed = time.perf_counter() - started
    return len(requests) / elapsed if elapsed else float("inf")


def timed_regimes(store: str, cold_n: int, cached_n: int, shed_n: int):
    app = ServiceApp(ServeConfig(store=store, sweep_workers=1))
    try:
        client = ServiceClient(app)
        cold_rps = requests_per_second(
            client, [profile_request(i) for i in range(cold_n)], expect=200
        )
        events_after_cold = app.counter("serve.kernel_events").total()

        hot = profile_request(0)
        cached_rps = requests_per_second(
            client, [hot] * cached_n, expect=200
        )
        if app.counter("serve.kernel_events").total() != events_after_cold:
            raise SystemExit(
                "cache hits moved serve.kernel_events — the cached regime "
                "simulated"
            )
    finally:
        app.close()

    shed_app = ServiceApp(ServeConfig(
        store=store + "-shed",
        quota=QuotaPolicy(rate=0.0, burst=0.0),
    ))
    try:
        shed_rps = requests_per_second(
            ServiceClient(shed_app),
            [profile_request(i) for i in range(shed_n)],
            expect=429,
        )
    finally:
        shed_app.close()
    return cold_rps, cached_rps, shed_rps


def admission_overhead(store_base: str, repeats: int, hits: int) -> float:
    """Cost of one admission decision relative to one cached response.

    Cache hits skip admission entirely, so a service-level quota-on vs
    quota-off A/B compares *identical* code and measures only scheduler
    noise.  The honest number is the decision's own cost — many
    admit/release pairs timed directly — as a fraction of the cached
    request service time it would extend if it ran there.
    """
    from repro.serve import AdmissionController

    hot = profile_request(0)
    app = ServiceApp(ServeConfig(store=f"{store_base}-cached"))
    try:
        client = ServiceClient(app)
        client.post("/v1/profile", hot)  # warm the cache
        batches = []
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(hits):
                client.post("/v1/profile", hot)
            batches.append(time.perf_counter() - started)
    finally:
        app.close()
    cached_seconds = min(batches) / hits

    controller = AdmissionController(
        max_queue=4, quota=QuotaPolicy(rate=1e9, burst=1e9)
    )
    iterations = max(10_000, repeats * hits)
    started = time.perf_counter()
    for _ in range(iterations):
        controller.admit("bench")
        controller.release()
    admit_seconds = (time.perf_counter() - started) / iterations
    return admit_seconds / cached_seconds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts for CI smoke")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required cached/cold throughput ratio")
    parser.add_argument("--max-admission-overhead", type=float, default=0.05,
                        help="allowed fractional cost of admission "
                             "on the cached path")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    cold_n, cached_n, shed_n = (8, 200, 200) if args.quick else (20, 1000, 1000)
    repeats, hits = (5, 50) if args.quick else (9, 200)

    with tempfile.TemporaryDirectory() as scratch:
        cold_rps, cached_rps, shed_rps = timed_regimes(
            os.path.join(scratch, "store"), cold_n, cached_n, shed_n
        )
        overhead = admission_overhead(
            os.path.join(scratch, "admission"), repeats, hits
        )

    speedup = cached_rps / cold_rps if cold_rps else float("inf")
    speedup_ok = speedup >= args.min_speedup
    overhead_ok = overhead <= args.max_admission_overhead

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "serve_throughput",
        "quick": args.quick,
        "requests": {"cold": cold_n, "cached": cached_n, "shed": shed_n},
        "cold_rps": cold_rps,
        "cached_rps": cached_rps,
        "shed_rps": shed_rps,
        "cached_over_cold": speedup,
        "min_speedup": args.min_speedup,
        "admission_overhead": overhead,
        "max_admission_overhead": args.max_admission_overhead,
        "passed": speedup_ok and overhead_ok,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"cold {cold_rps:.1f} req/s, cached {cached_rps:.1f} req/s "
          f"({speedup:.1f}x), shed {shed_rps:.1f} req/s, "
          f"admission overhead {overhead * 100:+.2f}%")
    print(f"wrote {path}")
    if not speedup_ok:
        print(f"ERROR: cached/cold {speedup:.1f}x is below the "
              f"{args.min_speedup:.0f}x gate")
    if not overhead_ok:
        print(f"ERROR: admission overhead {overhead * 100:.2f}% exceeds "
              f"{args.max_admission_overhead * 100:.0f}%")
    return 0 if (speedup_ok and overhead_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
