"""Experiment F1 — Figure 1: the convergence of Big Data, HPC and AI.

The figure's claim, made quantitative: a workload mix spanning simulation,
analytics and machine learning needs a system providing *all three*
capability classes. We run the same mixed trace on:

* a homogeneous CPU-only system (the "killer micro" legacy design), and
* a heterogeneous system with the same total device count but a mix of
  CPUs, GPUs and systolic training parts,

and report mean completion time per job class. Expected shape: the
heterogeneous system wins overall, with the ML classes gaining the most
(an order of magnitude) and simulation staying roughly neutral.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation import Federation, Site, SiteKind
from repro.hardware import default_catalog
from repro.scheduling import MetaScheduler
from repro.workloads import JobClass, JobTraceGenerator, TraceConfig

TOTAL_DEVICES = 96


def build_federation(heterogeneous: bool) -> Federation:
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    federation = Federation(name="fig1")
    if heterogeneous:
        gpu = catalog.get("hpc-gpu")
        tpu = catalog.get("tpu-like")
        devices = {cpu: TOTAL_DEVICES // 2, gpu: TOTAL_DEVICES // 4, tpu: TOTAL_DEVICES // 4}
    else:
        devices = {cpu: TOTAL_DEVICES}
    federation.add_site(
        Site(name="core", kind=SiteKind.SUPERCOMPUTER, devices=devices)
    )
    return federation


def make_trace():
    return JobTraceGenerator(
        TraceConfig(arrival_rate=0.01, duration=40_000.0, max_jobs=150),
        rng=RandomSource(seed=101),
    ).generate()


def run_experiment():
    results = {}
    for label, heterogeneous in (("cpu-only", False), ("heterogeneous", True)):
        scheduler = MetaScheduler(build_federation(heterogeneous))
        records = scheduler.run(make_trace())
        by_class = {}
        for record in records:
            by_class.setdefault(record.job.job_class, []).append(
                record.completion_time
            )
        results[label] = {
            job_class: sum(times) / len(times)
            for job_class, times in by_class.items()
        }
    return results


def test_fig1_convergence(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "F1 (Figure 1): mixed HPC/analytics/AI trace, CPU-only vs heterogeneous",
        ["job class", "cpu-only mean CT (s)", "heterogeneous mean CT (s)", "speedup"],
    )
    speedups = {}
    for job_class in (
        JobClass.SIMULATION,
        JobClass.ANALYTICS,
        JobClass.ML_TRAINING,
        JobClass.ML_INFERENCE,
    ):
        homogeneous = results["cpu-only"].get(job_class)
        heterogeneous = results["heterogeneous"].get(job_class)
        if homogeneous is None or heterogeneous is None:
            continue
        speedups[job_class] = homogeneous / heterogeneous
        table.add_row(
            job_class.value, homogeneous, heterogeneous, speedups[job_class]
        )
    record(
        "F1_convergence",
        table,
        notes=(
            "Paper claim (Fig. 1, SI): converged workloads need HPC +"
            " analytics + ML capability classes in one system.\n"
            "Expected shape: heterogeneous wins on ML classes by >= 2x,"
            " simulation roughly neutral."
        ),
    )

    assert speedups[JobClass.ML_TRAINING] > 2.0
    assert speedups[JobClass.ML_INFERENCE] > 2.0
    assert speedups[JobClass.SIMULATION] > 0.4  # not badly hurt
