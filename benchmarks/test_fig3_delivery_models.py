"""Experiment F3 — Figure 3: heterogeneous hardware x delivery models.

Figure 3's claim: the hardware-architecture spectrum (SIMD/MIMD clusters,
large-memory machines, exascale, neuromorphic, ...) crossed with the
delivery spectrum (in-house, colo, managed, clouds, federated) exhibits
"substantial heterogeneity" on both axes — and only a *federated* delivery
model covers the whole workload portfolio, because no single site affords
every architecture (§III.F).

Coverage is judged against each job's deadline: a CPU can run anything
*eventually*, so single sites fail not by infeasibility alone but by
missing service levels (wrong silicon, too little capacity, or cloud noise
on synchronisation-sensitive codes). Expected shape: every single-site
model misses part of the portfolio; the federation serves all of it.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.federation import Federation, Site, SiteKind, WanLink
from repro.hardware import default_catalog
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.workloads.ai import build_mlp, build_transformer
from repro.workloads.base import JobClass, make_single_kernel_job
from repro.workloads.hpc import sparse_solver, stencil

PORTFOLIO_SIZE = 6


def build_full_federation():
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    gpu = catalog.get("hpc-gpu")
    tpu = catalog.get("tpu-like")
    dpe = catalog.get("analog-dpe")
    federation = Federation(name="fig3")
    inhouse = Site(name="in-house", kind=SiteKind.ON_PREMISE, devices={cpu: 32})
    supercomputer = Site(
        name="exascale", kind=SiteKind.SUPERCOMPUTER,
        devices={cpu: 64, gpu: 64},
    )
    cloud = Site(name="cloud", kind=SiteKind.CLOUD, devices={cpu: 256, tpu: 32})
    neuromorphic = Site(
        name="neuromorphic-colo", kind=SiteKind.COLO, devices={dpe: 64}
    )
    for site in (inhouse, supercomputer, cloud, neuromorphic):
        federation.add_site(site)
    for a, b in (
        (inhouse, supercomputer),
        (inhouse, cloud),
        (supercomputer, cloud),
        (cloud, neuromorphic),
        (supercomputer, neuromorphic),
    ):
        federation.connect(a, b, WanLink(bandwidth=1.25e9, latency=0.02))
    return federation


def portfolio():
    """Six jobs spanning Figure 3's architecture needs, each with a
    deadline its natural silicon meets comfortably."""
    climate = stencil(grid_points=10**7, timesteps=200, ranks=16, name="climate")
    climate.deadline = 60.0

    # Quiet-site time ~ 23.5 s; cloud noise inflates the barrier-closed
    # iterations to ~ 27 s, past the deadline (SII.C in action).
    fem = sparse_solver(unknowns=10**7, iterations=40_000, ranks=32, name="fem")
    fem.deadline = 25.0

    big_analytics = make_single_kernel_job(
        name="wide-analytics", job_class=JobClass.ANALYTICS,
        flops=5e13, bytes_moved=1e14, ranks=128,  # only the cloud is this wide
    )
    big_analytics.deadline = 3600.0

    llm = build_transformer(hidden_dim=1024, depth=8).training_job(
        batch=256, steps=200, ranks=8
    )
    llm.deadline = 300.0  # hopeless on CPUs, easy on GPU/TPU

    surrogate = build_mlp(hidden_dim=4096, depth=4).training_job(
        batch=256, steps=500, ranks=4
    )
    surrogate.deadline = 300.0

    serving = build_mlp(hidden_dim=2048, depth=3).inference_job(
        requests=2_000_000, batch=32
    )
    serving.deadline = 120.0

    jobs = [climate, fem, big_analytics, llm, surrogate, serving]
    for index, job in enumerate(jobs):
        job.arrival_time = float(index)
    return jobs


def served_within_deadline(records):
    count = 0
    for record in records:
        deadline = record.job.deadline
        if deadline is None or record.completion_time <= deadline:
            count += 1
    return count


def run_experiment():
    federation = build_full_federation()
    rows = []
    for site in federation.sites:
        scheduler = MetaScheduler(
            federation, policy=PlacementPolicy.HOME_ONLY, home_site=site
        )
        records = scheduler.run(portfolio())
        served = served_within_deadline(records)
        mean_ct = (
            sum(r.completion_time for r in records) / len(records)
            if records else float("nan")
        )
        rows.append((f"single-site: {site.name}", served, PORTFOLIO_SIZE, mean_ct))
    scheduler = MetaScheduler(federation, policy=PlacementPolicy.BEST_SILICON)
    records = scheduler.run(portfolio())
    mean_ct = sum(r.completion_time for r in records) / len(records)
    rows.append(
        ("federated", served_within_deadline(records), PORTFOLIO_SIZE, mean_ct)
    )
    kinds = scheduler.placements_by_device_kind()
    return rows, kinds


def test_fig3_delivery_models(benchmark, record):
    rows, kinds = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "F3 (Figure 3): portfolio served within deadline, by delivery model",
        ["delivery model", "served in SLA", "portfolio", "mean CT of placed (s)"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "F3_delivery_models",
        table,
        notes=(
            "Paper claim (Fig. 3, SIII.F): HPC centers 'won't likely be able\n"
            "to procure and maintain the full breadth of computational\n"
            "options' -> only federated delivery serves the full portfolio.\n"
            f"Federated placement used device kinds: {sorted(kinds)}."
        ),
    )

    federated_served = rows[-1][1]
    assert federated_served == PORTFOLIO_SIZE
    single_site_served = [row[1] for row in rows[:-1]]
    assert all(served < PORTFOLIO_SIZE for served in single_site_served)
    assert len(kinds) >= 2
