"""Experiment C8 — §III.F: the transparent meta-scheduler.

"Users will have their workloads run across a breadth of silicon options,
ideally with a meta-scheduler that selects the best available for the job,
but in a completely transparent manner to the applications."

A mixed 150-job trace (Figure 1 mix) is placed over a three-site
heterogeneous federation under five policies: best-silicon (the paper's
meta-scheduler), compute-only (no data awareness), static affinity (the
conventional "ML goes to the GPU partition" mapping), random, and
home-site-only (no federation at all).

Expected shape: best-silicon <= static-affinity < random < home-only on
mean completion time, with best-silicon also minimising (or nearly
minimising) energy because specialised silicon finishes sooner.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation import Federation, Site, SiteKind, WanLink
from repro.hardware import default_catalog
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.workloads import JobTraceGenerator, TraceConfig


def build_federation():
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    gpu = catalog.get("hpc-gpu")
    tpu = catalog.get("tpu-like")
    federation = Federation(name="c8")
    onprem = Site(name="onprem", kind=SiteKind.ON_PREMISE, devices={cpu: 64})
    supercomputer = Site(
        name="super", kind=SiteKind.SUPERCOMPUTER,
        devices={cpu: 128, gpu: 64, tpu: 32},
        interconnect_bandwidth=25e9, interconnect_latency=1e-6,
    )
    cloud = Site(name="cloud", kind=SiteKind.CLOUD, devices={cpu: 256, gpu: 64})
    for site in (onprem, supercomputer, cloud):
        federation.add_site(site)
    federation.connect(onprem, supercomputer, WanLink(bandwidth=1.25e9, latency=0.01))
    federation.connect(onprem, cloud, WanLink(bandwidth=0.625e9, latency=0.03))
    federation.connect(supercomputer, cloud, WanLink(bandwidth=1.25e9, latency=0.02))
    return federation


def make_trace():
    return JobTraceGenerator(
        TraceConfig(arrival_rate=0.02, duration=20_000.0, max_jobs=150),
        rng=RandomSource(seed=88),
    ).generate()


def run_experiment():
    rows = []
    for policy in (
        PlacementPolicy.BEST_SILICON,
        PlacementPolicy.COMPUTE_ONLY,
        PlacementPolicy.STATIC_AFFINITY,
        PlacementPolicy.RANDOM,
        PlacementPolicy.HOME_ONLY,
    ):
        federation = build_federation()
        scheduler = MetaScheduler(
            federation, policy=policy, home_site=federation.site("onprem")
        )
        records = scheduler.run(make_trace())
        rows.append(
            (
                policy.value,
                len(records),
                scheduler.mean_completion_time(),
                scheduler.makespan(),
                scheduler.total_energy() / 3.6e6,  # kWh
                dict(sorted(scheduler.placements_by_device_kind().items())),
            )
        )
    return rows


def test_c8_metascheduler(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C8 (SIII.F): placement policy comparison, 150-job mixed trace",
        ["policy", "jobs", "mean CT (s)", "makespan (s)", "energy (kWh)",
         "device kinds used"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C8_metascheduler",
        table,
        notes=(
            "Paper claim: a meta-scheduler selecting 'the best available\n"
            "silicon for the job' transparently. Expected ordering on mean\n"
            "completion: best-silicon <= static-affinity < random < home-only."
        ),
    )

    mean_ct = {row[0]: row[2] for row in rows}
    assert mean_ct["best_silicon"] <= mean_ct["static_affinity"] * 1.05
    assert mean_ct["best_silicon"] < mean_ct["random"]
    assert mean_ct["random"] < mean_ct["home_only"]
    assert mean_ct["best_silicon"] * 3 < mean_ct["home_only"]
