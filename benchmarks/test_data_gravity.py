"""Experiment C9 — §III.F: data-gravity-aware placement.

"The new framework will enable the analysis of data 'gravitational'
aspects, where workloads may not only be scheduled following compute
resources availability but targeting the optimization of job completion
time end to end, including the data transfer."

Twenty analytics/training jobs read large datasets pinned at specific
sites. We sweep the scheduler's gravity weight alpha from 0 (compute-only,
the paper's criticised baseline) to 2 (locality-biased) and report mean
end-to-end completion time, total WAN bytes moved, and data-local placement
rate.

Expected shape: completion time and bytes moved drop steeply from alpha=0
to alpha=1 and flatten after; the data-local placement fraction rises
toward 1.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation import Dataset, Federation, Site, SiteKind, WanLink
from repro.hardware import Precision, default_catalog
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.workloads.base import JobClass, make_single_kernel_job

GRAVITY_WEIGHTS = (0.0, 0.25, 0.5, 1.0, 2.0)
JOB_COUNT = 20
DATASET_BYTES = 200e9


def build_federation():
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    gpu = catalog.get("hpc-gpu")
    federation = Federation(name="c9")
    # Note: the data-holding sites have *weaker* compute, so compute-only
    # placement is actively pulled away from the data.
    archive_a = Site(name="archive-a", kind=SiteKind.ON_PREMISE, devices={cpu: 16})
    archive_b = Site(name="archive-b", kind=SiteKind.ON_PREMISE, devices={cpu: 16})
    hub = Site(
        name="compute-hub", kind=SiteKind.SUPERCOMPUTER,
        devices={cpu: 128, gpu: 64},
        interconnect_bandwidth=25e9, interconnect_latency=1e-6,
    )
    for site in (archive_a, archive_b, hub):
        federation.add_site(site)
    federation.connect(archive_a, hub, WanLink(bandwidth=1.25e9, latency=0.01))
    federation.connect(archive_b, hub, WanLink(bandwidth=0.625e9, latency=0.02))
    federation.connect(archive_a, archive_b, WanLink(bandwidth=0.625e9, latency=0.02))
    for index in range(10):
        federation.add_dataset(
            Dataset(
                name=f"ds-a{index}", size_bytes=DATASET_BYTES,
                replicas={"archive-a"},
            )
        )
        federation.add_dataset(
            Dataset(
                name=f"ds-b{index}", size_bytes=DATASET_BYTES,
                replicas={"archive-b"},
            )
        )
    return federation


def make_jobs():
    jobs = []
    rng = RandomSource(seed=99, name="c9")
    for index in range(JOB_COUNT):
        archive = "a" if index % 2 == 0 else "b"
        job = make_single_kernel_job(
            name=f"scan-{index}",
            job_class=JobClass.ANALYTICS,
            flops=2e13,
            bytes_moved=5e12,
            precision=Precision.FP32,
            ranks=4,
            input_dataset=f"ds-{archive}{index % 10}",
            input_bytes=DATASET_BYTES,
        )
        job.arrival_time = index * 5.0
        jobs.append(job)
    return jobs


def run_experiment():
    rows = []
    for weight in GRAVITY_WEIGHTS:
        federation = build_federation()
        scheduler = MetaScheduler(
            federation, policy=PlacementPolicy.BEST_SILICON, gravity_weight=weight
        )
        records = scheduler.run(make_jobs())
        mean_ct = sum(r.completion_time for r in records) / len(records)
        bytes_moved = sum(
            DATASET_BYTES for d in scheduler.decisions if d.staging_time > 0
        )
        local_fraction = sum(
            1 for d in scheduler.decisions if d.staging_time == 0
        ) / len(scheduler.decisions)
        rows.append((weight, mean_ct, bytes_moved / 1e12, local_fraction))
    return rows


def test_c9_data_gravity(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C9 (SIII.F): gravity-weight sweep, 20 data-heavy jobs over 3 sites",
        ["gravity weight", "mean end-to-end CT (s)", "WAN TB moved",
         "data-local placement rate"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C9_data_gravity",
        table,
        notes=(
            "Paper claim: optimise 'job completion time end to end,\n"
            "including the data transfer'. alpha=0 reproduces the\n"
            "compute-availability-only scheduling the paper criticises."
        ),
    )

    by_weight = {row[0]: row for row in rows}
    # End-to-end completion: gravity-aware must beat compute-only clearly.
    assert by_weight[1.0][1] < by_weight[0.0][1] * 0.7
    # WAN traffic collapses as gravity weight rises.
    assert by_weight[1.0][2] < by_weight[0.0][2]
    # Local placement rate is monotone non-decreasing in the weight.
    local_rates = [row[3] for row in rows]
    assert all(b >= a - 1e-9 for a, b in zip(local_rates, local_rates[1:]))
    assert local_rates[-1] > 0.9
