"""Experiment C12 — §III.C: in-network offload of bulk all-reduce.

"With this framework in place remote memory access and message passing can
be offloaded efficiently to specialized network hardware as can complex
communication patterns, the bulk-data all reduction operations used in
training for example."

We price the gradient all-reduce of a 100M-parameter data-parallel
training step across node counts and message sizes, comparing host-based
ring (bandwidth optimal), recursive doubling (latency optimal) and the
fabric-offloaded reduction tree.

Expected shape: the tree wins tiny messages, the ring wins bulk messages
among host algorithms, and in-network offload dominates both at every
size, with the advantage growing with node count (latency terms collapse
from O(p) / O(log2 p) to O(log_radix p)).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.interconnect.collectives import (
    CollectiveModel,
    training_step_communication,
)

NODE_COUNTS = (16, 256, 4096)
MESSAGE_SIZES = (8e3, 4e6, 400e6)  # barrier-ish, activation, full gradients


def run_experiment():
    rows = []
    for nodes in NODE_COUNTS:
        model = CollectiveModel(nodes=nodes)
        for size in MESSAGE_SIZES:
            ring = model.allreduce_ring(size)
            tree = model.allreduce_tree(size)
            offload = model.allreduce_in_network(size)
            rows.append(
                (
                    nodes,
                    size / 1e6,
                    ring * 1e3,
                    tree * 1e3,
                    offload * 1e3,
                    min(ring, tree) / offload,
                )
            )
    return rows


def training_impact():
    """Step-time impact for a 100M-parameter model at 256 nodes."""
    model = CollectiveModel(nodes=256)
    gradients = 400e6  # 100M params x 4 B
    host = training_step_communication(model, gradients, offload=False)
    offloaded = training_step_communication(model, gradients, offload=True)
    return host, offloaded


def test_c12_collective_offload(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C12 (SIII.C): all-reduce time by implementation (ms)",
        ["nodes", "message (MB)", "ring (ms)", "tree (ms)", "in-network (ms)",
         "offload speedup"],
    )
    for row in rows:
        table.add_row(*row)
    host, offloaded = training_impact()
    record(
        "C12_collective_offload",
        table,
        notes=(
            "Paper claim: bulk all-reduce offloaded to specialised network\n"
            "hardware. 100M-parameter gradient sync at 256 nodes:\n"
            f"host-based {host * 1e3:.2f} ms -> in-network {offloaded * 1e3:.2f} ms "
            f"({host / offloaded:.1f}x)."
        ),
    )

    by_key = {(nodes, size): (ring, tree, offload)
              for nodes, size, ring, tree, offload, _ in rows}
    for nodes in NODE_COUNTS:
        # Tree beats ring on the smallest message; ring beats tree on bulk.
        small_ring, small_tree, _ = by_key[(nodes, MESSAGE_SIZES[0] / 1e6)]
        bulk_ring, bulk_tree, _ = by_key[(nodes, MESSAGE_SIZES[-1] / 1e6)]
        assert small_tree < small_ring
        assert bulk_ring < bulk_tree
        # Offload dominates everywhere.
        for size in MESSAGE_SIZES:
            ring, tree, offload = by_key[(nodes, size / 1e6)]
            assert offload <= ring and offload <= tree
    # Offload advantage grows with scale for small messages.
    speedups = {
        nodes: next(s for n, size, *_, s in rows
                    if n == nodes and size == MESSAGE_SIZES[0] / 1e6)
        for nodes in NODE_COUNTS
    }
    assert speedups[4096] > speedups[16]
