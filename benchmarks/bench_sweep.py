"""Sweep-engine scaling benchmark: the 64-point congestion sweep.

Runs the named ``congestion`` sweep serially and with a worker pool,
checks the two runs are bit-identical (fingerprints match), and writes
``BENCH_sweep.json``.  The parallel speedup scales with available cores —
on a single-core machine pool overhead makes it ~1x, so the artefact
records ``cpu_count`` alongside the timings.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--workers 8]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib

from repro.sweep import named_sweep, run_sweep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", default="congestion",
                        choices=("congestion", "smoke"))
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the parallel pass "
                             "(default: min(8, cpu_count))")
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args()
    workers = args.workers or min(8, os.cpu_count() or 1)

    spec = named_sweep(args.sweep)
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=workers)
    identical = serial.fingerprint() == parallel.fingerprint()
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds else float("inf")
    )

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "sweep_scaling",
        "sweep": spec.name,
        "points": len(serial.points),
        "serial_seconds": serial.wall_seconds,
        "parallel_seconds": parallel.wall_seconds,
        "workers": workers,
        "speedup": speedup,
        "bit_identical": identical,
        "fingerprint": serial.fingerprint(),
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"{len(serial.points)} points: serial {serial.wall_seconds:.2f}s, "
          f"{workers} workers {parallel.wall_seconds:.2f}s "
          f"(speedup {speedup:.2f}x, bit-identical: {identical})")
    print(f"wrote {path}")
    if not identical:
        print("ERROR: parallel run diverged from serial run")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
