"""Experiment C11 — §III.E: the business case for board standardisation.

"Any given platform enablement effort can now easily reach a few million
dollars in development cost. These two pre-conditions are putting the
industry in front of a difficult conundrum, where the silicon ecosystem is
blooming but the ever more expensive system development process can really
sustain fewer and fewer options. ... the industry should drive towards a
standard for motherboards and other electronic sub-components."

We sweep vendor count for the paper's "more than a dozen configurations"
silicon ecosystem, comparing total industry development cost under
per-vendor custom enablement vs an OCP-like standard-board model, and how
many silicon options a fixed $100M industry R&D pool sustains under each.

Expected shape: custom cost grows linearly in vendors while standard cost
is nearly flat; beyond ~2 vendors the standard model wins, with >70%
savings at industry scale; the standard model sustains several times more
silicon options — "truly enable a diverse silicon ecosystem".
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.economics.platform import (
    PlatformCostModel,
    default_silicon_ecosystem,
    standardization_savings,
)

VENDOR_COUNTS = (1, 2, 4, 8, 16)
BUDGET = 100e6


def run_experiment():
    model = PlatformCostModel()
    ecosystem = default_silicon_ecosystem()
    rows = []
    for vendors in VENDOR_COUNTS:
        custom = model.custom_total_cost(ecosystem, vendors)
        standard = model.standard_total_cost(ecosystem, vendors)
        rows.append(
            (
                vendors,
                custom / 1e6,
                standard / 1e6,
                standardization_savings(model, ecosystem, vendors),
                model.sustainable_options(BUDGET, vendors, standard=False),
                model.sustainable_options(BUDGET, vendors, standard=True),
            )
        )
    return rows


def test_c11_platform_economics(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    model = PlatformCostModel()
    ecosystem = default_silicon_ecosystem()
    table = Table(
        f"C11 (SIII.E): platform enablement economics, {len(ecosystem)} silicon options",
        ["vendors", "custom total ($M)", "standard total ($M)", "saving",
         f"options under ${BUDGET/1e6:.0f}M (custom)",
         f"options under ${BUDGET/1e6:.0f}M (standard)"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C11_platform_economics",
        table,
        notes=(
            "Paper claims: enablement costs 'a few million dollars' each; the\n"
            "industry 'can really sustain fewer and fewer options'; an\n"
            "OCP-like standard would 'truly enable a diverse silicon\n"
            "ecosystem'. Expected: custom cost linear in vendors, standard\n"
            "nearly flat, crossover by ~2 vendors, >70% savings at 16 vendors."
        ),
    )

    by_vendors = {row[0]: row for row in rows}
    # Single vendor: custom is cheaper (no premium amortisation).
    assert by_vendors[1][1] < by_vendors[1][2]
    # From 2 vendors on, the standard model wins and savings grow.
    savings = [row[3] for row in rows]
    assert savings == sorted(savings)
    assert by_vendors[2][2] < by_vendors[2][1]
    assert by_vendors[16][3] > 0.7
    # Sustainability: the standard model carries >= 3x the options at scale.
    assert by_vendors[8][5] >= 3 * by_vendors[8][4]
