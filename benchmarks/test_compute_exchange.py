"""Experiment C10 — §III.F/§III.G: the Open Compute Exchange.

"An Open Compute Exchange would enable trading of resources between sites
and users ... the underlying economic model is nothing but a
non-cooperative, zero-summed game, that eventually reaches equilibrium ...
a more effective compute resources sharing system, that is otherwise a lot
more liquid than if only supplied by a few service providers."

Three sub-experiments:

1. **Equilibrium**: an agent-based double auction (providers, consumers,
   a broker, speculators) must converge to the theoretical supply/demand
   clearing price, conserving cash (zero-sum).
2. **Liquidity ablation** (DESIGN.md §4): volume and price-discovery speed
   with and without broker/market-maker agents, and with few vs many
   providers.
3. **Staircase** (§III.G): capacity coverage of peak demand as the
   delivery model climbs bursting -> fluidity -> grid -> exchange.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation.bursting import DeliveryStage
from repro.federation.site import Site, SiteKind
from repro.market.agents import BrokerAgent, ConsumerAgent, ProviderAgent, SpeculatorAgent
from repro.market.equilibrium import clearing_price
from repro.market.exchange import ComputeExchange, MarketSimulation, ResourceClass

ROUNDS = 80


def build_market(providers=6, consumers=8, brokers=1, speculators=2, seed=23):
    exchange = ComputeExchange([ResourceClass("gpu-hour", "GPU device-hours")])
    suppliers, demanders = [], []
    for index in range(providers):
        cost = 0.8 + 0.6 * index / max(providers - 1, 1)
        exchange.register(
            ProviderAgent(f"prov{index}", marginal_cost=cost, capacity_per_round=20)
        )
        suppliers.append((cost, 20))
    for index in range(consumers):
        valuation = 1.0 + 1.0 * index / max(consumers - 1, 1)
        exchange.register(
            ConsumerAgent(f"cons{index}", valuation=valuation, demand_per_round=12)
        )
        demanders.append((valuation, 12))
    for index in range(brokers):
        exchange.register(BrokerAgent(f"broker{index}"))
    for index in range(speculators):
        exchange.register(SpeculatorAgent(f"spec{index}"))
    simulation = MarketSimulation(exchange, "gpu-hour", rng=RandomSource(seed=seed))
    return exchange, simulation, suppliers, demanders


def run_equilibrium():
    exchange, simulation, suppliers, demanders = build_market()
    cash_before = exchange.total_cash()
    simulation.run(ROUNDS)
    theory_price, theory_quantity = clearing_price(suppliers, demanders)
    return {
        "theory_price": theory_price,
        "theory_quantity": theory_quantity,
        "simulated_price": simulation.mean_price(last=20),
        "equilibrium_round": simulation.equilibrium_round(tolerance=0.05),
        "cash_error": abs(exchange.total_cash() - cash_before),
        "mean_volume": float(np.mean(simulation.volume_history[-20:])),
    }


def run_liquidity_ablation():
    rows = []
    for label, brokers, providers in (
        ("few providers, no broker", 0, 2),
        ("few providers, broker", 1, 2),
        ("many providers, no broker", 0, 8),
        ("many providers, broker", 1, 8),
    ):
        _, simulation, *_ = build_market(
            providers=providers, brokers=brokers, speculators=0, seed=31
        )
        simulation.run(ROUNDS)
        volume = sum(simulation.volume_history)
        converged = simulation.equilibrium_round(tolerance=0.05)
        rows.append((label, volume, converged if converged is not None else "never"))
    return rows


def run_staircase():
    """Capacity reachable at each delivery stage vs a 3x demand peak."""
    home = Site(name="home", kind=SiteKind.ON_PREMISE)
    sites = [
        home,
        Site(name="cloud-1", kind=SiteKind.CLOUD),
        Site(name="cloud-2", kind=SiteKind.CLOUD),
        Site(name="partner", kind=SiteKind.ON_PREMISE),
        Site(name="national-super", kind=SiteKind.SUPERCOMPUTER),
        Site(name="colo", kind=SiteKind.COLO),
    ]
    capacity = {
        "home": 100.0, "cloud-1": 400.0, "cloud-2": 400.0,
        "partner": 150.0, "national-super": 600.0, "colo": 120.0,
    }
    peak_demand = 3.0 * capacity["home"]
    rows = []
    for stage in DeliveryStage:
        reachable = sum(
            capacity[s.name] for s in stage.allowed_sites(home, sites)
        )
        rows.append(
            (
                int(stage),
                stage.name.lower(),
                reachable,
                min(1.0, reachable / peak_demand),
            )
        )
    return rows


def run_experiment():
    return run_equilibrium(), run_liquidity_ablation(), run_staircase()


def test_c10_compute_exchange(benchmark, record):
    equilibrium, liquidity, staircase = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = Table(
        "C10 (SIII.F): Open Compute Exchange — equilibrium convergence",
        ["metric", "value"],
    )
    table.add_row("theoretical clearing price ($/GPU-h)", equilibrium["theory_price"])
    table.add_row("simulated steady price (last 20 rounds)", equilibrium["simulated_price"])
    table.add_row("equilibrium reached at round", equilibrium["equilibrium_round"])
    table.add_row("cash conservation error ($)", equilibrium["cash_error"])
    table.add_row("mean cleared volume/round (device-h)", equilibrium["mean_volume"])
    table.add_row("theoretical equilibrium volume", equilibrium["theory_quantity"])

    liquidity_table = Table(
        "C10 ablation: liquidity vs market structure",
        ["market structure", "total volume", "equilibrium round"],
    )
    for row in liquidity:
        liquidity_table.add_row(*row)

    staircase_table = Table(
        "C10 staircase (SIII.G): capacity coverage of a 3x demand peak",
        ["stage", "delivery model", "reachable capacity", "peak coverage"],
    )
    for row in staircase:
        staircase_table.add_row(*row)

    record(
        "C10_compute_exchange",
        table,
        notes=liquidity_table.render() + "\n\n" + staircase_table.render(),
    )

    # Zero-sum: cash conserved to numerical precision.
    assert equilibrium["cash_error"] < 1e-6
    # Convergence to within 15% of theory, detected as an equilibrium.
    assert equilibrium["simulated_price"] == pytest.approx(
        equilibrium["theory_price"], rel=0.15
    )
    assert equilibrium["equilibrium_round"] is not None
    # Liquidity: more providers and a broker never reduce volume.
    volumes = {label: volume for label, volume, _ in liquidity}
    assert volumes["many providers, broker"] > volumes["few providers, no broker"]
    # Staircase: coverage is monotone and only the open stages cover the peak.
    coverage = [row[3] for row in staircase]
    assert coverage == sorted(coverage)
    assert coverage[0] < 0.5
    assert coverage[-1] == 1.0
