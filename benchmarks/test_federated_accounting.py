"""Experiment C19 — §III.F: the monitoring/accounting foundation.

"It will also put in place the monitoring and accounting framework to
capture the resource exchange between the sites. Such resource consumption
data collection could lay the foundation to an 'Open Compute Exchange'."

Pipeline: a mixed 120-job trace runs over a three-org federation with the
meta-scheduler; every placement is metered into the accounting ledger
(device-hours, energy pass-through, egress). We report:

* per-site gross revenue/spend and the inter-site settlement after
  bilateral netting (the accounting machinery that makes "facilitated
  sharing between sites" financially practical),
* market procurement of the same consumed device-hours versus each
  provider's posted on-demand price (the exchange the accounting lays the
  foundation for).

Expected shape: netting removes a large share of gross money movement
(mutual provision mostly cancels); market procurement prices the hours
between the marginal provider's floor and the posted rate, saving > 30%.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation import Federation, MeterRecord, Site, SiteKind, WanLink
from repro.federation.accounting import AccountingLedger
from repro.hardware import default_catalog
from repro.market.agents import Agent
from repro.market.exchange import ComputeExchange, ResourceClass
from repro.market.procurement import (
    CapacityOffer,
    CapacityProcurer,
    market_savings,
)
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.workloads import JobTraceGenerator, TraceConfig

POSTED_PRICE = 3.0  # on-demand $/device-hour, any provider


class _PassiveAgent(Agent):
    def quote(self, view, rng):
        return []


def build_federation():
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    gpu = catalog.get("hpc-gpu")
    tpu = catalog.get("tpu-like")
    federation = Federation(name="c19")
    university = Site(
        name="university", kind=SiteKind.ON_PREMISE, devices={cpu: 64},
        price_per_device_hour={"epyc-class-cpu": 0.6},
    )
    national_lab = Site(
        name="national-lab", kind=SiteKind.SUPERCOMPUTER,
        devices={cpu: 128, gpu: 64, tpu: 32},
        price_per_device_hour={
            "epyc-class-cpu": 0.8, "hpc-gpu": 2.0, "tpu-like": 1.6,
        },
    )
    cloud = Site(
        name="cloud", kind=SiteKind.CLOUD, devices={cpu: 256, gpu: 64},
        price_per_device_hour={"epyc-class-cpu": 1.0, "hpc-gpu": 2.4},
    )
    for site in (university, national_lab, cloud):
        federation.add_site(site)
    federation.connect(university, national_lab, WanLink(bandwidth=1.25e9, latency=0.01))
    federation.connect(university, cloud, WanLink(bandwidth=0.625e9, latency=0.03,
                                                  cost_per_gb=0.08))
    federation.connect(national_lab, cloud, WanLink(bandwidth=1.25e9, latency=0.02,
                                                    cost_per_gb=0.08))
    return federation


#: Which organisation pays for each job (round-robin home orgs).
ORGS = ("university", "national-lab", "cloud")


def run_experiment():
    federation = build_federation()
    scheduler = MetaScheduler(federation, policy=PlacementPolicy.BEST_SILICON)
    trace = JobTraceGenerator(
        TraceConfig(arrival_rate=0.02, duration=20_000.0, max_jobs=120),
        rng=RandomSource(seed=191),
    ).generate()
    scheduler.run(trace)

    # Meter every placement: consumer = submitting org (round robin),
    # provider = executing site.
    ledger = AccountingLedger()
    for index, decision in enumerate(scheduler.decisions):
        consumer = ORGS[index % len(ORGS)]
        device_hours = decision.runtime / 3600.0 * decision.job.ranks
        ledger.meter(MeterRecord(
            job_name=decision.job.name,
            consumer=consumer,
            provider=decision.site.name,
            device_name=decision.device.name,
            device_hours=device_hours,
            energy_joules=decision.energy,
            price_per_device_hour=decision.site.hourly_price(decision.device),
            energy_price_per_kwh=0.08,
        ))

    balances = ledger.net_balances()
    transfers = ledger.settlement_transfers()

    # Market procurement of the federation's consumed CPU-hours.
    cpu_hours = sum(
        record.device_hours for record in ledger.records
        if record.device_name == "epyc-class-cpu"
    )
    exchange = ComputeExchange([ResourceClass("epyc-class-cpu-hour")])
    offers = []
    for site in federation.sites:
        exchange.register(_PassiveAgent(f"{site.name}/epyc-class-cpu"))
        cpu_device = next(d for d in site.devices if d.name == "epyc-class-cpu")
        offers.append(CapacityOffer(
            site=site, device_name="epyc-class-cpu",
            idle_fraction=1.0,
            floor_price=site.hourly_price(cpu_device),
        ))
    exchange.register(_PassiveAgent("buyer"))
    procurer = CapacityProcurer(exchange, buyer_id="buyer", max_price=POSTED_PRICE)
    procurer.list_offers(offers)
    result = procurer.procure("epyc-class-cpu", max(cpu_hours, 1.0))
    savings = market_savings(result, posted_price=POSTED_PRICE)

    return ledger, balances, transfers, result, savings


def test_c19_federated_accounting(benchmark, record):
    ledger, balances, transfers, procurement, savings = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = Table(
        "C19 (SIII.F): inter-site accounting over a 120-job federated trace",
        ["organisation", "gross revenue ($)", "gross spend ($)", "net balance ($)"],
    )
    for org in ORGS:
        table.add_row(
            org,
            ledger.provider_revenue(org),
            ledger.consumer_spend(org),
            balances.get(org, 0.0),
        )

    settlement_table = Table(
        "C19 settlement: netted transfers",
        ["debtor", "creditor", "amount ($)"],
    )
    for debtor, creditor, amount in transfers:
        settlement_table.add_row(debtor, creditor, amount)

    record(
        "C19_federated_accounting",
        table,
        notes=(
            settlement_table.render()
            + f"\n\nGross volume ${ledger.gross_volume():.2f}; netting saves "
            f"{ledger.netting_efficiency():.0%} of money movement.\n"
            f"Market procurement of {procurement.acquired_hours:.1f} CPU-hours: "
            f"${procurement.total_cost:.2f} (avg ${procurement.average_price:.2f}/h) "
            f"vs posted ${POSTED_PRICE:.2f}/h -> {savings:.0%} saving.\n"
            "Paper claim: the accounting framework capturing resource\n"
            "exchange 'could lay the foundation to an Open Compute Exchange'."
        ),
    )

    # Conservation: balances sum to zero; transfers settle everything.
    assert sum(balances.values()) == pytest.approx(0.0, abs=1e-6)
    settled = dict(balances)
    for debtor, creditor, amount in transfers:
        settled[debtor] += amount
        settled[creditor] -= amount
    assert all(abs(value) < 1e-6 for value in settled.values())
    # Netting removes a meaningful share of gross movement.
    assert ledger.netting_efficiency() > 0.2
    # Market procurement beats the posted on-demand rate clearly.
    assert procurement.fill_rate == pytest.approx(1.0)
    assert savings > 0.3
