"""Experiment C4 — §III.B: accelerator specialisation and the O(N) claim.

"Digital accelerators are squeezing the inefficiencies away from deep
learning algorithms ... by reducing bit precision, ... dataflow and/or
systolic computation. ... Analog 'dot-product engines' exploit combination
of Ohm and Kirchhoff laws ... Similarly, optical engines ... These are
interesting because they change an O(N^2) problem to an O(N) problem."

Part 1 — MVM sweep: time and energy of an N x N matrix-vector multiply at
INT8-equivalent precision across CPU / GPU / TPU-like / FPGA / analog DPE /
optical engine, for N in {512 .. 8192}. Expected shape: digital devices
scale ~O(N^2) in time while analog/optical scale ~O(N); the analog DPE wins
energy by orders of magnitude at large N.

Part 2 — precision ladder ablation (DESIGN.md §4): GPU throughput on a
GEMM-shaped kernel from FP64 down to INT8 ("reduced precision ... becoming
mainstream").
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import Table
from repro.hardware import KernelProfile, Precision, default_catalog

SIZES = (2048, 4096, 8192, 16384, 32768)
BATCH = 256  # inference-serving batch: one pass per vector on MVM engines
DEVICES = (
    "epyc-class-cpu",
    "hpc-gpu",
    "tpu-like",
    "datacenter-fpga",
    "analog-dpe",
    "optical-mvm",
)


def mvm_kernel(n: int) -> KernelProfile:
    return KernelProfile(
        flops=2.0 * n * n * BATCH,
        bytes_moved=float(n * n) + 2.0 * BATCH * n,  # weights + I/O vectors
        precision=Precision.INT8,
        mvm_dimension=n,
    )


def run_experiment():
    catalog = default_catalog()
    rows = []
    for name in DEVICES:
        device = catalog.get(name)
        for n in SIZES:
            kernel = mvm_kernel(n)
            device.time_for(kernel)  # warm-up: absorbs FPGA reconfiguration
            rows.append(
                (
                    name,
                    n,
                    device.time_for(kernel) * 1e6,
                    device.energy_for(kernel) * 1e6,
                )
            )
    return rows


def precision_ladder():
    catalog = default_catalog()
    gpu = catalog.get("hpc-gpu")
    rows = []
    n = 4096
    for precision in (
        Precision.FP64, Precision.FP32, Precision.TF32,
        Precision.BF16, Precision.INT8,
    ):
        kernel = KernelProfile(
            flops=2.0 * n**3,
            bytes_moved=3.0 * n * n * precision.bytes,
            precision=precision,
        )
        elapsed = gpu.time_for(kernel)
        rows.append((str(precision), kernel.flops / elapsed / 1e12))
    return rows


def scaling_exponent(rows, device, sizes=SIZES):
    """Least-squares log-log slope of time vs N for one device."""
    points = [(n, t) for name, n, t, _ in rows if name == device]
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(t) for _, t in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )


def test_c4_accelerator_specialization(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C4 (SIII.B): N x N matrix-vector multiply across accelerator classes",
        ["device", "N", "time (us)", "energy (uJ)"],
    )
    for row in rows:
        table.add_row(*row)

    ladder = precision_ladder()
    ladder_table = Table(
        "C4 ablation: GPU GEMM throughput down the precision ladder (N=4096)",
        ["precision", "achieved TFLOP/s"],
    )
    for row in ladder:
        ladder_table.add_row(*row)

    exponents = {name: scaling_exponent(rows, name) for name in DEVICES}
    exponent_lines = "\n".join(
        f"  {name}: time ~ N^{exp:.2f}" for name, exp in exponents.items()
    )
    record(
        "C4_accelerator_specialization",
        table,
        notes=(
            "Paper claim: analog/optical engines turn O(N^2) MVM into O(N).\n"
            f"Fitted scaling exponents:\n{exponent_lines}\n\n"
            + ladder_table.render()
        ),
    )

    # The headline scaling-class split.
    assert exponents["analog-dpe"] < 1.4
    assert exponents["optical-mvm"] < 1.4
    assert exponents["epyc-class-cpu"] > 1.7
    assert exponents["hpc-gpu"] > 1.5

    # Energy: the DPE wins by >= 100x over the CPU at the largest size.
    energy = {(name, n): e for name, n, _, e in rows}
    largest = SIZES[-1]
    assert energy[("epyc-class-cpu", largest)] / energy[("analog-dpe", largest)] > 100

    # Precision ladder is monotone: narrower precision, higher throughput.
    throughputs = [t for _, t in precision_ladder()]
    assert throughputs == sorted(throughputs)
