"""Experiment C13 — §I/§II.A: the end of scaling, quantified.

"After decades of steady gains driven by semiconductor process
improvements, we have run out of the traditional means of increasing
computational capacity. The HPC architecture of today ... will need to
rely on specialization." And §II.A: the Killer-Micro era "lasted from the
early '90s until recently"; Dennard scaling ended "roughly 2005".

The technology model tracks density, frequency, power density and the lit
(non-dark) die fraction across a 2005-2024 roadmap, deriving the
general-purpose throughput trajectory vs a specialised architecture on the
same silicon.

Expected shape: power density rises monotonically once voltage stalls
(Dennard break detected near 2005-2010); the lit fraction collapses toward
~15% (dark silicon); per-generation general-purpose gains fall below 1.3x;
and one specialisation step buys more than two further process shrinks —
the paper's entire premise.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.hardware.technology import (
    GENERAL_PURPOSE,
    SPECIALIZED,
    default_roadmap,
    dennard_break_year,
)


def run_experiment():
    rows = []
    previous_gp = None
    for node in default_roadmap():
        gp = GENERAL_PURPOSE.throughput(node)
        sp = SPECIALIZED.throughput(node)
        gain = gp / previous_gp if previous_gp else float("nan")
        previous_gp = gp
        rows.append(
            (
                node.name,
                node.year,
                node.density,
                node.power_density(),
                node.lit_fraction(),
                gp,
                gain,
                sp,
            )
        )
    return rows


def test_c13_technology_scaling(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C13 (SI/SII.A): process roadmap, dark silicon, and the case for "
        "specialisation",
        ["node", "year", "density (x)", "power density (x)", "lit fraction",
         "GP throughput (x)", "GP gain/gen", "specialised throughput (x)"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C13_technology_scaling",
        table,
        notes=(
            f"Dennard break detected: {dennard_break_year()} (paper: 'roughly\n"
            "2005'). Specialisation multiplier: 40x transistors-to-throughput\n"
            "efficiency — one specialisation step outruns two process nodes."
        ),
    )

    assert 2005 <= dennard_break_year() <= 2011
    lit = [row[4] for row in rows]
    assert lit == sorted(lit, reverse=True)
    assert lit[-1] < 0.2
    # Late-roadmap general-purpose gains have collapsed.
    late_gain = rows[-1][6]
    assert late_gain < 1.4
    # Specialisation today beats general purpose two nodes later.
    roadmap = default_roadmap()
    assert SPECIALIZED.throughput(roadmap[-3]) > GENERAL_PURPOSE.throughput(
        roadmap[-1]
    )
