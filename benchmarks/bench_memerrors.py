"""Memory-error injector overhead: a quiet upset process must be free.

The memory-error layer piggybacks on the fault injector, so arming a
:class:`~repro.resilience.memerrors.MemoryErrorCampaign` whose FIT rate
is too low for any upset to land inside the horizon may not slow the
cluster simulation down measurably (<5% wall time).  Times the same
seeded job trace through an untouched
:class:`~repro.scheduling.cluster.ClusterSimulator` and one carrying an
armed memory-error injector plus the :func:`bind_memory` ECC/kill
binding, and writes the measurement as ``BENCH_memerrors.json`` so CI
can track it.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_memerrors.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.core.rng import RandomSource
from repro.federation import Site, SiteKind
from repro.hardware import Precision, default_catalog
from repro.resilience import (
    FaultInjector,
    MemoryErrorCampaign,
    MemoryErrorSpec,
    RetryPolicy,
    bind_memory,
)
from repro.scheduling.cluster import ClusterSimulator
from repro.scheduling.runtime import estimate_job
from repro.workloads.base import JobClass, make_single_kernel_job

SITE_NAME = "bench"
NODES = 16

#: A FIT rate so low (~one upset per 10^9 years over the pool) that no
#: draw can land inside the horizon: armed but guaranteed upset-free.
QUIET_FIT_PER_GIB = 1e-9
HORIZON = 1e6


def make_jobs(count: int, device, site, seed: int = 29):
    """A seeded trace of single-rank compute-bound jobs, ~100 s each."""
    probe = make_single_kernel_job(
        name="probe", job_class=JobClass.SIMULATION, flops=1e15,
        bytes_moved=1e6, precision=Precision.FP64,
    )
    scale = 1e15 / estimate_job(probe, device, site).time
    rng = RandomSource(seed=seed, name="bench/memerrors")
    jobs = []
    for index in range(count):
        job = make_single_kernel_job(
            name=f"job{index}", job_class=JobClass.SIMULATION,
            flops=scale * rng.uniform(60.0, 140.0),
            bytes_moved=1e6, precision=Precision.FP64,
        )
        job.arrival_time = index * 5.0
        jobs.append(job)
    return jobs


def run_once(jobs, device, site, with_injector: bool) -> float:
    """Wall seconds for one full cluster run; asserts zero upsets fired."""
    cluster = ClusterSimulator(
        site=site, device=device,
        retry_policy=RetryPolicy(jitter=0.0) if with_injector else None,
    )
    stats = None
    if with_injector:
        campaign = MemoryErrorCampaign(
            horizon=HORIZON,
            memory=(
                MemoryErrorSpec(
                    region=SITE_NAME,
                    capacity_bytes=NODES * 512e9,
                    fit_per_gib=QUIET_FIT_PER_GIB,
                ),
            ),
        )
        injector = FaultInjector(
            cluster.simulation, campaign, RandomSource(seed=7, name="mem")
        )
        stats = bind_memory(
            injector, cluster,
            rng=RandomSource(seed=7, name="mem").fork("memvictim"),
            region=SITE_NAME,
        )
        injector.install()
    started = time.perf_counter()
    for job in jobs:
        cluster.submit(job)
    cluster.run()
    elapsed = time.perf_counter() - started
    if stats is not None and stats.total != 0:
        raise RuntimeError("benchmark invariant broken: an upset fired")
    return elapsed


def best_of(repeats: int, jobs, device, site, with_injector: bool) -> float:
    """Minimum wall time over ``repeats`` runs (noise floor estimate)."""
    return min(
        run_once(jobs, device, site, with_injector) for _ in range(repeats)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=3_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 3 repeats x 1000 jobs")
    parser.add_argument("--output", default="BENCH_memerrors.json")
    args = parser.parse_args()
    if args.quick:
        args.repeats, args.jobs = 3, 1_000

    device = default_catalog().get("epyc-class-cpu")
    site = Site(name=SITE_NAME, kind=SiteKind.ON_PREMISE, devices={device: NODES})
    jobs = make_jobs(args.jobs, device, site)

    # Interleave: warm-up pass first, then alternate to share any drift.
    run_once(jobs, device, site, with_injector=False)
    bare = best_of(args.repeats, jobs, device, site, with_injector=False)
    armed = best_of(args.repeats, jobs, device, site, with_injector=True)
    overhead_pct = 100.0 * (armed - bare) / bare if bare else 0.0

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "memerror_injector_overhead",
        "workload": {
            "jobs": args.jobs,
            "nodes": NODES,
            "repeats": args.repeats,
            "quiet_fit_per_gib": QUIET_FIT_PER_GIB,
        },
        "bare_seconds": bare,
        "armed_seconds": armed,
        "overhead_pct": overhead_pct,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"bare {bare:.3f}s  armed {armed:.3f}s  "
          f"overhead {overhead_pct:+.2f}%")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
