"""Experiment C7 — §II.C: cloud noise breaks barrier synchronisation.

"The biggest issue for cloud computing to widen the HPC adoption is the
built-in sharing of infrastructure and the interference of other
applications ... that creates noise and makes barrier-based
synchronizations ineffective (the slowest component dictates performance)."

We sweep the rank count of a BSP application against per-rank noise levels
representative of a tuned supercomputer stack (cv 0.3%), a good on-premise
cluster (1%), and two shared-cloud levels (5%, 8%), reporting the expected
superstep slowdown from order statistics — plus a Monte-Carlo validation
column and a heavy-tail ablation.

Expected shape: slowdown grows ~ cv * sqrt(2 ln P); cloud noise costs >25%
at 4k ranks and keeps growing, while the supercomputer stays within 2%;
embarrassingly parallel (rank-1) jobs are immune at any noise level —
exactly why "only applications ... with infrequent synchronization ...
were possible to execute in Cloud".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.scheduling.noise import NoiseModel, bsp_slowdown

RANKS = (1, 16, 256, 4096, 65_536)
NOISE_LEVELS = (
    ("supercomputer", 0.003),
    ("on-premise", 0.01),
    ("shared cloud (good)", 0.05),
    ("shared cloud (busy)", 0.08),
)


def run_experiment():
    rows = []
    rng = RandomSource(seed=303, name="noise-mc")
    for label, cv in NOISE_LEVELS:
        model = NoiseModel(noise_cv=cv)
        for ranks in RANKS:
            analytic = bsp_slowdown(ranks, cv)
            if ranks <= 4096:
                samples = [
                    model.sample_superstep(ranks, 1.0, rng) for _ in range(200)
                ]
                monte_carlo = float(np.mean(samples))
            else:
                monte_carlo = float("nan")
            rows.append((label, cv, ranks, analytic, monte_carlo))
    return rows


def heavy_tail_ablation():
    """Stragglers (daemon wakeups, page migrations) on top of base noise."""
    rows = []
    for probability in (0.0, 0.001, 0.01):
        model = NoiseModel(
            noise_cv=0.05,
            heavy_tail_probability=probability,
            heavy_tail_magnitude=3.0,
        )
        rows.append((probability, model.expected_slowdown(1024)))
    return rows


def test_c7_cloud_noise(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C7 (SII.C): expected BSP superstep slowdown (max over noisy ranks)",
        ["environment", "noise cv", "ranks", "analytic slowdown", "Monte-Carlo"],
    )
    for row in rows:
        table.add_row(*row)

    ablation = heavy_tail_ablation()
    ablation_table = Table(
        "C7 ablation: heavy-tail stragglers at 1024 ranks (cv=5%)",
        ["straggler probability", "expected slowdown"],
    )
    for row in ablation:
        ablation_table.add_row(*row)

    record(
        "C7_cloud_noise",
        table,
        notes=(
            "Paper claim: 'the slowest component dictates performance' —\n"
            "noise slowdown grows like cv*sqrt(2 ln P), unbounded in P.\n\n"
            + ablation_table.render()
        ),
    )

    slowdown = {(label, ranks): s for label, _, ranks, s, _ in rows}
    # Rank-1 jobs immune everywhere.
    assert all(slowdown[(label, 1)] == 1.0 for label, _ in NOISE_LEVELS)
    # Supercomputer stays within 2% even at extreme scale.
    assert slowdown[("supercomputer", 65_536)] < 1.02
    # Busy cloud loses >= 25% at 4k ranks and keeps degrading.
    assert slowdown[("shared cloud (busy)", 4096)] > 1.25
    assert slowdown[("shared cloud (busy)", 65_536)] > slowdown[
        ("shared cloud (busy)", 4096)
    ]
    # Monotone in both axes.
    for label, _ in NOISE_LEVELS:
        series = [slowdown[(label, ranks)] for ranks in RANKS]
        assert series == sorted(series)
    # Heavy tails strictly worsen expectations.
    probabilities = [s for _, s in heavy_tail_ablation()]
    assert probabilities == sorted(probabilities)
