"""Synchronized-burst fabric workload shared by the benchmark scripts.

The classic fabric point (uniform arrivals at sub-unity load) keeps only a
few dozen flows concurrent, so the rate solver is a minority of its wall
time and Amdahl caps any solver speedup near 1x.  Real fabrics *do* see
hundreds of simultaneous flows — collective onset, checkpoint microbursts,
incast — and that is where water-filling cost explodes: the reference
loop is O(flows x links) per round with O(flows) rounds.  This module
models that regime: every flow starts within a microsecond window, so the
solver sees the full trace concurrently and the vectorised incremental
solver's advantage is measured where it matters.

Used by ``bench_kernel.py`` (BENCH_kernel.json) and
``bench_route_cache.py`` (BENCH_fabric.json); both record the reference
baseline, the numpy figure, their speedup, and a bit-identity verdict
over the full FlowStats lists.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.rng import RandomSource
from repro.interconnect.congestion import congestion_policy
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.topology import build_topology

#: The burst topology: mid-size dragonfly, 64 terminals.
BURST_TOPOLOGY = {"groups": 8, "routers_per_group": 4, "terminals": 2}

#: Burst sizes: the full benchmark point and the CI smoke point.
BURST_FLOWS = 768
BURST_FLOWS_QUICK = 320

#: CI smoke gate: the numpy solver must beat the reference by at least
#: this factor on the quick burst (the full point targets >= 4x).
MIN_QUICK_SPEEDUP = 2.0


def burst_trace(topology, count: int, seed: int = 7) -> List[Flow]:
    """``count`` elephant flows, all arriving within a microsecond window.

    Flow ids are pinned so traces regenerated per run compare bit-equal
    across solvers (``Flow`` otherwise draws ids from a global counter).
    """
    rng = RandomSource(seed=seed, name="bench/fabric-burst")
    terminals = list(topology.terminals)
    trace = []
    for index in range(count):
        source, destination = rng.sample(terminals, 2)
        trace.append(
            Flow(
                source=source, destination=destination, size=2e6,
                start_time=index * 1e-6, flow_id=50_000 + index,
            )
        )
    return trace


def _run_once(topology, flows: int, solver: str) -> Tuple[float, list]:
    trace = burst_trace(topology, flows)
    simulator = FabricSimulator(
        topology,
        congestion=congestion_policy("flow"),
        reroute_adaptively=True,
        solver=solver,
    )
    started = time.perf_counter()
    stats = simulator.run(trace)
    return time.perf_counter() - started, stats


def measure_burst(flows: int, reps: int) -> Dict[str, object]:
    """Best-of-``reps`` burst runs under both solvers, reps interleaved.

    Interleaving (reference, numpy, reference, numpy, ...) spreads host
    noise across both solvers instead of letting one absorb a slow
    stretch.  Returns a JSON-ready section with per-solver walls,
    flows/sec, the speedup, and whether the two solvers' FlowStats are
    bit-identical.
    """
    topology = build_topology("dragonfly", **BURST_TOPOLOGY)
    best: Dict[str, float] = {}
    stats_of: Dict[str, list] = {}
    _run_once(topology, min(flows, 64), "numpy")  # warm caches untimed
    for _ in range(reps):
        for solver in ("reference", "numpy"):
            wall, stats = _run_once(topology, flows, solver)
            if solver not in best or wall < best[solver]:
                best[solver] = wall
            stats_of[solver] = stats
    reference, numpy_stats = stats_of["reference"], stats_of["numpy"]
    identical = len(reference) == len(numpy_stats) and all(
        ours.flow_id == theirs.flow_id
        and ours.completion_time == theirs.completion_time
        and ours.size == theirs.size
        for ours, theirs in zip(reference, numpy_stats)
    )
    return {
        "topology": "dragonfly(8x4x2)",
        "congestion": "flow + adaptive reroute",
        "flows": flows,
        "reference": {
            "wall_seconds": best["reference"],
            "flows_per_sec": flows / best["reference"],
        },
        "numpy": {
            "wall_seconds": best["numpy"],
            "flows_per_sec": flows / best["numpy"],
        },
        "speedup": best["reference"] / best["numpy"],
        "identical": identical,
    }
