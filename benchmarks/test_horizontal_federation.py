"""Experiment C20 — §IV: horizontal federation driven by economics.

"Horizontal federation is the distribution of applications across
different service providers and on premise data centers ... Horizontal
federation is driven by economics, to optimize the infrastructure vs
workload fluctuation." And §III.F: federation exists "to increase
resources utilization and access to a broader set of systems through
facilitated sharing between sites."

Setup: two equally-sized sites in time zones twelve hours apart, each with
a diurnal job trace peaking in its local daytime (anti-phase demand). We
compare:

* **isolated** — each site runs only its own trace,
* **federated** — one meta-scheduler places both traces over both sites.

Expected shape: federation cuts the mean queue wait by a large factor
(each site's peak lands in the other's trough) while serving the identical
workload on the identical hardware — utilisation smoothing is pure gain.
"""

from __future__ import annotations

import pytest

import math

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.federation import Federation, Site, SiteKind, WanLink
from repro.hardware import Precision, default_catalog
from repro.scheduling import MetaScheduler, PlacementPolicy
from repro.workloads.base import JobClass, make_single_kernel_job

DAY = 86_400.0
SITE_CPUS = 24
JOBS_PER_SITE = 250


def build_federation():
    catalog = default_catalog()
    cpu = catalog.get("epyc-class-cpu")
    federation = Federation(name="c20")
    east = Site(name="east", kind=SiteKind.ON_PREMISE, devices={cpu: SITE_CPUS})
    west = Site(name="west", kind=SiteKind.ON_PREMISE, devices={cpu: SITE_CPUS})
    federation.add_site(east)
    federation.add_site(west)
    federation.connect(east, west, WanLink(bandwidth=2.5e9, latency=0.04))
    return federation


def diurnal_trace(phase_shift: float, seed: int, label: str):
    """Saturation-scale compute jobs with a strong local-daytime peak.

    Jobs carry no datasets (staging is not the phenomenon here): pure CPU
    work whose offered load averages ~60% of one site's capacity but
    exceeds it at the local peak — the fluctuation federation smooths.
    """
    rng = RandomSource(seed=seed, name=f"c20-{label}")
    jobs = []
    base_rate = JOBS_PER_SITE / DAY
    now = 0.0
    peak_rate = base_rate * 1.9
    while len(jobs) < JOBS_PER_SITE:
        now += rng.exponential(1.0 / peak_rate)
        if now > DAY:
            break
        phase = 2.0 * math.pi * (now - phase_shift) / DAY
        rate = base_rate * (1.0 + 0.9 * math.sin(phase))
        if rng.uniform() > rate / peak_rate:
            continue  # thinning
        ranks = int(rng.choice([4, 8, 16], weights=[0.3, 0.4, 0.3]))
        runtime_target = rng.lognormal(700.0, 0.5)  # ~12 min median per rank
        flops = runtime_target * 2.9e12  # CPU FP32 sustained rate
        job = make_single_kernel_job(
            name=f"{label}-{len(jobs)}",
            job_class=JobClass.ANALYTICS,
            flops=flops,
            bytes_moved=flops / 50,
            precision=Precision.FP32,
            ranks=ranks,
        )
        job.arrival_time = now
        jobs.append(job)
    return jobs


def run_experiment():
    east_trace = diurnal_trace(phase_shift=0.0, seed=7, label="east")
    west_trace = diurnal_trace(phase_shift=DAY / 2, seed=8, label="west")

    # Isolated: each site schedules only its own trace.
    isolated_waits = []
    isolated_counts = 0
    for home, trace in (("east", east_trace), ("west", west_trace)):
        federation = build_federation()
        scheduler = MetaScheduler(
            federation, policy=PlacementPolicy.HOME_ONLY,
            home_site=federation.site(home),
        )
        records = scheduler.run(list(trace))
        isolated_waits.extend(r.queue_wait for r in records)
        isolated_counts += len(records)

    # Federated: one scheduler over both sites and traces.
    federation = build_federation()
    scheduler = MetaScheduler(federation, policy=PlacementPolicy.BEST_SILICON)
    records = scheduler.run(list(east_trace) + list(west_trace))
    federated_waits = [r.queue_wait for r in records]

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    return {
        "isolated_jobs": isolated_counts,
        "federated_jobs": len(records),
        "isolated_mean_wait": mean(isolated_waits),
        "federated_mean_wait": mean(federated_waits),
        "isolated_max_wait": max(isolated_waits, default=0.0),
        "federated_max_wait": max(federated_waits, default=0.0),
        "cross_site_fraction": (
            sum(1 for d in scheduler.decisions if d.site.name == "west") /
            max(len(scheduler.decisions), 1)
        ),
    }


def test_c20_horizontal_federation(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C20 (SIV): anti-phase diurnal demand, isolated vs federated sites",
        ["metric", "isolated", "federated"],
    )
    table.add_row("jobs served", results["isolated_jobs"], results["federated_jobs"])
    table.add_row(
        "mean queue wait (s)",
        results["isolated_mean_wait"],
        results["federated_mean_wait"],
    )
    table.add_row(
        "max queue wait (s)",
        results["isolated_max_wait"],
        results["federated_max_wait"],
    )
    record(
        "C20_horizontal_federation",
        table,
        notes=(
            "Paper claim (SIV): horizontal federation optimises 'the\n"
            "infrastructure vs workload fluctuation'. Same jobs, same total\n"
            "hardware; federation lets each site's peak ride the other's\n"
            f"trough. Fraction of federated placements on 'west': "
            f"{results['cross_site_fraction']:.2f}."
        ),
    )

    assert results["federated_jobs"] == results["isolated_jobs"]
    # The headline: federation slashes queueing under anti-phase load.
    assert results["federated_mean_wait"] < results["isolated_mean_wait"] * 0.6
    assert results["federated_max_wait"] <= results["isolated_max_wait"]
    # Load genuinely spreads across both sites.
    assert 0.2 < results["cross_site_fraction"] < 0.8
