"""Supervisor overhead benchmark: supervised vs bare-pool execution.

Runs the same sweep through the bare ``multiprocessing`` pool and through
the fault-tolerant supervisor (same worker count, no faults injected),
checks the two runs are bit-identical, and writes ``BENCH_supervisor.json``
with the relative overhead.  The supervision tax — pipes, per-point
dispatch, journal-free bookkeeping — must stay **under 5%** on the
congestion-style sweeps whose per-point cost it exists to protect; CI
gates on ``overhead_pct``.

Each mode runs ``--reps`` times and the best (minimum) wall time is kept,
so a scheduler hiccup in either mode cannot fake an overhead regression.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_supervisor.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib

from repro.sweep import named_sweep, run_sweep

#: CI gate: supervised wall time may exceed the bare pool's by this much.
MAX_OVERHEAD_PCT = 5.0


def best_wall(spec, workers: int, reps: int, supervised: bool):
    """Best-of-``reps`` (result, wall_seconds) for one execution mode."""
    best = None
    for _ in range(reps):
        result = run_sweep(spec, workers=workers, supervised=supervised)
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", default="congestion",
                        choices=("congestion", "smoke"))
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for both modes "
                             "(default: min(4, cpu_count))")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per mode; best wall time is kept")
    parser.add_argument("--quick", action="store_true",
                        help="2 reps per mode — the CI configuration "
                             "(the sweep stays full-size: the gate needs "
                             "real per-point cost, not spawn latency)")
    parser.add_argument("--output", default="BENCH_supervisor.json")
    args = parser.parse_args()
    if args.quick:
        args.reps = 2
    workers = args.workers or min(4, os.cpu_count() or 1)

    spec = named_sweep(args.sweep)
    bare = best_wall(spec, workers, args.reps, supervised=False)
    supervised = best_wall(spec, workers, args.reps, supervised=True)
    identical = bare.fingerprint() == supervised.fingerprint()
    overhead_pct = (
        (supervised.wall_seconds - bare.wall_seconds)
        / bare.wall_seconds * 100.0
        if bare.wall_seconds else float("inf")
    )

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "supervisor_overhead",
        "sweep": spec.name,
        "points": len(bare.points),
        "workers": workers,
        "reps": args.reps,
        "bare_seconds": bare.wall_seconds,
        "supervised_seconds": supervised.wall_seconds,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "bit_identical": identical,
        "fingerprint": bare.fingerprint(),
        "harness": supervised.harness,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"{len(bare.points)} points x {workers} workers: "
          f"bare {bare.wall_seconds:.2f}s, "
          f"supervised {supervised.wall_seconds:.2f}s "
          f"(overhead {overhead_pct:+.1f}%, bit-identical: {identical})")
    print(f"wrote {path}")
    if not identical:
        print("ERROR: supervised run diverged from the bare pool")
        return 1
    if overhead_pct > MAX_OVERHEAD_PCT:
        print(f"ERROR: supervision overhead {overhead_pct:.1f}% exceeds "
              f"the {MAX_OVERHEAD_PCT:.0f}% budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
