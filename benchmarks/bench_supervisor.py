"""Supervisor overhead benchmark: supervised, bare-pool and tcp fleet.

Runs the same sweep through the bare ``multiprocessing`` pool, through
the fault-tolerant supervisor (same worker count, no faults injected)
and through the ``tcp`` backend sharding over loopback worker hosts,
checks all runs are bit-identical, and writes ``BENCH_supervisor.json``
with the relative overheads.  The supervision tax — pipes, per-point
dispatch, journal-free bookkeeping — must stay **under 5%** over the
bare pool, and the coordinator tax — socket frames, heartbeats,
host-side scheduling — **under 5%** over the supervised pool, on the
congestion-style sweeps whose per-point cost they exist to protect; CI
gates on ``overhead_pct`` and ``tcp_overhead_pct``.

The modes are *interleaved*: each repetition runs bare, then supervised,
then tcp, and the best (minimum) wall time per mode is kept — a slow
system phase lands on every mode instead of biasing whichever one a
block-sequential schedule happened to run through it.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_supervisor.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib

from repro.sweep import FleetConfig, named_sweep, run_sweep

#: CI gate: supervised wall time may exceed the bare pool's by this
#: much, and the tcp coordinator's the supervised pool's by the same.
MAX_OVERHEAD_PCT = 5.0

#: Loopback worker hosts the tcp mode shards over (when the local
#: worker count divides across them; otherwise one host takes every
#: slot so total slots always equal the local modes' worker count).
TCP_HOSTS = 2


def _worker_main(port: int, name: str, slots: int) -> None:
    """A long-lived loopback worker host: serve sweeps until killed.

    Mirrors a production ``repro sweep-worker`` daemon — ``run_worker``
    returns 0 after each orderly shutdown frame and the host dials the
    (fixed) coordinator port again for the next repetition.
    """
    from repro.sweep.remote_worker import run_worker

    while run_worker(
        f"127.0.0.1:{port}", slots=slots, name=name, connect_timeout=60.0
    ) == 0:
        pass


def _free_port() -> int:
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _TcpFleet:
    """Long-lived loopback worker hosts reused across repetitions.

    Total fleet slots match the local modes' worker count so the
    comparison isolates coordination overhead, not parallelism.  The
    worker-host processes boot once and reconnect for each repetition:
    hosts are long-lived daemons in production, so their boot cost is
    deployment latency, not the per-sweep coordination tax this gate
    protects.
    """

    def __init__(self, workers: int) -> None:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self.hosts = (
            TCP_HOSTS
            if workers >= TCP_HOSTS and workers % TCP_HOSTS == 0
            else 1
        )
        slots = workers // self.hosts
        self.port = _free_port()
        self.processes = [
            context.Process(
                target=_worker_main, args=(self.port, f"bench{rank}", slots)
            )
            for rank in range(self.hosts)
        ]
        for process in self.processes:
            process.start()

    def run(self, spec):
        return run_sweep(
            spec, backend="tcp", timeout=600.0,
            fleet=FleetConfig(
                listen=f"127.0.0.1:{self.port}",
                min_hosts=self.hosts, wait_for_hosts=60.0,
            ),
        )

    def stop(self) -> None:
        for process in self.processes:
            process.terminate()
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", default="congestion",
                        choices=("congestion", "smoke"))
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for both modes "
                             "(default: min(4, cpu_count))")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per mode; best wall time is kept")
    parser.add_argument("--quick", action="store_true",
                        help="2 reps per mode — the CI configuration "
                             "(the sweep stays full-size: the gate needs "
                             "real per-point cost, not spawn latency)")
    parser.add_argument("--skip-tcp", action="store_true",
                        help="skip the tcp-fleet mode (local modes only)")
    parser.add_argument("--output", default="BENCH_supervisor.json")
    args = parser.parse_args()
    if args.quick:
        args.reps = 2
    workers = args.workers or min(4, os.cpu_count() or 1)

    spec = named_sweep(args.sweep)
    best = {}

    def keep(mode, result):
        if (
            mode not in best
            or result.wall_seconds < best[mode].wall_seconds
        ):
            best[mode] = result

    fleet = None if args.skip_tcp else _TcpFleet(workers)
    try:
        for _ in range(args.reps):
            keep("bare", run_sweep(spec, workers=workers, supervised=False))
            keep("supervised",
                 run_sweep(spec, workers=workers, supervised=True))
            if fleet is not None:
                keep("tcp", fleet.run(spec))
    finally:
        if fleet is not None:
            fleet.stop()
    bare = best["bare"]
    supervised = best["supervised"]
    tcp = best.get("tcp")
    identical = bare.fingerprint() == supervised.fingerprint()
    overhead_pct = (
        (supervised.wall_seconds - bare.wall_seconds)
        / bare.wall_seconds * 100.0
        if bare.wall_seconds else float("inf")
    )

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "supervisor_overhead",
        "sweep": spec.name,
        "points": len(bare.points),
        "workers": workers,
        "reps": args.reps,
        "bare_seconds": bare.wall_seconds,
        "supervised_seconds": supervised.wall_seconds,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "bit_identical": identical,
        "fingerprint": bare.fingerprint(),
        "harness": supervised.harness,
        "cpu_count": os.cpu_count(),
    }
    if tcp is not None:
        tcp_identical = tcp.fingerprint() == bare.fingerprint()
        tcp_overhead_pct = (
            (tcp.wall_seconds - supervised.wall_seconds)
            / supervised.wall_seconds * 100.0
            if supervised.wall_seconds else float("inf")
        )
        document.update({
            "tcp_seconds": tcp.wall_seconds,
            "tcp_overhead_pct": tcp_overhead_pct,
            "tcp_hosts": fleet.hosts,
            "tcp_bit_identical": tcp_identical,
        })
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"{len(bare.points)} points x {workers} workers: "
          f"bare {bare.wall_seconds:.2f}s, "
          f"supervised {supervised.wall_seconds:.2f}s "
          f"(overhead {overhead_pct:+.1f}%, bit-identical: {identical})")
    if tcp is not None:
        print(f"tcp over {fleet.hosts} loopback host(s): "
              f"{tcp.wall_seconds:.2f}s "
              f"(overhead {tcp_overhead_pct:+.1f}% vs supervised, "
              f"bit-identical: {tcp_identical})")
    print(f"wrote {path}")
    if not identical:
        print("ERROR: supervised run diverged from the bare pool")
        return 1
    if overhead_pct > MAX_OVERHEAD_PCT:
        print(f"ERROR: supervision overhead {overhead_pct:.1f}% exceeds "
              f"the {MAX_OVERHEAD_PCT:.0f}% budget")
        return 1
    if tcp is not None:
        if not tcp_identical:
            print("ERROR: tcp fleet run diverged from the bare pool")
            return 1
        if tcp_overhead_pct > MAX_OVERHEAD_PCT:
            print(f"ERROR: tcp coordination overhead {tcp_overhead_pct:.1f}% "
                  f"exceeds the {MAX_OVERHEAD_PCT:.0f}% budget")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
