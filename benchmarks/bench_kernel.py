"""Kernel/fabric hot-path macro-benchmark: events/sec, flows/sec, profiler tax.

Tracks ROADMAP item 1's speed trajectory PR-over-PR with three throughput
figures and the wall-clock profiler's overhead:

* **C16 events/sec** — the kernel-heavy resilience-churn profile, measured
  as ``sim.events.fired / wall``; the purest dispatch-loop number,
* **F3 events/sec + jobs/sec** — the bursting profile, a mixed
  kernel/cluster path,
* **flows/sec** — one congestion-heavy ``fabric-congestion`` point
  (dragonfly, flow-adaptive policy, 0.95 load), the fabric solver path,
  run under both rate solvers,
* **burst flows/sec** — the synchronized-burst point
  (:mod:`fabric_burst`): hundreds of concurrent flows, where the
  ``"numpy"`` solver must beat the ``"reference"`` baseline (>= 4x on the
  full point; the ``--quick`` CI gate requires >= 2x on the smoke size)
  while producing bit-identical FlowStats.

The profiler-overhead gate is **attributed**, not raced: the per-event
cost of ``ProfilingKernelProbe`` over the plain ``KernelProbe`` is
measured with a chunked tight loop (minimum chunk rejects CPU steal),
multiplied by the events a scaled C16 run fires, and divided by that
run's CPU time.  Macro A/B wall ratios are *also* recorded, but only as
informational fields: on a shared host their noise floor (±5-30 %
observed on back-to-back identical runs) swamps a 5 % signal at any
feasible run length, while the attributed figure is stable to a few
tenths of a percent.  CI gates the attributed enabled-profiler tax at
**under 5%** and requires the profiled run's model outputs to be
bit-identical; the disabled-profiler path is additionally checked
*structurally* — with the profiler off the telemetry layer must build the
plain ``KernelProbe``, so its tax is the one ``is not None`` test per
operation by construction.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import fabric_burst

from repro import profiles
from repro.core.rng import RandomSource
from repro.observability import KernelProbe, PhaseProfiler, Telemetry
from repro.observability.probes import ProfilingKernelProbe
from repro.sweep import resolve_target

#: CI gate: attaching a profiler (off or on) may cost at most this much.
MAX_OVERHEAD_PCT = 5.0

#: The congestion-heavy fabric point used for the flows/sec figure.
FABRIC_POINT = {
    "topology": "dragonfly",
    "congestion": "flow-adaptive",
    "load": 0.95,
    "flows": 256,
}

#: A scaled-up C16 for the overhead gate: the default profile finishes in
#: ~10 ms, far too short to resolve a 5% tax above scheduler noise.  More
#: jobs over a longer trace push one run well past 100 ms so the
#: per-event cost dominates the measurement.
OVERHEAD_POINT = {
    "max_jobs": 2_000,
    "duration": 300_000.0,
    "horizon": 900_000.0,
    "arrival_rate": 0.4,
}


def bench_profile(name: str, reps: int, profiler_mode: str = "none", **overrides):
    """Best-of-``reps`` run of one profile; returns a stats dict.

    ``profiler_mode`` is ``"none"`` (no profiler object at all),
    ``"off"`` (a disabled :class:`PhaseProfiler` attached — the branch
    every hot path still has to test) or ``"on"``.

    ``cpu_seconds`` (``time.process_time``) rides along for the overhead
    gate: the profiler's tax is pure CPU, and CPU time — unlike wall
    time — is immune to the host descheduling the benchmark, so the gate
    doesn't flake on busy machines.
    """
    best = None
    for _ in range(reps):
        profiler = None
        if profiler_mode == "off":
            profiler = PhaseProfiler(enabled=False)
        elif profiler_mode == "on":
            profiler = PhaseProfiler()
        telemetry = Telemetry(profiler=profiler)
        cpu_start = time.process_time()
        start = time.perf_counter()
        result = profiles.run(name, telemetry, **overrides)
        wall = time.perf_counter() - start
        cpu = time.process_time() - cpu_start
        events = telemetry.metrics.get("sim.events.fired").total()
        if best is None or cpu < best["cpu_seconds"]:
            best = {
                "wall_seconds": wall,
                "cpu_seconds": cpu,
                "events": events,
                "events_per_sec": events / wall if wall else 0.0,
                "summary": {label: value for label, value in result.summary},
            }
    return best


def probe_cost_ns(chunks: int = 30, chunk_iterations: int = 10_000) -> float:
    """Per-event cost (ns) of the profiling probe over the plain probe.

    Runs the ``on_fire_start``/``on_fire`` pair in a tight loop, chunked;
    the *minimum* chunk is kept for each probe because host interference
    (CPU steal, frequency dips) only ever adds time.  The difference is
    the tax the profiler charges each kernel event.
    """

    class _Event:
        __slots__ = ("callback",)

        def __init__(self, callback):
            self.callback = callback

    event = _Event(lambda: None)

    def best_pair_ns(probe) -> float:
        start_hook, fire_hook = probe.on_fire_start, probe.on_fire
        best = float("inf")
        for _ in range(chunks):
            begin = time.perf_counter()
            for _ in range(chunk_iterations):
                start_hook(None, event)
                fire_hook(None, event)
            elapsed = time.perf_counter() - begin
            best = min(best, elapsed / chunk_iterations)
        return best * 1e9

    plain = KernelProbe(Telemetry())
    profiling = ProfilingKernelProbe(Telemetry(profiler=PhaseProfiler()))
    return max(0.0, best_pair_ns(profiling) - best_pair_ns(plain))


def bench_fabric(reps: int, solver: str = "reference"):
    """Best-of-``reps`` run of the congestion-heavy fabric point."""
    target = resolve_target("fabric-congestion")
    best = None
    for _ in range(reps):
        telemetry = Telemetry()
        point = dict(FABRIC_POINT, solver=solver)
        start = time.perf_counter()
        metrics = target(point, telemetry, RandomSource(seed=7))
        wall = time.perf_counter() - start
        flows = metrics["flows_finished"]
        if best is None or wall < best["wall_seconds"]:
            best = {
                "wall_seconds": wall,
                "flows": flows,
                "flows_per_sec": flows / wall if wall else 0.0,
                "congestion_events": metrics["congestion_events"],
            }
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per mode; best wall time is kept")
    parser.add_argument("--quick", action="store_true",
                        help="2 reps per mode — the CI configuration")
    parser.add_argument("--output", default="BENCH_kernel.json")
    args = parser.parse_args()
    reps = 2 if args.quick else args.reps

    # Untimed warm-up: the first run of each path pays imports and cache
    # fills that would otherwise land on whichever mode runs first.
    bench_profile("C16", 1, profiler_mode="on")
    bench_profile("F3", 1)
    bench_fabric(1)

    c16 = bench_profile("C16", reps)
    f3 = bench_profile("F3", reps)
    fabric = bench_fabric(reps)
    fabric_numpy = bench_fabric(reps, solver="numpy")
    burst = fabric_burst.measure_burst(
        fabric_burst.BURST_FLOWS_QUICK if args.quick
        else fabric_burst.BURST_FLOWS,
        reps=2,
    )

    # Macro A/B CPU ratios (paired rounds, best-of): informational only —
    # see the module docstring for why the gate can't be built on them.
    best = {"none": None, "off": None, "on": None}
    for _ in range(max(reps, 3)):
        for mode in best:
            sample = bench_profile("C16", 1, profiler_mode=mode,
                                   **OVERHEAD_POINT)
            if (best[mode] is None
                    or sample["cpu_seconds"] < best[mode]["cpu_seconds"]):
                best[mode] = sample
    base, c16_off, c16_on = best["none"], best["off"], best["on"]
    macro_off_pct = (
        c16_off["cpu_seconds"] / base["cpu_seconds"] - 1.0) * 100.0
    macro_on_pct = (
        c16_on["cpu_seconds"] / base["cpu_seconds"] - 1.0) * 100.0

    # The gated figure: per-event probe tax, attributed over the run.
    per_event_ns = probe_cost_ns()
    on_pct = (
        per_event_ns * 1e-9 * base["events"] / base["cpu_seconds"] * 100.0
        if base["cpu_seconds"] else float("inf")
    )

    # With the profiler disabled the plain probe must be chosen — the
    # disabled path's tax is one `is not None` test by construction.
    off_structural = isinstance(
        Telemetry(profiler=PhaseProfiler(enabled=False))._make_probe(),
        KernelProbe,
    ) and not isinstance(
        Telemetry(profiler=PhaseProfiler(enabled=False))._make_probe(),
        ProfilingKernelProbe,
    )

    # The profiler observes; it must never change what the model computes.
    deterministic = (
        base["events"] == c16_off["events"] == c16_on["events"]
        and base["summary"] == c16_off["summary"] == c16_on["summary"]
    )

    document = {
        "schema": "repro.bench/v1",
        "benchmark": "kernel_throughput",
        "reps": reps,
        "c16": c16,
        "f3": {
            **f3,
            "jobs_per_sec": (
                f3["summary"].get("jobs finished", 0.0) / f3["wall_seconds"]
                if f3["wall_seconds"] else 0.0
            ),
        },
        "fabric": {
            **fabric,
            "numpy": fabric_numpy,
            "solver_speedup": (
                fabric["wall_seconds"] / fabric_numpy["wall_seconds"]
                if fabric_numpy["wall_seconds"] else float("inf")
            ),
        },
        "fabric_burst": burst,
        "min_quick_burst_speedup": fabric_burst.MIN_QUICK_SPEEDUP,
        "overhead_point": OVERHEAD_POINT,
        "overhead_base_cpu_seconds": base["cpu_seconds"],
        "overhead_events": base["events"],
        "probe_cost_ns_per_event": per_event_ns,
        "profiler_on_overhead_pct": on_pct,
        "profiler_off_structural": off_structural,
        "macro_off_overhead_pct": macro_off_pct,
        "macro_on_overhead_pct": macro_on_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "deterministic": deterministic,
        "cpu_count": os.cpu_count(),
    }
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"C16: {c16['events_per_sec']:,.0f} events/s "
          f"({c16['events']:.0f} events in {c16['wall_seconds']:.3f}s)")
    print(f"F3:  {f3['events_per_sec']:,.0f} events/s, "
          f"{document['f3']['jobs_per_sec']:,.0f} jobs/s")
    print(f"fabric: {fabric['flows_per_sec']:,.0f} flows/s reference, "
          f"{fabric_numpy['flows_per_sec']:,.0f} flows/s numpy "
          f"({fabric['flows']:.0f} flows; "
          f"{document['fabric']['solver_speedup']:.2f}x)")
    print(f"burst ({burst['flows']} flows): "
          f"{burst['reference']['flows_per_sec']:,.0f} flows/s reference, "
          f"{burst['numpy']['flows_per_sec']:,.0f} flows/s numpy "
          f"= {burst['speedup']:.2f}x, identical={burst['identical']}")
    print(f"profiler tax on C16: {per_event_ns:.0f} ns/event attributed "
          f"= {on_pct:+.2f}% (budget {MAX_OVERHEAD_PCT:.0f}%); "
          f"macro A/B (informational): off {macro_off_pct:+.1f}%, "
          f"on {macro_on_pct:+.1f}%; "
          f"off-path structural: {off_structural}, "
          f"deterministic: {deterministic}")
    print(f"wrote {path}")
    if not deterministic:
        print("ERROR: attaching the profiler changed model results")
        return 1
    if not off_structural:
        print("ERROR: disabled profiler did not select the plain KernelProbe")
        return 1
    if on_pct > MAX_OVERHEAD_PCT:
        print(f"ERROR: enabled-profiler overhead {on_pct:.2f}% exceeds "
              f"the {MAX_OVERHEAD_PCT:.0f}% budget")
        return 1
    if not burst["identical"]:
        print("ERROR: numpy and reference solvers disagree on the burst "
              "FlowStats")
        return 1
    if args.quick and burst["speedup"] < fabric_burst.MIN_QUICK_SPEEDUP:
        print(f"ERROR: numpy solver only {burst['speedup']:.2f}x the "
              f"reference on the quick burst (gate "
              f"{fabric_burst.MIN_QUICK_SPEEDUP:.1f}x)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
