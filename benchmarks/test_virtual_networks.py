"""Experiment C15 — §III.C: per-application virtual networks, zero trust.

"The system will instantiate a virtual network for each application or
workflow, a secure environment with strong service level guarantees ...
The network will protect itself from the tenants 'zero trust' and isolate
them from each other. Integration of strong encryption in the network with
that in the CPUs will ensure that data can only be accessed by its owners."

Setup: two tenants on one dragonfly — an aggressor running a 10-degree
elephant incast and a victim running latency-sensitive mice through the
same region of the fabric. We compare the victim's p99 FCT on a shared
best-effort fabric vs hardware slices, and measure the encryption tax on
the secure slice.

Expected shape: shared fabric leaks the aggressor's congestion into the
victim tenant (multiple-x p99 inflation); slicing restores the victim to
its run-alone latency exactly; encryption costs a bounded constant
(< ~50% on small flows, amortising to the throughput tax on bulk).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.interconnect.fabric import Flow
from repro.interconnect.tenancy import SlicedFabric, VirtualNetwork
from repro.interconnect.topology import build_dragonfly


def build_topology():
    return build_dragonfly(groups=6, routers_per_group=4, terminals_per_router=4)


def aggressor_flows(topology):
    graph = topology.graph
    hot = topology.terminals[0]
    far = [
        t for t in topology.terminals
        if graph.nodes[t]["attached_to"] != graph.nodes[hot]["attached_to"]
    ]
    return [
        Flow(source=far[i], destination=hot, size=100e6, tag="elephant")
        for i in range(10)
    ]


def victim_flows(topology):
    graph = topology.graph
    hot = topology.terminals[0]
    hot_router = graph.nodes[hot]["attached_to"]
    neighbours = [
        t for t in topology.terminals
        if graph.nodes[t]["attached_to"] == hot_router and t != hot
    ]
    far = [
        t for t in topology.terminals
        if graph.nodes[t]["attached_to"] != hot_router
    ]
    return [
        Flow(source=source, destination=far[-(i + 1)], size=64e3,
             start_time=1e-3, tag="mouse")
        for i, source in enumerate(neighbours)
    ]


def p99(stats):
    return float(np.percentile([s.completion_time for s in stats], 99)) * 1e6


def run_experiment():
    topology = build_topology()
    fabric = SlicedFabric(topology)
    fabric.allocate(VirtualNetwork(tenant="aggressor", bandwidth_share=0.5))
    fabric.allocate(VirtualNetwork(tenant="victim", bandwidth_share=0.5))
    flows = lambda: {
        "aggressor": aggressor_flows(topology),
        "victim": victim_flows(topology),
    }

    shared = fabric.run_shared(flows())
    sliced = fabric.run_isolated(flows())
    alone = fabric.run_isolated({"victim": victim_flows(topology)})

    # Encryption tax on the victim slice.
    secure_fabric = SlicedFabric(topology)
    secure_fabric.allocate(VirtualNetwork(
        tenant="victim", bandwidth_share=0.5, encrypted=True,
    ))
    encrypted = secure_fabric.run_isolated({"victim": victim_flows(topology)})

    return {
        "shared": p99(shared["victim"]),
        "sliced": p99(sliced["victim"]),
        "alone": p99(alone["victim"]),
        "encrypted": p99(encrypted["victim"]),
    }


def test_c15_virtual_networks(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C15 (SIII.C): victim-tenant p99 FCT under an aggressor tenant's incast",
        ["configuration", "victim p99 (us)"],
    )
    table.add_row("shared best-effort fabric", results["shared"])
    table.add_row("hardware slices (virtual networks)", results["sliced"])
    table.add_row("victim running alone (reference)", results["alone"])
    table.add_row("victim slice with line-rate encryption", results["encrypted"])
    record(
        "C15_virtual_networks",
        table,
        notes=(
            "Paper claims: per-workflow virtual networks with 'strong service\n"
            "level guarantees', zero-trust tenant isolation, and integrated\n"
            "encryption. Expected: slicing restores run-alone latency exactly;\n"
            "sharing leaks multi-x congestion; encryption is a bounded tax."
        ),
    )

    # Isolation is exact: sliced == alone.
    assert results["sliced"] == pytest.approx(results["alone"], rel=1e-6)
    # Sharing leaks the neighbour's congestion.
    assert results["shared"] > 2 * results["sliced"]
    # Encryption is a bounded, modest tax over the clear slice.
    assert results["sliced"] < results["encrypted"] < results["sliced"] * 1.6
