"""Experiment C1 — §II.B: flow-based congestion management at scale.

"Slingshot tackles congestion management at scale for the first time. It
uses a novel flow-based approach in which congesting flows are identified
and network hardware applies selective back pressure. ... a focus on
sustained performance under load — with global bandwidth and tail latency
the key metrics."

Workload: an elephant incast congests one endpoint of a dragonfly while
latency-sensitive mice ("victims") traverse the hot switch. We sweep the
incast degree and report victim p99 FCT and aggressor goodput under three
policies: none, ECN-style endpoint control, and flow-based selective
backpressure.

Expected shape: victim p99 — none >> ecn > flow-based (3-10x between the
extremes), aggressor goodput roughly preserved by flow-based CM.

Ablation (DESIGN.md §4): the incast-degree sweep doubles as the load
ablation; the ECN row is the "standards are expected to emerge" baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.interconnect.congestion import (
    EcnCongestionControl,
    FlowBasedCongestionControl,
    NoCongestionControl,
)
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.topology import build_dragonfly

POLICIES = (
    NoCongestionControl(),
    EcnCongestionControl(),
    FlowBasedCongestionControl(),
)
INCAST_DEGREES = (4, 8, 16)


def build_topology():
    return build_dragonfly(groups=6, routers_per_group=4, terminals_per_router=4)


def incast_workload(topology, aggressors):
    graph = topology.graph
    hot = topology.terminals[0]
    hot_router = graph.nodes[hot]["attached_to"]
    same_router = [
        t for t in topology.terminals
        if graph.nodes[t]["attached_to"] == hot_router and t != hot
    ]
    far = [
        t for t in topology.terminals
        if graph.nodes[t]["attached_to"] != hot_router
    ]
    flows = [
        Flow(source=far[i], destination=hot, size=100e6, tag="aggressor")
        for i in range(aggressors)
    ]
    for index, source in enumerate(same_router):
        flows.append(
            Flow(
                source=source,
                destination=far[-(index + 1)],
                size=64e3,
                start_time=1e-3,
                tag="victim",
            )
        )
    return flows


def run_experiment():
    topology = build_topology()
    rows = []
    for degree in INCAST_DEGREES:
        for policy in POLICIES:
            flows = incast_workload(topology, degree)
            stats = FabricSimulator(topology, congestion=policy).run(flows)
            victims = [s.completion_time for s in stats if s.tag == "victim"]
            aggressors = [s for s in stats if s.tag == "aggressor"]
            goodput = sum(s.size for s in aggressors) / max(
                s.finish_time for s in aggressors
            )
            rows.append(
                (
                    degree,
                    policy.name,
                    float(np.percentile(victims, 99)) * 1e6,
                    float(np.mean(victims)) * 1e6,
                    goodput / 1e9,
                )
            )
    return rows


def test_c1_congestion_management(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C1 (SII.B): victim tail latency under incast, by congestion policy",
        ["incast degree", "policy", "victim p99 (us)", "victim mean (us)",
         "aggressor goodput (GB/s)"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C1_congestion_management",
        table,
        notes=(
            "Paper claim: flow-based CM identifies congesting flows and\n"
            "applies selective backpressure, preserving victim tail latency\n"
            "under load. Expected: none >> ecn > flow-based on victim p99."
        ),
    )

    by_key = {(degree, policy): p99 for degree, policy, p99, _, _ in rows}
    for degree in INCAST_DEGREES:
        assert by_key[(degree, "none")] > by_key[(degree, "ecn")]
        assert by_key[(degree, "ecn")] > by_key[(degree, "flow-based")]
        assert by_key[(degree, "none")] / by_key[(degree, "flow-based")] > 3.0
