"""Experiment C3 — §II.B: the switch scaling wall.

"State of the art switches (12.8 Tbps) combine high radix and high per-port
bandwidth. Current designs have one more natural step (to 25.6 Tbps with 64
ports at 400 Gbps). These designs have a very high wire density, much of
their area is taken up by SerDes, and they make only limited gains from
improvements in process technology. Radical change is required beyond this
point."

We sweep the switch roadmap (12.8 -> 102.4 Tbps), reporting die area split
into SerDes and core, the SerDes area fraction, and manufacturability
against the reticle limit — then show silicon-photonics escape (§III.C)
rescuing the post-25.6T generations.

Expected shape: exactly one more generation (25.6T) is manufacturable
electrically; SerDes fraction grows monotonically; co-packaged optics
brings 51.2T/102.4T back under (or near) the reticle.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.interconnect.photonics import escape_bandwidth_tbps
from repro.interconnect.switch import RETICLE_LIMIT_MM2, roadmap


def run_experiment():
    rows = []
    for generation in roadmap():
        spec = generation.spec
        rescued = spec.with_optical_escape(0.95)
        rows.append(
            (
                generation.name,
                spec.throughput_tbps,
                spec.serdes_area(),
                spec.core_area(),
                spec.die_area(),
                spec.serdes_fraction(),
                "yes" if spec.is_manufacturable() else "NO",
                rescued.die_area(),
                "yes" if rescued.is_manufacturable() else "NO",
            )
        )
    return rows


def test_c3_switch_scaling(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C3 (SII.B): switch ASIC roadmap vs the reticle limit "
        f"({RETICLE_LIMIT_MM2:.0f} mm^2)",
        ["generation", "Tbps", "SerDes mm^2", "core mm^2", "die mm^2",
         "SerDes frac", "manufacturable", "die mm^2 w/ SiPh escape",
         "manufacturable w/ SiPh"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C3_switch_scaling",
        table,
        notes=(
            "Paper claims: 'one more natural step' to 25.6T; SerDes dominates\n"
            "die area and does not shrink; 'radical change is required beyond\n"
            "this point' — which SiPh escape provides (SIII.C): 256 fibres of\n"
            f"8x100G WDM give {escape_bandwidth_tbps(256):.1f} Tbps off-ASIC."
        ),
    )

    manufacturable = [row[6] == "yes" for row in rows]
    assert manufacturable == [True, True, False, False]
    serdes_fractions = [row[5] for row in rows]
    assert serdes_fractions == sorted(serdes_fractions)
    assert serdes_fractions[-1] > 0.5
    # SiPh escape rescues the 51.2T generation.
    rescued = {row[0]: row[8] for row in rows}
    assert rescued["51.2T (64x800G)"] == "yes"
