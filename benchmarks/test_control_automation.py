"""Experiment C18 — §III.A/§III.D: minimising the human in the loop.

"Real-time predictive analytics, control, and optimization is needed to
minimize the need of a human-in-the-loop for operating the instrumentation
edge." And §III.D: the challenge is "balancing the degree of human in the
loop — just enough to maintain control over some of the high-level
decisions — not too much to maintain the sufficient automation."

Part 1: science yield (control events acted on within a 50 ms deadline)
versus event rate for three decision tiers: human operator, remote AI
behind a 40 ms WAN round trip, and edge AI.

Part 2: the §III.D balance — yield at a 1 kHz instrument as the fraction
of decisions routed to the supervising human sweeps 0 -> 10%.

Expected shape: the human tier collapses beyond ~0.05 events/s; remote AI
is capped by the WAN floor when deadlines tighten below the RTT; edge AI
holds >99% across the sweep. In part 2, a sub-0.1% human fraction costs
almost nothing while 10% destroys half the yield — "just enough, not too
much" made quantitative.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.workloads.control import (
    TieredControlPolicy,
    edge_ai,
    human_operator,
    remote_ai,
    science_yield,
)

EVENT_RATES = (0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0)
#: Two control classes: slow reconfiguration decisions (minutes-scale
#: deadline, historically the operator's job) and real-time feedback
#: (50 ms — beam steering, trigger decisions).
SLOW_DEADLINE = 120.0
REALTIME_DEADLINE = 0.05
DEADLINE = REALTIME_DEADLINE
HUMAN_FRACTIONS = (0.0, 0.0001, 0.001, 0.01, 0.1)


def run_experiment():
    tiers = (human_operator(), remote_ai(wan_rtt=0.04), edge_ai())
    rows = []
    for rate in EVENT_RATES:
        for tier in tiers:
            rows.append(
                (
                    rate,
                    tier.name,
                    science_yield(tier, rate, SLOW_DEADLINE),
                    science_yield(tier, rate, REALTIME_DEADLINE),
                )
            )
    return rows


def balance_sweep():
    rows = []
    for fraction in HUMAN_FRACTIONS:
        policy = TieredControlPolicy(
            automated=edge_ai(), human=human_operator(), human_fraction=fraction
        )
        rows.append((fraction, policy.yield_at(1_000.0, DEADLINE)))
    return rows


def test_c18_control_automation(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C18 (SIII.A): science yield vs event rate, by decision tier",
        ["event rate (/s)", "decision tier",
         f"slow-control yield ({SLOW_DEADLINE:.0f} s deadline)",
         f"real-time yield ({REALTIME_DEADLINE * 1e3:.0f} ms deadline)"],
    )
    for row in rows:
        table.add_row(*row)

    balance = balance_sweep()
    balance_table = Table(
        "C18 balance (SIII.D): yield at 1 kHz vs human decision fraction",
        ["human fraction", "combined yield"],
    )
    for row in balance:
        balance_table.add_row(*row)

    record(
        "C18_control_automation",
        table,
        notes=(
            "Paper claims: automation must 'minimize the need of a\n"
            "human-in-the-loop'; the balance is 'just enough to maintain\n"
            "control ... not too much'.\n\n" + balance_table.render()
        ),
    )

    slow = {(rate, tier): y for rate, tier, y, _ in rows}
    realtime = {(rate, tier): y for rate, tier, _, y in rows}
    # The human handles slow control at glacial rates only, and can never
    # meet the real-time deadline at any rate.
    assert slow[(0.01, "human-operator")] > 0.8
    assert slow[(1.0, "human-operator")] == 0.0
    assert all(realtime[(rate, "human-operator")] == 0.0 for rate in EVENT_RATES)
    # Edge AI dominates remote AI and holds > 99% everywhere.
    for rate in EVENT_RATES:
        assert realtime[(rate, "edge-ai")] >= realtime[(rate, "remote-ai")]
        assert realtime[(rate, "edge-ai")] > 0.99
    # The balance: tiny human fraction is free, large is ruinous.
    balance_yield = dict(balance)
    assert balance_yield[0.0001] > 0.99
    assert balance_yield[0.1] < 0.95
    series = [y for _, y in balance]
    assert series == sorted(series, reverse=True)
