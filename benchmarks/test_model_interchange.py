"""Experiment C17 — §III.D: interchange layers hide hardware heterogeneity.

"Intermediate layers, such as ONNX, play an important interoperability role
in hiding heterogeneity of both programming environments and the underlying
hardware, for example by decoupling model training from model inference ...
analog matrix-vector multiplications based on in-memory computation map
easily into existing programming environments and can be hidden within
runtime implementations and model compilation to reduced precision
arithmetic."

Pipeline: a BF16-trained MLP surrogate is exported once to the portable
format and compiled, unchanged, for every device in the catalog. We report
execution precision (quantisation applied transparently), predicted
single-sample latency and energy, and the winner under latency vs energy
objectives.

Expected shape: every capable device serves the same artifact — the analog
engine via the ANALOG lowering, the FPGA via INT8 quantisation — with no
model change; the latency winner is a digital accelerator while the energy
winner is an analog/edge part, so the *objective*, not the model, selects
the silicon.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.core.errors import ConfigurationError
from repro.hardware import Precision, default_catalog
from repro.workloads.ai import build_mlp
from repro.workloads.interchange import (
    best_target,
    compile_for_device,
    export_model,
    from_wire,
    to_wire,
)


def run_experiment():
    catalog = default_catalog()
    portable = export_model(
        build_mlp(hidden_dim=4096, depth=4, name="surrogate"),
        trained_precision=Precision.BF16,
    )
    # Round-trip through the wire format first: the artifact that gets
    # deployed is the serialised one.
    portable = from_wire(to_wire(portable))
    rows = []
    for device in catalog:
        try:
            compile_for_device(portable, device)  # warm-up: FPGA bitstream
            compiled = compile_for_device(portable, device)
        except ConfigurationError as error:
            rows.append((device.name, "cannot serve", "-", "-", str(error)[:40]))
            continue
        rows.append(
            (
                device.name,
                str(compiled.execution_precision),
                "yes" if compiled.quantised else "no",
                compiled.inference_latency * 1e6,
                compiled.inference_energy * 1e6,
            )
        )
    latency_winner = best_target(portable, list(catalog), objective="latency")
    energy_winner = best_target(portable, list(catalog), objective="energy")
    return rows, latency_winner, energy_winner


def test_c17_model_interchange(benchmark, record):
    rows, latency_winner, energy_winner = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = Table(
        "C17 (SIII.D): one portable model compiled for every silicon class",
        ["device", "execution precision", "quantised", "latency (us)",
         "energy (uJ)"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C17_model_interchange",
        table,
        notes=(
            "Paper claim: interchange formats hide hardware heterogeneity;\n"
            "analog MVM engines 'map easily' via runtime lowering and reduced\n"
            f"precision compilation. Latency winner: {latency_winner.device_name}"
            f" ({latency_winner.inference_latency * 1e6:.1f} us); energy winner: "
            f"{energy_winner.device_name} "
            f"({energy_winner.inference_energy * 1e6:.1f} uJ)."
        ),
    )

    served = {row[0]: row for row in rows if row[1] != "cannot serve"}
    # Every device in the catalog serves the artifact.
    assert len(served) == 8
    # The analog engine serves via the ANALOG lowering; the FPGA quantised.
    assert served["analog-dpe"][1] == "analog"
    assert served["datacenter-fpga"][2] == "yes"
    # The neuromorphic engines win energy by orders of magnitude over the
    # GPU that trained the model — without touching the artifact.
    assert energy_winner.device_name in ("analog-dpe", "optical-mvm")
    gpu_energy = served["hpc-gpu"][4]
    assert gpu_energy / energy_winner.inference_energy / 1e6 > 100
    # And the latency winner is a specialised part, never the plain CPU.
    assert latency_winner.device_name != "epyc-class-cpu"
