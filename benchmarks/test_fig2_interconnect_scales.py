"""Experiment F2 — Figure 2: interconnect at device, rack and system scale.

Figure 2's claim: a unified CXL-class physical interface serving local
connectivity, pooled/persistent memory and the system network preserves
low-latency access at every scale, where the PCIe-era stack-up (DDR /
PCIe-DMA / RDMA / TCP) pays an escalating software and protocol tax.

We measure the time of a small (4 KiB) and a bulk (1 GB) access at every
tier of both hierarchies. Expected shape: comparable at the local tier,
then a widening gap — an order of magnitude at rack scale for small
accesses — and composability only achievable in the CXL-era fabric.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.interconnect.memfabric import (
    MemoryPool,
    Scale,
    cxl_era_fabric,
    pcie_era_fabric,
)

SMALL = 4096.0
BULK = 1e9


def run_experiment():
    rows = []
    for fabric in (pcie_era_fabric(), cxl_era_fabric()):
        for tier in fabric.tiers:
            rows.append(
                (
                    fabric.name,
                    tier.name,
                    tier.scale.value,
                    tier.access.value,
                    tier.access_time(SMALL) * 1e6,
                    tier.effective_bandwidth(BULK) / 1e9,
                )
            )
    return rows


def rack_gap():
    """Small-access latency ratio at rack scale, PCIe-era over CXL-era."""
    pcie = pcie_era_fabric().tier("rdma-rack").access_time(SMALL)
    cxl = cxl_era_fabric().tier("cxl-pooled-rack").access_time(SMALL)
    return pcie / cxl


def test_fig2_interconnect_scales(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "F2 (Figure 2): memory/network access across device, rack, system scales",
        ["fabric", "tier", "scale", "access", "4 KiB time (us)", "1 GB eff. BW (GB/s)"],
    )
    for row in rows:
        table.add_row(*row)
    gap = rack_gap()
    record(
        "F2_interconnect_scales",
        table,
        notes=(
            "Paper claim (Fig. 2, SII.B/SIII.C): one low-latency physical\n"
            "interface from device to system scale; PCIe latencies are 'far\n"
            f"too high for memory access'. Measured rack-scale small-access\n"
            f"gap (PCIe-era RDMA vs CXL-era pooled memory): {gap:.1f}x."
        ),
    )

    assert gap > 5.0
    # Composability: the CXL fabric can pool memory across tiers.
    fabric = cxl_era_fabric()
    fabric.add_pool(MemoryPool("near", 64e9, fabric.tier("cxl-attached")))
    fabric.add_pool(MemoryPool("far", 512e9, fabric.tier("cxl-pooled-rack")))
    used = fabric.compose(256e9)
    assert len(used) == 2
    # Every scale is represented in the CXL-era hierarchy.
    scales = {tier.scale for tier in fabric.tiers}
    assert scales == {Scale.DEVICE, Scale.RACK, Scale.SYSTEM}
