"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one of the paper's figures or quantified
claims (see DESIGN.md's per-experiment index). Since the paper is a vision
paper with no absolute numbers, each harness:

1. runs the experiment and renders its rows/series as an ASCII table,
2. writes the table to ``benchmarks/results/<experiment>.txt`` (and echoes
   it to stdout when pytest runs with ``-s``),
3. asserts the claim's *shape* (who wins, rough factors, crossovers).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.tables import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write a rendered table (plus optional notes) to the results dir."""

    def _record(experiment_id: str, table: Table, notes: str = "") -> None:
        content = table.render()
        if notes:
            content += "\n\n" + notes.strip() + "\n"
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(content + "\n")
        print()
        print(content)

    return _record
