"""Experiment C2 — §II.B: low-diameter topologies.

"Low-diameter networks such as dragonfly and Hyper-X provide a path to low
system latency and high global bandwidth."

We build dragonfly, HyperX, fat-tree and torus instances at comparable
terminal counts and compare: diameter, average switch-to-switch hop count
(latency proxy), bisection bandwidth per dollar, and network cost per
terminal.

Expected shape: dragonfly/HyperX achieve diameter <= 3 (vs 6 for fat-tree's
3-tier Clos edge-to-edge and more for the torus) at competitive
cost/terminal; the torus is cheapest but its diameter (latency) grows with
machine size.

Ablation (DESIGN.md §4): adversarial-traffic worst link load under
minimal vs Valiant vs adaptive routing on the dragonfly.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.analysis.tables import Table
from repro.core.rng import RandomSource
from repro.interconnect.fabric import FabricSimulator, Flow
from repro.interconnect.routing import route_demands
from repro.interconnect.topology import (
    build_dragonfly,
    build_fat_tree,
    build_hyperx,
    build_torus,
)


def build_instances():
    """Four topologies in the 120-160 terminal range."""
    return {
        "dragonfly": build_dragonfly(
            groups=9, routers_per_group=4, terminals_per_router=4
        ),  # 144 terminals
        "hyperx": build_hyperx(dims=(6, 6), terminals_per_switch=4),  # 144
        "fat-tree": build_fat_tree(k=8),  # 128
        "torus": build_torus(dims=(6, 6, 4), terminals_per_switch=1),  # 144
    }


def uniform_mean_fct(topology, flows=60, seed=41):
    """Mean flow-completion time of uniform-random 10 MB flows — the
    dynamic (under-load) counterpart of the static hop metrics."""
    rng = RandomSource(seed=seed, name="c2-fct")
    terminals = topology.terminals
    flow_list = []
    for _ in range(flows):
        source, destination = rng.sample(terminals, 2)
        flow_list.append(Flow(source=source, destination=destination, size=10e6))
    stats = FabricSimulator(topology).run(flow_list)
    return float(np.mean([s.completion_time for s in stats]))


def run_experiment():
    rows = []
    for name, topology in build_instances().items():
        cost = topology.cost()
        rows.append(
            (
                name,
                topology.terminal_count,
                topology.switch_count,
                topology.diameter(),
                topology.average_shortest_path(),
                topology.bisection_bandwidth() / 1e12,
                topology.bisection_bandwidth() / 1e6 / cost,  # MB/s per $
                topology.cost_per_terminal(),
                uniform_mean_fct(topology) * 1e3,
            )
        )
    return rows


def routing_ablation():
    topology = build_dragonfly(groups=6, routers_per_group=3, terminals_per_router=2)
    graph = topology.graph
    group_of = {
        t: graph.nodes[graph.nodes[t]["attached_to"]]["group"]
        for t in topology.terminals
    }
    group_a = [t for t, g in group_of.items() if g == 0]
    group_b = [t for t, g in group_of.items() if g == 1]
    demands = [(a, b, 1.0) for a, b in zip(group_a, group_b)]
    rows = []
    for algorithm in ("minimal", "valiant", "adaptive"):
        _, load = route_demands(topology, demands, algorithm=algorithm)
        switch_links = {
            key: value
            for key, value in load.items()
            if graph.nodes[key[0]].get("role") == "switch"
            and graph.nodes[key[1]].get("role") == "switch"
        }
        rows.append((algorithm, max(switch_links.values())))
    return rows


def test_c2_topology_comparison(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C2 (SII.B): topology family comparison at ~140 terminals",
        ["topology", "terminals", "switches", "diameter", "avg hops",
         "bisection (TB/s)", "bisection MB/s per $", "cost per terminal ($)",
         "uniform-traffic mean FCT (ms)"],
    )
    for row in rows:
        table.add_row(*row)

    ablation = routing_ablation()
    ablation_table = Table(
        "C2 ablation: adversarial group-to-group traffic, worst link load",
        ["routing", "max switch-link load"],
    )
    for row in ablation:
        ablation_table.add_row(*row)

    record(
        "C2_topology_comparison",
        table,
        notes=(
            "Paper claim: low-diameter networks (dragonfly, HyperX) give low\n"
            "latency and high global bandwidth. FCT column uses single-path\n"
            "minimal routing: the fat-tree's poor showing reflects its\n"
            "reliance on ECMP spreading, which dragonfly/HyperX need less.\n"
            "The torus trades its FCT showing for 4x the switch count (and\n"
            "cost) at equal terminals.\n\n" + ablation_table.render()
        ),
    )

    metrics = {row[0]: row for row in rows}
    assert metrics["dragonfly"][3] <= 3
    assert metrics["hyperx"][3] <= 2
    assert metrics["fat-tree"][3] > metrics["dragonfly"][3]
    assert metrics["torus"][3] > metrics["hyperx"][3]
    # Low-diameter families also have fewer average hops than the torus.
    assert metrics["dragonfly"][4] < metrics["torus"][4]
    # And the dynamic view agrees: mean FCT under uniform load is best on
    # the low-diameter families.
    assert metrics["hyperx"][8] <= metrics["torus"][8]
    assert metrics["dragonfly"][8] <= metrics["torus"][8] * 1.2
    # Valiant/adaptive must beat minimal on adversarial traffic.
    loads = dict(ablation)
    assert loads["valiant"] < loads["minimal"]
    assert loads["adaptive"] <= loads["minimal"]
