"""Experiment C6 — §III.A: the instrumentation heavy edge.

"Today, all the instrumentation data goes back to the HPC core, but that
has become a critical bottleneck, which is expected to get even worse with
new generations of faster and more detailed experimental facilities. So,
the next HPC frontier requires moving some elements of data analysis, and
the related AI inference, close to the data source at the facility edge."

We sweep the detector generation (rate_scale multiplier over a light-source
imaging detector) against a fixed facility-to-core WAN, comparing:

* **backhaul**: ship every byte to the core,
* **edge-inference**: classify events in-situ on edge NPUs (keeping
  interesting events plus false positives), ship the survivors.

Reported per generation: required WAN bandwidth vs available, transfer time
for a 60 s observation window, and whether the strategy keeps up (real
time). Expected shape: backhaul falls behind real time at a modest
rate_scale while edge inference keeps up for every generation swept, with
the NPU pool comfortably sustaining the classification rate.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.hardware import KernelProfile, Precision, default_catalog
from repro.workloads.ai import build_cnn
from repro.workloads.edge import DetectorPreset, InstrumentStream

WAN_BANDWIDTH = 10e9  # 80 Gbps facility uplink, bytes/s
RATE_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
NPU_COUNT = 16
RECALL = 0.98
FALSE_POSITIVE_RATE = 0.01


def classifier_kernel():
    model = build_cnn(image_size=128, base_channels=32, stages=3)
    largest = max(model.layers, key=lambda l: l.k * l.n)
    return KernelProfile(
        flops=model.forward_flops(batch=1),
        bytes_moved=model.parameter_bytes(Precision.INT8),
        precision=Precision.INT8,
        mvm_dimension=max(largest.k, largest.n),
    )


def run_experiment():
    catalog = default_catalog()
    npu = catalog.get("edge-npu")
    inference_time = npu.time_for(classifier_kernel())
    npu_throughput = NPU_COUNT / inference_time  # events/s sustainable
    rows = []
    for scale in RATE_SCALES:
        stream = InstrumentStream(
            preset=DetectorPreset.LIGHT_SOURCE_IMAGING,
            interesting_fraction=0.02,
            duration=60.0,
            rate_scale=scale,
        )
        backhaul_time = stream.total_bytes / WAN_BANDWIDTH
        kept = stream.filtered_bytes_with_recall(RECALL, FALSE_POSITIVE_RATE)
        edge_time = kept / WAN_BANDWIDTH
        classify_ok = stream.event_rate <= npu_throughput
        rows.append(
            (
                scale,
                stream.data_rate / 1e9,
                backhaul_time,
                "yes" if backhaul_time <= stream.duration else "NO",
                kept / 1e9,
                edge_time,
                "yes" if (edge_time <= stream.duration and classify_ok) else "NO",
            )
        )
    return rows, npu_throughput


def test_c6_edge_inference(benchmark, record):
    rows, npu_throughput = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C6 (SIII.A): backhaul vs in-situ inference for a light-source "
        "detector (60 s window, 10 GB/s WAN)",
        ["rate scale", "detector GB/s", "backhaul time (s)", "backhaul real-time",
         "kept GB", "edge-filtered time (s)", "edge real-time"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C6_edge_inference",
        table,
        notes=(
            f"Edge NPU pool sustains {npu_throughput:.0f} classifications/s\n"
            f"({NPU_COUNT} NPUs). Paper claim: backhauling 'all the\n"
            "instrumentation data ... has become a critical bottleneck,\n"
            "expected to get even worse with new generations'; edge\n"
            "inference relieves it for every swept generation."
        ),
    )

    backhaul_ok = {scale: ok == "yes" for scale, _, _, ok, _, _, _ in rows}
    edge_ok = {scale: ok == "yes" for scale, *_, ok in rows}
    # Backhaul keeps up only at sub-nominal rates; breaks by 1x or above.
    assert backhaul_ok[0.25]
    assert not backhaul_ok[2.0]
    assert not backhaul_ok[8.0]
    # Edge inference keeps up across the whole sweep.
    assert all(edge_ok.values())
    # The crossover exists: some generation where edge works and backhaul fails.
    assert any(edge_ok[s] and not backhaul_ok[s] for s in edge_ok)
