"""Experiment C5 — §III.B: closed-loop simulation + DL inference.

"The combination of these two types of accelerators will significantly
improve HPC by enabling closed-loop combinations of classical simulation
and deep-learning inference (to accelerate some simulation steps)."

A simulation loop whose expensive step can be replaced by a surrogate
(trust-region gated: rejected predictions fall back to the exact kernel)
is swept over the surrogate acceptance rate and the inference device.

Expected shape: speedup grows monotonically with acceptance rate; at the
paper-typical 90% acceptance the loop runs several times faster; dedicated
inference silicon (TPU-like / analog DPE) beats running the surrogate on
the host CPU; the breakeven acceptance rate is tiny because inference
costs orders of magnitude less than the exact step.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.hardware import KernelProfile, Precision, default_catalog
from repro.workloads.ai import build_mlp
from repro.workloads.hybrid import ClosedLoopWorkflow, SurrogateModel

ACCEPTANCE_RATES = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99)
INFERENCE_DEVICES = ("epyc-class-cpu", "tpu-like", "analog-dpe")


def build_workflow():
    return ClosedLoopWorkflow(
        exact_kernel=KernelProfile(
            flops=5e12, bytes_moved=2e10, precision=Precision.FP64
        ),
        cheap_kernel=KernelProfile(
            flops=5e9, bytes_moved=5e8, precision=Precision.FP64
        ),
        steps=1000,
    )


def build_surrogate(acceptance_rate):
    return SurrogateModel(
        model=build_mlp(hidden_dim=2048, depth=4),
        acceptance_rate=acceptance_rate,
        pretrained=True,
    )


def run_experiment():
    catalog = default_catalog()
    workflow = build_workflow()
    cpu = catalog.get("epyc-class-cpu")
    baseline = workflow.baseline_time(cpu)
    rows = []
    for device_name in INFERENCE_DEVICES:
        inference_device = catalog.get(device_name)
        for rate in ACCEPTANCE_RATES:
            surrogate = build_surrogate(rate)
            accelerated = workflow.surrogate_time(cpu, inference_device, surrogate)
            rows.append((device_name, rate, baseline / accelerated))
    return baseline, rows


def test_c5_closed_loop_hybrid(benchmark, record):
    baseline, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C5 (SIII.B): closed-loop sim+AI speedup vs surrogate acceptance rate",
        ["inference device", "acceptance rate", "end-to-end speedup"],
    )
    for row in rows:
        table.add_row(*row)

    catalog = default_catalog()
    workflow = build_workflow()
    breakeven = workflow.breakeven_acceptance_rate(
        catalog.get("epyc-class-cpu"),
        catalog.get("tpu-like"),
        build_surrogate(0.9),
    )
    record(
        "C5_closed_loop_hybrid",
        table,
        notes=(
            f"CPU-only exact baseline: {baseline:.1f} s for 1000 steps.\n"
            f"Breakeven acceptance rate (TPU inference): {breakeven:.4f} —\n"
            "the surrogate pays off at essentially any useful accuracy.\n"
            "Paper claim: closed-loop sim+inference 'significantly improves\n"
            "HPC'; expected monotone speedup, >= 3x at 90% acceptance."
        ),
    )

    speedups = {(device, rate): s for device, rate, s in rows}
    for device in INFERENCE_DEVICES:
        series = [speedups[(device, rate)] for rate in ACCEPTANCE_RATES]
        assert series == sorted(series)  # monotone in acceptance
    assert speedups[("tpu-like", 0.9)] > 3.0
    assert speedups[("analog-dpe", 0.9)] >= speedups[("epyc-class-cpu", 0.9)] * 0.95
    assert breakeven < 0.05
