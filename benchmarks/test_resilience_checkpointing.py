"""Experiment C16 — §III.C: fabric-attached persistence for resilience.

"The design separates persistent memory, the first storage tier, from
processing. It ensures global accessibility for resilience and capacity,
while maintaining low latency for local access."

A 24-hour job checkpoints 64 GB/node under Young/Daly-optimal intervals.
We sweep the allocation size (1k -> 100k nodes, node MTBF 5 years) and the
checkpoint target: parallel filesystem, node-local SSD (fast but lost with
the node), and fabric-attached persistent memory.

Expected shape: machine efficiency collapses with scale on the PFS
(checkpoint cost ~70 s against an MTBF measured in minutes at 100k nodes),
while fabric PM holds high efficiency across the sweep — the quantified
version of "global accessibility for resilience".
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.scheduling.checkpointing import (
    CheckpointedExecution,
    FailureModel,
    fabric_pm_target,
    local_ssd_target,
    parallel_filesystem_target,
)

YEAR = 365.25 * 86_400
NODE_COUNTS = (1_000, 10_000, 100_000)
TARGETS = (parallel_filesystem_target(), local_ssd_target(), fabric_pm_target())


def run_experiment():
    rows = []
    for nodes in NODE_COUNTS:
        failures = FailureModel(node_mtbf=5 * YEAR, nodes=nodes)
        for target in TARGETS:
            execution = CheckpointedExecution(
                work_time=24 * 3600.0,
                checkpoint_bytes_per_node=64e9,
                failures=failures,
                target=target,
            )
            rows.append(
                (
                    nodes,
                    target.name,
                    failures.system_mtbf / 3600.0,
                    execution.checkpoint_cost,
                    execution.optimal_interval / 60.0,
                    execution.efficiency(),
                )
            )
    return rows


def test_c16_resilience_checkpointing(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C16 (SIII.C): checkpointed efficiency of a 24 h job, 64 GB/node",
        ["nodes", "checkpoint target", "system MTBF (h)", "ckpt cost (s)",
         "Young-Daly interval (min)", "machine efficiency"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C16_resilience_checkpointing",
        table,
        notes=(
            "Paper claim: the fabric-attached persistent tier 'ensures global\n"
            "accessibility for resilience'. Expected: PFS efficiency collapses\n"
            "with scale; fabric PM stays high; node-local SSD is fast but pays\n"
            "the lost-checkpoint restart penalty."
        ),
    )

    efficiency = {(nodes, target): e for nodes, target, _, _, _, e in rows}
    # Fabric PM dominates the PFS at every scale.
    for nodes in NODE_COUNTS:
        assert efficiency[(nodes, "fabric-pm")] > efficiency[(nodes, "parallel-fs")]
    # The gap widens with scale.
    gap_small = (
        efficiency[(1_000, "fabric-pm")] - efficiency[(1_000, "parallel-fs")]
    )
    gap_large = (
        efficiency[(100_000, "fabric-pm")] - efficiency[(100_000, "parallel-fs")]
    )
    assert gap_large > gap_small
    # At extreme scale the PFS loses >= 25% of the machine; fabric PM < 15%.
    assert efficiency[(100_000, "parallel-fs")] < 0.75
    assert efficiency[(100_000, "fabric-pm")] > 0.85
