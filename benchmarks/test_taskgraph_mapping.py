"""Experiment C14 — §III.D: data-centric runtimes on heterogeneous nodes.

"Especially well-suited for distributed heterogeneous architectures,
data-centric runtime environments like Legion are also rapidly emerging.
They enable the programmer to embed the data structure to facilitate the
extraction of task and data parallelism, and to map more easily to complex,
multi-level, memory hierarchies." And §III.D: "moving data across
hierarchies of computation and memory/storage has a dominant cost".

Workload: a synthetic science pipeline on a CPU+GPU+TPU node — ingest,
per-shard preprocessing (parallel), a training step per shard, a reduce,
and a chain of cheap post-processing steps over one large region. We run it
under three mappers (data-aware / compute-greedy / round-robin) and two
device interconnects (PCIe-class 16 GB/s vs CXL-class 64 GB/s).

Expected shape: data-aware mapping wins makespan on both interconnects by
avoiding gratuitous region migration; the gap *shrinks* on the faster
fabric (cheap data movement forgives bad mapping — the §III.C composability
argument seen from the software side).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.hardware import KernelProfile, Precision, default_catalog
from repro.scheduling.taskgraph import (
    DataTask,
    Mapper,
    Region,
    TaskGraph,
    TaskGraphExecutor,
)

SHARDS = 4


def build_pipeline() -> TaskGraph:
    graph = TaskGraph()
    raw = Region("raw", 16e9)
    graph.add(DataTask(
        "ingest",
        KernelProfile(flops=2e9, bytes_moved=16e9, precision=Precision.FP32),
        writes=(raw,),
    ))
    shard_models = []
    for index in range(SHARDS):
        shard = Region(f"shard-{index}", 4e9)
        graph.add(DataTask(
            f"preprocess-{index}",
            KernelProfile(flops=5e10, bytes_moved=4e9, precision=Precision.FP32),
            reads=(raw,),
            writes=(shard,),
        ))
        model = Region(f"model-{index}", 0.4e9)
        graph.add(DataTask(
            f"train-{index}",
            KernelProfile(flops=2e12, bytes_moved=4e9, precision=Precision.BF16),
            reads=(shard,),
            writes=(model,),
        ))
        shard_models.append(model)
    merged = Region("merged-model", 0.4e9)
    graph.add(DataTask(
        "reduce-models",
        KernelProfile(flops=1e9, bytes_moved=1.6e9, precision=Precision.FP32),
        reads=tuple(shard_models),
        writes=(merged,),
    ))
    report = Region("report", 16e9)
    graph.add(DataTask(
        "render",
        KernelProfile(flops=1e9, bytes_moved=16e9, precision=Precision.FP32),
        reads=(raw, merged),
        writes=(report,),
    ))
    for index in range(4):
        graph.add(DataTask(
            f"post-{index}",
            KernelProfile(flops=5e8, bytes_moved=16e9, precision=Precision.FP32),
            reads=(report,),
            writes=(report,),
        ))
    return graph


def run_experiment():
    catalog = default_catalog()
    devices = [
        catalog.get("epyc-class-cpu"),
        catalog.get("hpc-gpu"),
        catalog.get("tpu-like"),
    ]
    rows = []
    for fabric_label, bandwidth in (("pcie 16 GB/s", 16e9), ("cxl 64 GB/s", 64e9)):
        for strategy in Mapper.STRATEGIES:
            executor = TaskGraphExecutor(
                devices,
                mapper=Mapper(strategy),
                interconnect_bandwidth=bandwidth,
            )
            executions = executor.run(build_pipeline())
            rows.append(
                (
                    fabric_label,
                    strategy,
                    executor.makespan(executions) * 1e3,
                    executor.total_transfer_time(executions) * 1e3,
                    len({e.device_name for e in executions}),
                )
            )
    return rows


def test_c14_taskgraph_mapping(benchmark, record):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "C14 (SIII.D): data-centric pipeline mapping on a CPU+GPU+TPU node",
        ["device fabric", "mapper", "makespan (ms)", "transfer time (ms)",
         "devices used"],
    )
    for row in rows:
        table.add_row(*row)
    record(
        "C14_taskgraph_mapping",
        table,
        notes=(
            "Paper claims: data-centric runtimes map task/data parallelism to\n"
            "heterogeneous memory hierarchies; data movement has 'a dominant\n"
            "cost'. Expected: data-aware < compute-greedy and round-robin on\n"
            "makespan; the penalty of data-blind mapping shrinks on the\n"
            "faster (CXL-class) device fabric."
        ),
    )

    makespan = {(fabric, mapper): span for fabric, mapper, span, _, _ in rows}
    for fabric in ("pcie 16 GB/s", "cxl 64 GB/s"):
        assert makespan[(fabric, "data-aware")] <= makespan[(fabric, "compute-greedy")]
        assert makespan[(fabric, "data-aware")] < makespan[(fabric, "round-robin")]
    # Faster fabric forgives data-blind mapping: the round-robin penalty
    # ratio shrinks from PCIe to CXL.
    pcie_penalty = makespan[("pcie 16 GB/s", "round-robin")] / makespan[
        ("pcie 16 GB/s", "data-aware")
    ]
    cxl_penalty = makespan[("cxl 64 GB/s", "round-robin")] / makespan[
        ("cxl 64 GB/s", "data-aware")
    ]
    assert cxl_penalty < pcie_penalty
    # The heterogeneous node is genuinely used: data-aware runs on >= 2 kinds.
    used = {row[4] for row in rows if row[1] == "data-aware"}
    assert max(used) >= 2
